"""Legacy setup shim: enables `pip install -e .` without the wheel package."""

from setuptools import setup

setup()
