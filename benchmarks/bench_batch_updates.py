"""Supplemental — batch-update economics ("What if batch updates occur
every minute?").

Section 1 frames the problem: batch updating is the workaround current
systems use for the prefix sum family's terrible per-update cost, and it
stops working once batches must land frequently on big cubes.  This
bench measures total cell operations per batch as the batch size grows,
showing the two regimes:

* PS/RPS amortise a full-cube (or near-full) pass over the batch — cheap
  per update only when batches are huge;
* the DDC pays polylog per update with no batching requirement at all,
  which is the enabling-threshold argument for interactive updates.
"""

from __future__ import annotations

import pytest

from repro.methods import build_method
from repro.workloads import dense_uniform, random_updates

from conftest import report

N = 128
BATCH_SIZES = [1, 10, 100, 1000]


def test_batch_cost_regimes(benchmark):
    data = dense_uniform((N, N), seed=46)

    def measure():
        table = {}
        for name in ("ps", "rps", "fenwick", "ddc"):
            for size in BATCH_SIZES:
                updates = [
                    (u.cell, u.delta)
                    for u in random_updates((N, N), size, seed=47 + size)
                ]
                method = build_method(name, data)
                method.stats.reset()
                method.add_many(updates)
                table[(name, size)] = method.stats.cell_writes
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"total cell writes per batch, {N}x{N} cube",
        f"{'batch':>6}" + "".join(f"{name:>10}" for name in ("ps", "rps", "fenwick", "ddc")),
    ]
    for size in BATCH_SIZES:
        lines.append(
            f"{size:>6}"
            + "".join(
                f"{table[(name, size)]:>10,}"
                for name in ("ps", "rps", "fenwick", "ddc")
            )
        )
    lines.append("")
    lines.append("per-update cost within the batch:")
    for size in BATCH_SIZES:
        lines.append(
            f"{size:>6}"
            + "".join(
                f"{table[(name, size)] / size:>10.1f}"
                for name in ("ps", "rps", "fenwick", "ddc")
            )
        )
    report("batch_update_regimes", "\n".join(lines))

    # PS: one pass amortised — batch-of-1000 costs the same as batch-of-100.
    assert table[("ps", 1000)] == table[("ps", 100)] == N * N
    # The DDC's total grows with the batch but each update stays polylog.
    assert table[("ddc", 1000)] / 1000 < 64
    # For single updates (the interactive case) the DDC wins outright.
    assert table[("ddc", 1)] < table[("ps", 1)]
    assert table[("ddc", 1)] < table[("rps", 1)]


@pytest.mark.parametrize("name", ["ps", "ddc"])
def test_batch_walltime(benchmark, name):
    data = dense_uniform((N, N), seed=48)
    method = build_method(name, data)
    updates = [(u.cell, u.delta) for u in random_updates((N, N), 100, seed=49)]

    def one_batch():
        method.add_many(updates)

    benchmark(one_batch)
