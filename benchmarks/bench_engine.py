"""Sharded-engine serving throughput: shards x workers x mix x locality.

The serving benchmark replays one :func:`~repro.workloads.read_write_stream`
— a dashboard-style mixture of repeated hot range queries and point
updates — against (a) an unsharded scalar structure answering each event
directly, and (b) the :class:`~repro.engine.ShardedEngine` in several
configurations.  Per row it records wall time, events/second, the
speedup over the scalar baseline, and the cache hit rate, so the
trade-off surface is visible in one artifact:

* more shards → finer epoch invalidation (a write leaves other shards'
  cached ranges warm) and smaller trees per miss, but more sub-queries
  for ranges that straddle slab boundaries;
* a higher read mix → fewer epoch bumps → higher hit rate;
* zipf locality → the hot pool dominates → the cache carries the load;
* worker threads pay dispatch overhead per sub-query and only help once
  per-shard work is large enough to overlap — the GIL caps them hard;
* the process executor sidesteps the GIL entirely: shards live as
  shared-memory prefix-sum slabs served by a persistent worker pool,
  so a cache miss costs one vectorised gather per touched shard
  instead of a pure-python tree descent.

Results land in ``benchmarks/results/engine_throughput.json`` and the
headline artifact ``BENCH_engine.json`` at the repository root.

Set ``REPRO_BENCH_SMOKE=1`` to run a tiny configuration (CI smoke).
"""

from __future__ import annotations

import os
import time

from repro.artifacts import make_document
from repro.engine import ShardedEngine
from repro.methods import build_method
from repro.workloads import RangeQuery, clustered, read_write_stream

from conftest import report, write_root_artifact

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 32 if SMOKE else 256
SHAPE = (N, N)
EVENTS = 100 if SMOKE else 600
METHOD = "ddc"
SHARD_COUNTS = [1, 2] if SMOKE else [1, 4, 8]
#: Executor dimension: ``(kind, workers, method)``.  ``serial`` is the
#: deterministic baseline; ``thread`` exercises the GIL-bound pool (and
#: its single-shard fast path); ``process`` serves shards from
#: shared-memory prefix slabs through the worker-process pool.  The
#: ``vector`` process config runs the same slabs through the slab-tree
#: batched read kernel (``slab_kernel = "vector"``) — the scalar
#: baseline replay stays the pure-python DDC in every row, so speedups
#: are comparable across configs.
EXECUTOR_CONFIGS = (
    [("serial", 0, "ddc"), ("process", 2, "ddc"), ("process", 2, "vector")]
    if SMOKE
    else [
        ("serial", 0, "ddc"),
        ("thread", 4, "ddc"),
        ("process", 4, "ddc"),
        ("process", 4, "vector"),
    ]
)
MIXES = [0.9] if SMOKE else [0.5, 0.9, 0.95]
LOCALITIES = ["zipf"] if SMOKE else ["uniform", "zipf"]
CACHE_SIZE = 4096
# Replays mutate state, so each rep rebuilds its target and the row
# keeps the best rep — a single cold round mostly measures worker
# spawn-up and scheduler noise, not serving cost.  Smoke runs keep the
# reps: their tiny replay makes them almost free, and the regression
# gate's absolute floors need stable numbers.
REPS = 3


def _replay(target, events):
    """Serve every event; returns (seconds, read results)."""
    reads = []
    start = time.perf_counter()
    for event in events:
        if isinstance(event, RangeQuery):
            reads.append(target.range_sum(event.low, event.high))
        else:
            target.add(event.cell, event.delta)
    return time.perf_counter() - start, reads


def test_engine_serving_throughput(benchmark):
    data = clustered(SHAPE, seed=70)

    def measure():
        rows = []
        for locality in LOCALITIES:
            for mix in MIXES:
                events = read_write_stream(
                    SHAPE, EVENTS, mix=mix, locality=locality, seed=71
                )
                baseline_seconds = None
                expected = None
                for _ in range(REPS):
                    baseline = build_method(METHOD, data)
                    elapsed, baseline_reads = _replay(baseline, events)
                    if baseline_seconds is None or elapsed < baseline_seconds:
                        baseline_seconds = elapsed
                    expected = [int(value) for value in baseline_reads]
                for shards in SHARD_COUNTS:
                    for executor_kind, workers, method_name in EXECUTOR_CONFIGS:
                        engine_seconds = None
                        for _ in range(REPS):
                            engine = ShardedEngine.from_array(
                                data,
                                shards=shards,
                                method=method_name,
                                workers=workers or None,
                                executor=(
                                    None if executor_kind == "serial"
                                    else executor_kind
                                ),
                                cache_size=CACHE_SIZE,
                            )
                            engine.reset_stats()
                            elapsed, engine_reads = _replay(engine, events)
                            info = engine.cache_info()
                            engine.close()
                            assert [int(v) for v in engine_reads] == expected, (
                                f"engine (K={shards}, {executor_kind}) "
                                f"disagrees with the unsharded baseline"
                            )
                            if engine_seconds is None or elapsed < engine_seconds:
                                engine_seconds = elapsed
                        rows.append(
                            {
                                "shape": list(SHAPE),
                                "method": method_name,
                                "shards": shards,
                                "workers": workers,
                                "executor": executor_kind,
                                "mix": mix,
                                "locality": locality,
                                "events": len(events),
                                "engine_seconds": engine_seconds,
                                "baseline_seconds": baseline_seconds,
                                "events_per_second": (
                                    len(events) / engine_seconds
                                    if engine_seconds
                                    else None
                                ),
                                "baseline_events_per_second": (
                                    len(events) / baseline_seconds
                                    if baseline_seconds
                                    else None
                                ),
                                "speedup_vs_scalar": (
                                    baseline_seconds / engine_seconds
                                    if engine_seconds
                                    else None
                                ),
                                "cache_hits": info["hits"],
                                "cache_misses": info["misses"],
                                "cache_hit_rate": info["hit_rate"],
                            }
                        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"sharded-engine serving vs unsharded scalar, {N}x{N} clustered cube, "
        f"{EVENTS} events",
        f"{'locality':<8} {'mix':>5} {'shards':>6} {'executor':<8} "
        f"{'method':<7} {'workers':>7} "
        f"{'engine s':>10} {'scalar s':>10} {'speedup':>8} {'hit rate':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['locality']:<8} {row['mix']:>5.2f} {row['shards']:>6} "
            f"{row['executor']:<8} {row['method']:<7} "
            f"{row['workers']:>7} {row['engine_seconds']:>10.5f} "
            f"{row['baseline_seconds']:>10.5f} "
            f"{row['speedup_vs_scalar']:>8.2f} {row['cache_hit_rate']:>9.2%}"
        )
    document = make_document("engine_throughput", rows)
    report("engine_throughput", "\n".join(lines), data=document)
    write_root_artifact("BENCH_engine.json", document)

    # Every row reports its cache hit rate.
    assert all("cache_hit_rate" in row for row in rows)
    if not SMOKE:
        # Acceptance: on the read-heavy (>= 90% reads) zipf workload the
        # cached sharded engine out-serves the unsharded scalar baseline.
        read_heavy = [
            row
            for row in rows
            if row["locality"] == "zipf" and row["mix"] >= 0.9
        ]
        assert read_heavy
        best = max(row["speedup_vs_scalar"] for row in read_heavy)
        assert best > 1.0, f"best read-heavy zipf speedup {best:.2f} <= 1"
        # The hot pool actually hits the cache on read-heavy workloads.
        assert any(row["cache_hit_rate"] > 0.3 for row in read_heavy)
        # Acceptance: the process executor breaks the GIL ceiling —
        # shared-memory shard fan-out serves >= 3x the unsharded scalar
        # baseline at K=4 on the read-heavy zipf stream.
        process_row = next(
            row
            for row in rows
            if row["executor"] == "process"
            and row["method"] == "ddc"
            and row["shards"] == 4
            and row["locality"] == "zipf"
            and row["mix"] == 0.9
        )
        assert process_row["speedup_vs_scalar"] >= 3.0, (
            f"process executor speedup "
            f"{process_row['speedup_vs_scalar']:.2f} < 3x"
        )
        # Acceptance: the slab-tree vector read kernel beats the scalar
        # per-query corner loop in the same worker pool — above the
        # 3.79x the scalar-kernel process row recorded when the pool
        # first landed.
        vector_row = next(
            row
            for row in rows
            if row["executor"] == "process"
            and row["method"] == "vector"
            and row["shards"] == 4
            and row["locality"] == "zipf"
            and row["mix"] == 0.9
        )
        assert vector_row["speedup_vs_scalar"] > 3.79, (
            f"vector-kernel process speedup "
            f"{vector_row['speedup_vs_scalar']:.2f} <= 3.79x"
        )
