"""Experiment T1 — Table 1: update cost functions by method, d=8.

Regenerates the paper's Table 1 (analytic, values rounded to powers of
10), the 500 MIPS narrative ("more than 6 months of processing to update
a single cell" for PS; "231 days" for RPS at n=10^4; seconds for the
DDC), and cross-checks the model against *measured* per-update cell
operations on real structures at laptop-feasible sizes.  Wall-clock
micro-benchmarks of a single update per method round out the picture.
"""

from __future__ import annotations

import pytest

from repro.methods import build_method
from repro.model import (
    ddc_update_cost,
    mips_seconds,
    ps_update_cost,
    render_table1,
    rps_update_cost,
    table1,
    update_cost,
)
from repro.workloads import dense_uniform

from conftest import report

FEASIBLE = [
    # (method, n, d) pairs where a real structure fits in memory
    ("ps", 256, 2),
    ("rps", 256, 2),
    ("ddc", 256, 2),
    ("ps", 32, 3),
    ("rps", 32, 3),
    ("ddc", 32, 3),
]


def test_table1_analytic_reproduction(benchmark):
    rows = benchmark(table1)
    text = render_table1(rows)
    narrative = [
        "",
        "500 MIPS narrative (paper, Section 1):",
        f"  PS  update, n=10^2: {mips_seconds(ps_update_cost(1e2, 8)) / 86400:>12.1f} days"
        "   (paper: 'more than 6 months')",
        f"  RPS update, n=10^4: {mips_seconds(rps_update_cost(1e4, 8)) / 86400:>12.1f} days"
        "   (paper: '231 days')",
        f"  DDC update, n=10^2: {mips_seconds(ddc_update_cost(1e2, 8)):>12.4f} seconds",
        f"  DDC update, n=10^4: {mips_seconds(ddc_update_cost(1e4, 8)):>12.4f} seconds"
        "   (paper: 'under 2 seconds')",
    ]
    report("table1_analytic", text + "\n".join(narrative))
    by_n = {row.n: row.exponents() for row in rows}
    assert by_n[1e2] == (16, 16, 8, 7)
    assert by_n[1e9] == (72, 72, 36, 12)


def test_table1_model_vs_measured(benchmark):
    """Measured worst-case update ops tracked against the model's shape."""

    def measure():
        lines = [
            f"{'method':>7} {'n':>5} {'d':>2} {'model ops':>12} {'measured ops':>13} {'ratio':>7}"
        ]
        outcome = {}
        for name, n, d in FEASIBLE:
            data = dense_uniform((n,) * d, seed=1)
            method = build_method(name, data)
            method.stats.reset()
            method.add((0,) * d, 1)
            measured = method.stats.total_cell_ops
            model = update_cost(name, n, d)
            lines.append(
                f"{name:>7} {n:>5} {d:>2} {model:>12.0f} {measured:>13} "
                f"{measured / model:>7.2f}"
            )
            outcome[(name, n, d)] = (model, measured)
        return lines, outcome

    lines, outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "table1_model_vs_measured",
        "\n".join(lines)
        + "\n\nPS measured == model exactly (it rewrites the dominated region);\n"
        "RPS and DDC track the model within small constant factors.",
    )
    # PS is exact; others within a constant factor of the model.
    for (name, n, d), (model, measured) in outcome.items():
        if name == "ps":
            assert measured == model
        else:
            assert measured < 40 * model
    # The Table 1 ordering holds in the measurements.
    assert outcome[("ps", 256, 2)][1] > outcome[("rps", 256, 2)][1]
    assert outcome[("rps", 256, 2)][1] > outcome[("ddc", 256, 2)][1]


@pytest.mark.parametrize("name", ["naive", "ps", "rps", "fenwick", "basic-ddc", "ddc"])
def test_single_update_walltime(benchmark, name):
    """Wall-clock for one worst-case update per method (n=128, d=2)."""
    data = dense_uniform((128, 128), seed=2)
    method = build_method(name, data)
    counter = iter(range(10**9))

    def one_update():
        method.add((0, 0), 1 if next(counter) % 2 == 0 else -1)

    benchmark(one_update)
