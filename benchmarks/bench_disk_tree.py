"""Experiment S4.4-Disk — real I/O on the disk-resident B^c tree.

Complements the simulated buffer-pool experiment with genuine page-file
traffic: a B^c tree whose nodes live in fixed-size disk pages, accessed
through a bounded write-back cache.  Measured:

* physical page reads per query vs node-cache size (the upper levels
  pin quickly — the locality the paper's traversal argument relies on);
* tree height and reads/query vs page size (bigger pages = higher
  fanout = fewer levels = fewer accesses: the f·log_f k trade of
  Section 4.1 in its on-disk form);
* in-memory vs on-disk wall-clock for the same operation stream.
"""

from __future__ import annotations

import random

import pytest

from repro.core.keyed_bc_tree import KeyedBcTree
from repro.storage import DiskBcTree, PageFile

from conftest import report

ROWS = 20_000


def populate(tree, seed: int = 55) -> list[int]:
    rng = random.Random(seed)
    keys = [rng.randrange(0, 10 * ROWS) for _ in range(ROWS)]
    for key in keys:
        tree.add(key, 1)
    return keys


def test_reads_per_query_vs_cache(benchmark, tmp_path):
    def sweep():
        rows = []
        for cache_pages in (1, 4, 16, 64, 256, 4096):
            pages = PageFile(tmp_path / f"c{cache_pages}.pf", page_size=512)
            tree = DiskBcTree(pages, cache_pages=cache_pages)
            populate(tree)
            tree.flush()
            pages.stats.reset()
            probes = range(0, 10 * ROWS, 997)
            for probe in probes:
                tree.prefix_sum(probe)
            rows.append(
                (cache_pages, tree.height(), pages.stats.reads / len(probes))
            )
            pages.close()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"physical page reads per prefix query, {ROWS} rows, 512B pages",
        f"{'cache pages':>11} {'height':>7} {'reads/query':>12}",
    ]
    for cache_pages, height, reads in rows:
        lines.append(f"{cache_pages:>11} {height:>7} {reads:>12.2f}")
    report("disk_tree_cache_sweep", "\n".join(lines))
    reads = [r for *_, r in rows]
    assert reads == sorted(reads, reverse=True)
    # A cache holding the whole tree serves repeat queries without I/O.
    assert reads[-1] < 0.5
    # Small caches pin the upper levels but still miss on leaves.
    assert 1.0 <= reads[1] < reads[0]
    # A bufferless tree pays roughly one read per level.
    assert reads[0] >= rows[0][1] - 1


def test_height_vs_page_size(benchmark, tmp_path):
    def sweep():
        rows = []
        for page_size in (128, 256, 1024, 4096):
            pages = PageFile(tmp_path / f"p{page_size}.pf", page_size=page_size)
            tree = DiskBcTree(pages, cache_pages=1)
            populate(tree)
            tree.flush()
            pages.stats.reset()
            probes = range(0, 10 * ROWS, 1999)
            for probe in probes:
                tree.prefix_sum(probe)
            rows.append(
                (
                    page_size,
                    tree.fanout,
                    tree.height(),
                    pages.stats.reads / len(probes),
                )
            )
            pages.close()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"page size vs tree height (bufferless), {ROWS} rows",
        f"{'page bytes':>10} {'fanout':>7} {'height':>7} {'reads/query':>12}",
    ]
    for page_size, fanout, height, reads in rows:
        lines.append(f"{page_size:>10} {fanout:>7} {height:>7} {reads:>12.2f}")
    report("disk_tree_page_size", "\n".join(lines))
    heights = [height for _, _, height, _ in rows]
    assert heights == sorted(heights, reverse=True)
    assert rows[-1][1] > rows[0][1]  # fanout grows with the page


@pytest.mark.parametrize("backing", ["memory", "disk"])
def test_update_walltime(benchmark, tmp_path, backing):
    if backing == "memory":
        tree = KeyedBcTree(fanout=30)
    else:
        pages = PageFile(tmp_path / "wall.pf", page_size=512)
        tree = DiskBcTree(pages, cache_pages=64)
    populate(tree)
    rng = random.Random(56)

    def one_update():
        tree.add(rng.randrange(0, 10 * ROWS), 1)

    benchmark(one_update)
