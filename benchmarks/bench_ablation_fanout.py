"""Experiment A2 (ablation) — B^c tree fanout.

Section 4.1 prices a B^c access at ``f * log_f k``: higher fanout means
shallower trees but more STS entries scanned per node.  This bench
sweeps the fanout on a large standalone B^c tree and inside a full DDC,
exposing the (shallow) optimum the formula predicts.
"""

from __future__ import annotations

import pytest

from repro.core.bc_tree import BcTree
from repro.core.ddc import DynamicDataCube
from repro.model import bc_tree_op_cost
from repro.workloads import dense_uniform, prefix_cells

from conftest import report

FANOUTS = [4, 8, 16, 32, 64]
K = 4096


def test_fanout_sweep_bc_tree(benchmark):
    values = list(range(K))

    def sweep():
        rows = []
        for fanout in FANOUTS:
            tree = BcTree.from_values(values, fanout=fanout)
            tree.stats.reset()
            for probe in range(0, K, 37):
                tree.prefix_sum(probe)
            samples = len(range(0, K, 37))
            read_ops = tree.stats.cell_reads / samples
            tree.stats.reset()
            for probe in range(0, K, 37):
                tree.add(probe, 1)
            write_ops = tree.stats.cell_writes / samples
            rows.append((fanout, tree.height(), read_ops, write_ops))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"B^c tree with k={K} rows — cost vs fanout (model: f * log_f k)",
        f"{'fanout':>7} {'height':>7} {'reads/query':>12} "
        f"{'writes/update':>14} {'model':>7}",
    ]
    for fanout, height, reads, writes in rows:
        lines.append(
            f"{fanout:>7} {height:>7} {reads:>12.1f} {writes:>14.1f} "
            f"{bc_tree_op_cost(K, fanout):>7.1f}"
        )
    report("ablation_bc_fanout", "\n".join(lines))
    heights = [height for _, height, _, _ in rows]
    assert heights == sorted(heights, reverse=True)
    # Update cost is one STS per level: strictly improves with fanout.
    writes = [w for *_, w in rows]
    assert writes == sorted(writes, reverse=True)


@pytest.mark.parametrize("fanout", [4, 16, 64])
def test_fanout_inside_ddc_walltime(benchmark, fanout):
    data = dense_uniform((256, 256), seed=25)
    cube = DynamicDataCube.from_array(data, bc_fanout=fanout)
    cells = prefix_cells((256, 256), 64, seed=26)
    index = iter(range(10**9))

    def one_query():
        return cube.prefix_sum(cells[next(index) % len(cells)])

    benchmark(one_query)


def test_fanout_inside_ddc_ops(benchmark):
    data = dense_uniform((256, 256), seed=27)
    cells = prefix_cells((256, 256), 40, seed=28)

    def sweep():
        rows = []
        for fanout in FANOUTS:
            cube = DynamicDataCube.from_array(data, bc_fanout=fanout)
            cube.stats.reset()
            for cell in cells:
                cube.prefix_sum(cell)
            query_ops = cube.stats.total_cell_ops / len(cells)
            cube.stats.reset()
            for cell in cells:
                cube.add(cell, 1)
            update_ops = cube.stats.total_cell_ops / len(cells)
            rows.append((fanout, query_ops, update_ops))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "fanout effect inside a 256x256 DDC (mean ops per operation)",
        f"{'fanout':>7} {'query ops':>10} {'update ops':>11}",
    ]
    for fanout, query_ops, update_ops in rows:
        lines.append(f"{fanout:>7} {query_ops:>10.1f} {update_ops:>11.1f}")
    report("ablation_ddc_fanout", "\n".join(lines))
    updates = [u for _, _, u in rows]
    assert updates == sorted(updates, reverse=True)
