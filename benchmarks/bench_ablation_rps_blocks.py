"""Experiment A3 (ablation) — RPS block side: the sqrt(n) optimum.

GAES99's analysis picks block side k = sqrt(n): the local relative-
prefix update costs O(k^d) while the boundary families cost
O((n/k)^(d-|S|) k^|S|); the two balance at k = sqrt(n).  This ablation
sweeps k on a real structure and confirms the U-shape with its minimum
near sqrt(n) — the design choice the Dynamic Data Cube paper inherits
when quoting RPS's O(n^(d/2)) update bound.
"""

from __future__ import annotations

import math

import pytest

from repro.methods.relative_prefix_sum import RelativePrefixSumCube
from repro.workloads import dense_uniform, random_updates

from conftest import report

N = 256
BLOCK_SIDES = [2, 4, 8, 16, 32, 64, 128]


def test_block_side_sweep(benchmark):
    data = dense_uniform((N, N), seed=50)
    updates = random_updates((N, N), 40, seed=51)

    def sweep():
        rows = []
        for block_side in BLOCK_SIDES:
            rps = RelativePrefixSumCube.from_array(data, block_side=block_side)
            rps.stats.reset()
            rps.add((0, 0), 1)
            worst = rps.stats.cell_writes
            rps.stats.reset()
            for update in updates:
                rps.add(update.cell, update.delta)
            average = rps.stats.cell_writes / len(updates)
            rows.append((block_side, worst, average, rps.memory_cells()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sqrt_n = int(math.isqrt(N))
    lines = [
        f"RPS block-side sweep, n={N}, d=2 (GAES99 optimum: k = sqrt(n) = {sqrt_n})",
        f"{'k':>5} {'worst-case writes':>18} {'avg writes':>11} {'storage':>9}",
    ]
    for block_side, worst, average, storage in rows:
        marker = "  <- sqrt(n)" if block_side == sqrt_n else ""
        lines.append(
            f"{block_side:>5} {worst:>18,} {average:>11.1f} {storage:>9,}{marker}"
        )
    report("ablation_rps_block_side", "\n".join(lines))

    worst_by_k = {block_side: worst for block_side, worst, _, _ in rows}
    best_k = min(worst_by_k, key=worst_by_k.get)
    # The optimum sits at sqrt(n) (or its immediate neighbours).
    assert best_k in (sqrt_n // 2, sqrt_n, sqrt_n * 2)
    # The extremes degenerate toward the prefix-sum cost.
    assert worst_by_k[BLOCK_SIDES[0]] > 4 * worst_by_k[best_k]
    assert worst_by_k[BLOCK_SIDES[-1]] > 4 * worst_by_k[best_k]


@pytest.mark.parametrize("block_side", [4, 16, 64])
def test_update_walltime_by_block_side(benchmark, block_side):
    data = dense_uniform((N, N), seed=52)
    rps = RelativePrefixSumCube.from_array(data, block_side=block_side)
    updates = random_updates((N, N), 64, seed=53)
    index = iter(range(10**9))

    def one_update():
        update = updates[next(index) % len(updates)]
        rps.add(update.cell, update.delta)

    benchmark(one_update)
