"""Experiment F1 — Figure 1: comparison of update functions (log-log).

Emits the paper's three analytic curves (PS, RPS, DDC at d=8 over
n = 10^1..10^9) and an empirical companion: measured cell writes per
worst-case update on real structures as n doubles, at d=2 and d=3.  The
claim being validated is the *shape* — the ordering PS > RPS > DDC at
every n, and the log-log slopes (d, d/2, ~flat).
"""

from __future__ import annotations

import math

import pytest

from repro.methods import build_method
from repro.model import figure1_series, render_figure1
from repro.workloads import dense_uniform

from conftest import report

SIZES_2D = [32, 64, 128, 256, 512]
SIZES_3D = [8, 16, 32]


def measured_worst_case_ops(name: str, n: int, d: int) -> int:
    data = dense_uniform((n,) * d, low=0, high=5, seed=3)
    method = build_method(name, data)
    method.add((0,) * d, 1)  # pre-allocate lazily-built paths
    method.stats.reset()
    method.add((0,) * d, 1)
    return method.stats.total_cell_ops


def test_figure1_analytic_series(benchmark):
    series = benchmark(figure1_series)
    report("figure1_analytic", render_figure1(series))
    for (n, ps), (_, rps), (_, ddc) in zip(
        series["ps"], series["rps"], series["ddc"]
    ):
        if n >= 100:
            assert ps > rps > ddc


@pytest.mark.parametrize("d,sizes", [(2, SIZES_2D), (3, SIZES_3D)])
def test_figure1_empirical_shape(benchmark, d, sizes):
    """Measured update ops per method as n grows — the figure, on hardware."""

    def measure():
        table = {}
        for name in ("ps", "rps", "basic-ddc", "ddc"):
            table[name] = [measured_worst_case_ops(name, n, d) for n in sizes]
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"measured cell ops per worst-case update, d={d}"]
    lines.append(f"{'n':>8}" + "".join(f"{name:>12}" for name in table))
    for index, n in enumerate(sizes):
        lines.append(
            f"{n:>8}" + "".join(f"{table[name][index]:>12}" for name in table)
        )

    def slope(values):
        return (math.log2(values[-1]) - math.log2(values[0])) / (
            math.log2(sizes[-1]) - math.log2(sizes[0])
        )

    lines.append("")
    lines.append("log-log slope vs n (model: PS=d, RPS=d/2, Basic=d-1, DDC->0):")
    for name, values in table.items():
        lines.append(f"  {name:>10}: {slope(values):.2f}")
    report(f"figure1_empirical_d{d}", "\n".join(lines))

    # Shape assertions: ordering at the largest n, and slope separation.
    largest = {name: values[-1] for name, values in table.items()}
    assert largest["ps"] > largest["rps"] > largest["ddc"]
    assert largest["basic-ddc"] > largest["ddc"]
    assert slope(table["ps"]) == pytest.approx(d, abs=0.2)
    assert slope(table["rps"]) == pytest.approx(d / 2, abs=0.7)
    assert slope(table["ddc"]) < d / 2
