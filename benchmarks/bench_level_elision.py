"""Experiment S4.4 — the level-elision optimization trade-off.

Section 4.4: deleting the lowest ``h`` tree levels shrinks storage
toward |A| (the lowest, densest levels dominate — Table 2) at the cost
of summing up to ``2^((h+1)d)`` raw leaf cells per query.  We sweep the
equivalent ``leaf_side`` parameter and measure all three sides of the
trade: storage, query cost, and update cost, plus wall-clock.
"""

from __future__ import annotations

import pytest

from repro.core.ddc import DynamicDataCube
from repro.model import elision_query_leaf_cost, elision_levels
from repro.workloads import dense_uniform, prefix_cells

from conftest import report

N = 128
LEAF_SIDES = [2, 4, 8, 16, 32]


def test_elision_tradeoff_sweep(benchmark):
    data = dense_uniform((N, N), seed=10)
    cells = prefix_cells((N, N), 50, seed=11)

    def sweep():
        rows = []
        for leaf_side in LEAF_SIDES:
            cube = DynamicDataCube.from_array(data, leaf_side=leaf_side)
            storage = cube.memory_cells()
            cube.stats.reset()
            for cell in cells:
                cube.prefix_sum(cell)
            query_ops = cube.stats.total_cell_ops / len(cells)
            cube.stats.reset()
            for cell in cells:
                cube.add(cell, 1)
            update_ops = cube.stats.total_cell_ops / len(cells)
            rows.append((leaf_side, storage, query_ops, update_ops))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"level-elision sweep, n={N}, d=2 (h = log2(leaf_side) - 1)",
        f"{'leaf':>5} {'h':>3} {'storage':>9} {'x|A|':>6} "
        f"{'query ops':>10} {'update ops':>11} {'leaf bound':>10}",
    ]
    for leaf_side, storage, query_ops, update_ops in rows:
        lines.append(
            f"{leaf_side:>5} {elision_levels(leaf_side):>3} {storage:>9} "
            f"{storage / N**2:>6.2f} {query_ops:>10.1f} {update_ops:>11.1f} "
            f"{elision_query_leaf_cost(leaf_side, 2):>10}"
        )
    report("elision_tradeoff", "\n".join(lines))

    storages = [row[1] for row in rows]
    assert storages == sorted(storages, reverse=True)
    # Storage converges toward |A| ("within epsilon of array A").
    assert rows[-1][1] < 1.3 * N**2
    # Queries pay at most the leaf-block bound extra.
    for leaf_side, _, query_ops, _ in rows:
        assert query_ops < elision_query_leaf_cost(leaf_side, 2) + 40 * 6


@pytest.mark.parametrize("leaf_side", [2, 16])
def test_query_walltime_by_leaf_side(benchmark, leaf_side):
    data = dense_uniform((N, N), seed=12)
    cube = DynamicDataCube.from_array(data, leaf_side=leaf_side)
    cells = prefix_cells((N, N), 32, seed=13)
    index = iter(range(10**9))

    def one_query():
        return cube.prefix_sum(cells[next(index) % len(cells)])

    benchmark(one_query)
