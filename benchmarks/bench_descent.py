"""Slab-tree descent microbench: per-level gathers and batch range sums.

The vector backend's claim is architectural: the paper's b-ary descent,
restated as one fancy-index gather per level slab over a contiguous
buffer, beats the pointer walk by constants — not by answering a
different question.  This bench pins that claim down at two zoom
levels:

* **per-level gathers** — for the largest batch, each level slab's
  :meth:`~repro.core.slab_tree.SlabTree.gather_level` is timed in
  isolation, so the artifact shows where descent time actually goes
  (root-most slabs are tiny and cache-resident; the leaf-level slab is
  the big one) and any regression localises to a level;
* **end-to-end batches** — ``range_sum_many`` on the vector backend vs
  the same batch answered by the pure-python reference
  :class:`~repro.core.ddc.DynamicDataCube` (its adaptive batch path,
  i.e. the best the reference can do), swept over batch size x query
  locality.

Results land in ``benchmarks/results/descent.json`` and the headline
artifact ``BENCH_descent.json`` at the repository root.

Set ``REPRO_BENCH_SMOKE=1`` to run a tiny configuration (CI smoke).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.artifacts import make_document
from repro.core.slab_tree import expand_corners, kernel_backend
from repro.methods import build_method
from repro.workloads import clustered, query_stream

from conftest import report, write_root_artifact

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 32 if SMOKE else 256
SHAPE = (N, N)
BATCH_SIZES = [4, 64] if SMOKE else [16, 64, 256]
LOCALITIES = ["uniform", "zipf"]
REPS = 1 if SMOKE else 5
#: Each query spans this fraction of every axis (anchored at a cell from
#: the locality-shaped stream), so zipf batches share descent paths the
#: way the path-sharing benches' query streams do.
EXTENT = 0.125


def _ranges(cells: list, shape: tuple) -> list:
    """Inclusive ranges anchored at locality-shaped cells."""
    spans = [max(1, int(size * EXTENT)) for size in shape]
    out = []
    for cell in cells:
        low = tuple(
            min(cell[axis], shape[axis] - spans[axis])
            for axis in range(len(shape))
        )
        high = tuple(low[axis] + spans[axis] - 1 for axis in range(len(shape)))
        out.append((low, high))
    return out


def _best(fn, reps: int) -> float:
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_descent_gathers(benchmark):
    data = clustered(SHAPE, seed=90)

    def measure():
        vector = build_method("vector", data)
        # Force the batched descent: this bench times the kernel, never
        # the adaptive fallback.
        vector.batch_crossover_override = 1
        reference = build_method("ddc", data)
        tree = vector.tree
        rows = []
        level_rows = []
        for locality in LOCALITIES:
            for batch in BATCH_SIZES:
                cells = query_stream(
                    SHAPE, batch, locality=locality, seed=91 + batch
                )
                ranges = _ranges(cells, SHAPE)
                # Warm both paths (first-touch numpy setup; the
                # reference's adaptive warm-up also calibrates its
                # crossover outside the timed region).
                vector_results = vector.range_sum_many(ranges)
                reference_results = reference.range_sum_many(ranges)
                assert [int(v) for v in vector_results] == [
                    int(v) for v in reference_results
                ], f"vector/reference mismatch ({locality}, batch={batch})"
                vector_seconds = _best(
                    lambda: vector.range_sum_many(ranges), REPS
                )
                ddc_seconds = _best(
                    lambda: reference.range_sum_many(ranges), REPS
                )
                rows.append(
                    {
                        "shape": list(SHAPE),
                        "locality": locality,
                        "batch": batch,
                        "kernel": kernel_backend(),
                        "levels": tree.level_count,
                        "vector_seconds": vector_seconds,
                        "ddc_seconds": ddc_seconds,
                        "speedup_vs_ddc": (
                            ddc_seconds / vector_seconds
                            if vector_seconds
                            else None
                        ),
                        "queries_per_second": (
                            batch / vector_seconds if vector_seconds else None
                        ),
                    }
                )
                if batch == BATCH_SIZES[-1]:
                    # Per-level probe: the corner-expanded coordinate
                    # batch every range query actually gathers with.
                    lows = np.asarray(
                        [low for low, _ in ranges], dtype=np.int64
                    )
                    highs = np.asarray(
                        [high for _, high in ranges], dtype=np.int64
                    )
                    corners, _, _ = expand_corners(lows, highs)
                    for index, layout in enumerate(tree.level_layout()):
                        seconds = _best(
                            lambda: tree.gather_level(index, corners), REPS
                        )
                        level_rows.append(
                            {
                                "locality": locality,
                                "batch": batch,
                                "level": index,
                                "combo": layout["combo"],
                                "slab_cells": layout["cells"],
                                "gather_seconds": seconds,
                                "coords": int(corners.shape[0]),
                            }
                        )
        return rows, level_rows

    rows, level_rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"slab-tree descent vs pure-python DDC, {N}x{N} clustered cube "
        f"(kernel: {kernel_backend()})",
        f"{'locality':<8} {'batch':>6} {'vector s':>10} {'ddc s':>10} "
        f"{'speedup':>8} {'q/s':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['locality']:<8} {row['batch']:>6} "
            f"{row['vector_seconds']:>10.6f} {row['ddc_seconds']:>10.6f} "
            f"{row['speedup_vs_ddc']:>8.1f} {row['queries_per_second']:>12,.0f}"
        )
    lines.append("")
    lines.append(
        f"per-level gathers at batch={BATCH_SIZES[-1]} "
        f"(corner-expanded coordinates)"
    )
    lines.append(
        f"{'locality':<8} {'level':>5} {'combo':<10} {'slab cells':>10} "
        f"{'gather s':>10}"
    )
    for row in level_rows:
        lines.append(
            f"{row['locality']:<8} {row['level']:>5} "
            f"{str(row['combo']):<10} {row['slab_cells']:>10,} "
            f"{row['gather_seconds']:>10.7f}"
        )
    document = make_document(
        "descent",
        rows,
        level_gathers=level_rows,
        kernel=kernel_backend(),
    )
    report("descent", "\n".join(lines), data=document)
    write_root_artifact("BENCH_descent.json", document)

    # Every level slab contributed a timing row for every locality.
    levels = rows[0]["levels"]
    assert len(level_rows) == levels * len(LOCALITIES)
    if not SMOKE:
        # Acceptance: the vectorised descent answers a 64-query batch at
        # least 5x faster than the pure-python reference — under both
        # localities, so the win is the kernel, not workload skew.
        for locality in LOCALITIES:
            row = next(
                r
                for r in rows
                if r["locality"] == locality and r["batch"] == 64
            )
            assert row["speedup_vs_ddc"] >= 5.0, (
                f"vector descent only {row['speedup_vs_ddc']:.1f}x over the "
                f"reference at {locality} batch=64"
            )
