"""Closed-loop load generator for the HTTP serving front-end.

Drives :class:`~repro.serve.CubeServer` with N concurrent asyncio
clients — each a persistent connection issuing one request at a time
(closed loop), or an arrival timer firing at a fixed rate over a
connection pool (open loop).  Reads draw from a zipf-skewed pool of hot
ranges and tenants are zipf-skewed too, so the workload exercises both
the single-flight coalescer (identical hot reads collide in flight) and
the per-tenant admission path.  The write fraction keeps bumping shard
epochs, so reads keep missing the engine cache and coalescing stays
load-bearing rather than an artifact of a warmed cache.

Per row the artifact records request latency quantiles (p50/p99),
throughput, the coalesce hit rate (followers / reads, from the
``coalesced`` response flag), admission counts (429s, 503s), and shed
responses.  Results land in ``benchmarks/results/serve_load.json`` and
the headline artifact ``BENCH_serve.json`` at the repository root.

Two entry points:

* pytest (``REPRO_BENCH_SMOKE=1`` for the CI-sized run) boots the
  server in-process and generates the artifact;
* ``python benchmarks/bench_serve.py --url http://host:port ...`` drives
  an external ``repro serve`` process — the CI smoke job uses
  ``--verify`` to check every response against a locally rebuilt cube.

Set ``REPRO_BENCH_SMOKE=1`` to run the tiny configuration (CI smoke).
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.artifacts import make_document  # noqa: E402
from repro.serve import AdmissionPolicy, ServeClient  # noqa: E402
from repro.workloads import clustered, random_ranges  # noqa: E402

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SHAPE = (32, 32) if SMOKE else (64, 64)
SEED = 0
POOL_SIZE = 16 if SMOKE else 32
TENANTS = 4 if SMOKE else 8
ZIPF_S = 1.1
READ_MIX = 0.9
#: Closed-loop concurrency levels per mode.  The full run must include
#: the >= 1000-client row — the PR's headline claim.
CLIENT_COUNTS = [64] if SMOKE else [256, 1000]
REQUESTS_PER_CLIENT = 4 if SMOKE else 6


def zipf_weights(n: int, s: float) -> list[float]:
    weights = [1.0 / (i + 1) ** s for i in range(n)]
    total = sum(weights)
    return [w / total for w in weights]


def zipf_pick(rng: random.Random, cumulative: list[float]) -> int:
    x = rng.random()
    for index, bound in enumerate(cumulative):
        if x < bound:
            return index
    return len(cumulative) - 1


def _cumulative(weights: list[float]) -> list[float]:
    out, running = [], 0.0
    for w in weights:
        running += w
        out.append(running)
    return out


def build_pool(shape, seed: int):
    """The hot read pool: ``(low, high)`` tuples, zipf-ranked."""
    return [
        (tuple(q.low), tuple(q.high))
        for q in random_ranges(shape, POOL_SIZE, seed=seed)
    ]


def expected_values(shape, seed: int, pool) -> dict:
    """Ground-truth range sums for --verify (read-only runs)."""
    data = clustered(shape, seed=seed)
    out = {}
    for low, high in pool:
        slices = tuple(slice(lo, hi + 1) for lo, hi in zip(low, high))
        out[(low, high)] = int(data[slices].sum())
    return out


class LoadStats:
    """Tally shared by every client coroutine of one run."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.reads = 0
        self.writes = 0
        self.coalesced = 0
        self.shed_responses = 0
        self.partial = 0
        self.status: dict[int, int] = {}
        self.throttled = 0       # 429
        self.rejected = 0        # 503
        self.dropped = 0         # open loop: no free connection at fire time
        self.mismatches = 0

    def record(self, latency: float, response, *, read: bool, expect=None) -> None:
        self.latencies.append(latency)
        self.status[response.status] = self.status.get(response.status, 0) + 1
        if response.status == 429:
            self.throttled += 1
            return
        if response.status == 503:
            self.rejected += 1
            return
        body = response.body if isinstance(response.body, dict) else {}
        if read:
            self.reads += 1
            if body.get("coalesced"):
                self.coalesced += 1
            if body.get("partial"):
                self.partial += 1
        else:
            self.writes += 1
        if body.get("shed"):
            self.shed_responses += 1
        if expect is not None and body.get("value") != expect:
            self.mismatches += 1

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def closed_loop(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_client: int,
    read_mix: float,
    pool,
    seed: int,
    codec: str = "json",
    expected: dict | None = None,
    shape=SHAPE,
) -> tuple[LoadStats, float]:
    """N clients, each one request in flight at a time."""
    stats = LoadStats()
    tenant_cum = _cumulative(zipf_weights(TENANTS, ZIPF_S))
    pool_cum = _cumulative(zipf_weights(len(pool), ZIPF_S))

    async def one_client(index: int) -> None:
        rng = random.Random(seed * 100_003 + index)
        tenant = f"tenant-{zipf_pick(rng, tenant_cum)}"
        client = ServeClient(host, port, codec=codec, tenant=tenant)
        try:
            for _ in range(requests_per_client):
                read = rng.random() < read_mix
                start = time.perf_counter()
                if read:
                    low, high = pool[zipf_pick(rng, pool_cum)]
                    response = await client.query(low, high)
                    expect = expected.get((low, high)) if expected else None
                else:
                    cell = tuple(rng.randrange(n) for n in shape)
                    response = await client.update(cell, 0)
                    expect = None
                stats.record(
                    time.perf_counter() - start,
                    response,
                    read=read,
                    expect=expect,
                )
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*[one_client(i) for i in range(clients)])
    return stats, time.perf_counter() - start


async def open_loop(
    host: str,
    port: int,
    *,
    rate: float,
    duration: float,
    connections: int,
    read_mix: float,
    pool,
    seed: int,
    codec: str = "json",
    shape=SHAPE,
) -> tuple[LoadStats, float]:
    """Fixed arrival rate over a bounded connection pool.

    An arrival finding no free connection is *dropped* and counted —
    the open-loop overload signal the closed loop cannot produce.
    """
    stats = LoadStats()
    tenant_cum = _cumulative(zipf_weights(TENANTS, ZIPF_S))
    pool_cum = _cumulative(zipf_weights(len(pool), ZIPF_S))
    idle: asyncio.Queue = asyncio.Queue()
    for index in range(connections):
        idle.put_nowait(
            ServeClient(host, port, codec=codec, tenant=f"tenant-{index % TENANTS}")
        )
    rng = random.Random(seed)
    inflight: set[asyncio.Task] = set()

    async def fire(client: ServeClient) -> None:
        read = rng.random() < read_mix
        start = time.perf_counter()
        if read:
            low, high = pool[zipf_pick(rng, pool_cum)]
            response = await client.query(low, high)
        else:
            cell = tuple(rng.randrange(n) for n in shape)
            response = await client.update(cell, 0)
        stats.record(time.perf_counter() - start, response, read=read)
        idle.put_nowait(client)

    interval = 1.0 / rate
    start = time.perf_counter()
    deadline = start + duration
    next_fire = start
    while time.perf_counter() < deadline:
        now = time.perf_counter()
        if now < next_fire:
            await asyncio.sleep(next_fire - now)
        next_fire += interval
        try:
            client = idle.get_nowait()
        except asyncio.QueueEmpty:
            stats.dropped += 1
            continue
        task = asyncio.create_task(fire(client))
        inflight.add(task)
        task.add_done_callback(inflight.discard)
    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)
    elapsed = time.perf_counter() - start
    while not idle.empty():
        await idle.get_nowait().close()
    return stats, elapsed


def make_row(
    arrival: str, clients: int, stats: LoadStats, elapsed: float, codec: str
) -> dict:
    total = len(stats.latencies)
    return {
        "arrival": arrival,
        "clients": clients,
        "codec": codec,
        "read_mix": READ_MIX,
        "locality": "zipf",
        "requests": total,
        "seconds": round(elapsed, 4),
        "rps": round(total / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(stats.quantile(0.50) * 1e3, 3),
        "p99_ms": round(stats.quantile(0.99) * 1e3, 3),
        "coalesce_hit_rate": (
            round(stats.coalesced / stats.reads, 4) if stats.reads else 0.0
        ),
        "coalesced": stats.coalesced,
        "reads": stats.reads,
        "writes": stats.writes,
        "throttled_429": stats.throttled,
        "rejected_503": stats.rejected,
        "dropped": stats.dropped,
        "shed_responses": stats.shed_responses,
        "partial_responses": stats.partial,
        "mismatches": stats.mismatches,
    }


def render_rows(rows: list[dict]) -> str:
    header = (
        f"{'arrival':<8} {'clients':>7} {'reqs':>6} {'rps':>8} "
        f"{'p50ms':>8} {'p99ms':>8} {'coalesce':>9} {'429':>5} {'503':>5} "
        f"{'shed':>6}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['arrival']:<8} {row['clients']:>7} {row['requests']:>6} "
            f"{row['rps']:>8.1f} {row['p50_ms']:>8.3f} {row['p99_ms']:>8.3f} "
            f"{row['coalesce_hit_rate']:>9.2%} {row['throttled_429']:>5} "
            f"{row['rejected_503']:>5} {row['shed_responses']:>6}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point — boots the server in-process
# ----------------------------------------------------------------------


def test_serve_load(benchmark=None):
    from repro.engine import ShardedEngine
    from repro.engine.resilience import ResiliencePolicy
    from repro.serve import CubeServer

    pool = build_pool(SHAPE, SEED)
    expected = expected_values(SHAPE, SEED, pool)
    rows: list[dict] = []

    async def run() -> None:
        engine = ShardedEngine.from_array(
            clustered(SHAPE, seed=SEED),
            shards=4,
            resilience=ResiliencePolicy(degradation="strict"),
        )
        server = CubeServer(
            engine,
            policy=AdmissionPolicy(max_concurrency=32, max_queue=4096),
        )
        await server.start()
        try:
            # Read-only correctness pass against the untouched cube.
            stats, elapsed = await closed_loop(
                server.host,
                server.port,
                clients=min(CLIENT_COUNTS),
                requests_per_client=REQUESTS_PER_CLIENT,
                read_mix=1.0,
                pool=pool,
                seed=SEED,
                expected=expected,
            )
            assert stats.mismatches == 0, (
                f"{stats.mismatches} response(s) disagreed with the "
                f"locally computed range sums"
            )
            # The measured mixed-workload rows.
            for clients in CLIENT_COUNTS:
                stats, elapsed = await closed_loop(
                    server.host,
                    server.port,
                    clients=clients,
                    requests_per_client=REQUESTS_PER_CLIENT,
                    read_mix=READ_MIX,
                    pool=pool,
                    seed=SEED + clients,
                )
                rows.append(make_row("closed", clients, stats, elapsed, "json"))
            if not SMOKE:
                stats, elapsed = await open_loop(
                    server.host,
                    server.port,
                    rate=500.0,
                    duration=4.0,
                    connections=256,
                    read_mix=READ_MIX,
                    pool=pool,
                    seed=SEED,
                )
                rows.append(make_row("open", 256, stats, elapsed, "json"))
        finally:
            await server.stop()
            engine.close()

    asyncio.run(run())
    assert rows and all(row["requests"] > 0 for row in rows)
    assert any(row["coalesce_hit_rate"] > 0 for row in rows), (
        "zipf-skewed concurrent reads produced zero coalesced responses"
    )
    document = make_document(
        "serve_load",
        rows=rows,
        shape=list(SHAPE),
        pool_size=POOL_SIZE,
        tenants=TENANTS,
        zipf_s=ZIPF_S,
        smoke=SMOKE,
    )
    from conftest import report, write_root_artifact

    report("serve_load", render_rows(rows), data=document)
    write_root_artifact("BENCH_serve.json", document)


# ----------------------------------------------------------------------
# CLI entry point — drives an external ``repro serve`` process
# ----------------------------------------------------------------------


def _parse_url(url: str) -> tuple[str, int]:
    from urllib.parse import urlsplit

    split = urlsplit(url if "//" in url else f"http://{url}")
    if split.hostname is None or split.port is None:
        raise SystemExit(f"--url must look like http://host:port, got {url!r}")
    return split.hostname, split.port


async def _wait_ready(host: str, port: int, timeout: float) -> None:
    deadline = time.perf_counter() + timeout
    last: Exception | None = None
    while time.perf_counter() < deadline:
        client = ServeClient(host, port)
        try:
            response = await client.healthz()
            if response.status in (200, 503):
                return
        except (ConnectionError, OSError) as exc:
            last = exc
        finally:
            await client.close()
        await asyncio.sleep(0.1)
    raise SystemExit(f"server at {host}:{port} never became ready: {last}")


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", required=True, help="http://host:port")
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument(
        "--requests", type=int, default=200, help="total request floor"
    )
    parser.add_argument("--read-mix", type=float, default=READ_MIX)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="read-only run; check every value against a local rebuild "
        "of the server's --shape/--seed cube",
    )
    parser.add_argument("--shape", type=int, nargs="+", default=[64, 64])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--codec", default="json", choices=("json", "msgpack"))
    parser.add_argument(
        "--wait-ready", type=float, default=0.0, dest="wait_ready",
        help="poll /healthz for up to this many seconds before starting",
    )
    parser.add_argument(
        "--duration", type=float, default=0.0,
        help="soak mode: keep issuing closed-loop rounds for this long",
    )
    parser.add_argument("--json", default=None, help="write the rows here")
    args = parser.parse_args(argv)

    host, port = _parse_url(args.url)
    shape = tuple(args.shape)
    pool = build_pool(shape, args.seed)
    expected = expected_values(shape, args.seed, pool) if args.verify else None
    read_mix = 1.0 if args.verify else args.read_mix
    per_client = max(1, math.ceil(args.requests / args.clients))

    async def run() -> list[dict]:
        if args.wait_ready > 0:
            await _wait_ready(host, port, args.wait_ready)
        rows = []
        rounds = 0
        deadline = time.perf_counter() + args.duration
        while True:
            stats, elapsed = await closed_loop(
                host,
                port,
                clients=args.clients,
                requests_per_client=per_client,
                read_mix=read_mix,
                pool=pool,
                seed=args.seed + rounds,
                codec=args.codec,
                expected=expected,
                shape=shape,
            )
            rows.append(
                make_row("closed", args.clients, stats, elapsed, args.codec)
            )
            rounds += 1
            if args.duration <= 0 or time.perf_counter() >= deadline:
                break
        return rows

    rows = asyncio.run(run())
    print(render_rows(rows))
    total_mismatches = sum(row["mismatches"] for row in rows)
    if args.json:
        document = make_document(
            "serve_load", rows=rows, shape=list(shape), verify=args.verify
        )
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    if args.verify and total_mismatches:
        print(f"FAIL: {total_mismatches} mismatched response value(s)")
        return 1
    if args.verify:
        print(
            f"verified {sum(row['reads'] for row in rows)} responses "
            f"against the local cube: all exact"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
