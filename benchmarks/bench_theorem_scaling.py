"""Experiment S4.3 — Theorems 1 and 2: O(log^d n) queries and updates.

Theorem 1: a query descends exactly one child per level — log2(n)
primary-node visits, independent of dimensionality.  Theorem 2: with
secondary structures included, both queries and updates cost O(log^d n).
This bench measures both op counts and wall-clock across n and d and
verifies the polylogarithmic shape: when n doubles, cost grows by an
additive polylog term, not a multiplicative polynomial one.
"""

from __future__ import annotations

import math

import pytest

from repro.core.ddc import DynamicDataCube
from repro.workloads import dense_uniform, prefix_cells

from conftest import report


def build(n: int, d: int) -> DynamicDataCube:
    return DynamicDataCube.from_array(dense_uniform((n,) * d, seed=5))


def mean_ops(cube, operation, samples) -> float:
    cube.stats.reset()
    for sample in samples:
        operation(cube, sample)
    return cube.stats.total_cell_ops / len(samples)


@pytest.mark.parametrize("d,sizes", [(1, [64, 4096]), (2, [32, 512]), (3, [8, 32])])
def test_query_update_polylog_scaling(benchmark, d, sizes):
    def measure():
        rows = []
        for n in sizes:
            cube = build(n, d)
            cells = prefix_cells((n,) * d, 40, seed=6)
            query_ops = mean_ops(
                cube, lambda c, cell: c.prefix_sum(cell), cells
            )
            update_ops = mean_ops(cube, lambda c, cell: c.add(cell, 1), cells)
            rows.append((n, query_ops, update_ops))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"DDC mean op counts, d={d} (random prefix queries / point updates)",
        f"{'n':>6} {'query ops':>10} {'update ops':>11} "
        f"{'(log2 n)^d':>11}",
    ]
    for n, q, u in rows:
        lines.append(f"{n:>6} {q:>10.1f} {u:>11.1f} {math.log2(n) ** d:>11.1f}")
    report(f"theorem2_scaling_d{d}", "\n".join(lines))

    (n1, q1, u1), (n2, q2, u2) = rows
    size_ratio = n2 / n1
    model_ratio = (math.log2(n2) / math.log2(n1)) ** d
    # Costs must track the polylog model and stay sublinear in n.
    assert q2 / q1 < 1.8 * model_ratio
    assert u2 / u1 < 1.8 * model_ratio
    assert q2 / q1 < size_ratio
    assert u2 / u1 < size_ratio


def test_theorem1_exact_navigation(benchmark):
    """Exactly log2(n / leaf_side) primary nodes per query, any d."""
    results = {}
    for d in (1, 2, 3):
        n = 64
        cube = DynamicDataCube.from_array(
            dense_uniform((n,) * d, seed=7), secondary_kind="fenwick"
        )
        cube.stats.reset()
        cube.prefix_sum((n - 1,) * d)
        results[d] = cube.stats.node_visits

    def probe():
        cube = DynamicDataCube.from_array(
            dense_uniform((64, 64), seed=7), secondary_kind="fenwick"
        )
        return cube.prefix_sum((63, 63))

    benchmark(probe)
    report(
        "theorem1_navigation",
        "primary-tree node visits per prefix query (n=64, fenwick "
        "secondaries so the counter isolates the primary tree):\n"
        + "\n".join(f"  d={d}: {visits} visits" for d, visits in results.items())
        + "\n(expected log2(64/2) = 5 at every d — Theorem 1)",
    )
    assert results == {1: 5, 2: 5, 3: 5}


@pytest.mark.parametrize("n", [256, 1024])
def test_query_walltime(benchmark, n):
    cube = build(n, 2)
    cells = prefix_cells((n, n), 64, seed=8)
    index = iter(range(10**9))

    def one_query():
        return cube.prefix_sum(cells[next(index) % len(cells)])

    benchmark(one_query)


@pytest.mark.parametrize("n", [256, 1024])
def test_update_walltime(benchmark, n):
    cube = build(n, 2)
    cells = prefix_cells((n, n), 64, seed=9)
    index = iter(range(10**9))

    def one_update():
        cube.add(cells[next(index) % len(cells)], 1)

    benchmark(one_update)
