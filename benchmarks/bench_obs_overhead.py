"""Observability overhead: disabled mode must be free, enabled bounded.

The whole design premise of :mod:`repro.obs` is that every structure
carries the shared ``NULL_OBS`` facade until an operator opts in, and
the hot paths guard all instrumentation behind one ``obs.enabled``
predicate.  This bench proves that premise with numbers:

* **disabled** — the stock engine (``NULL_OBS``), exactly the PR 3 code
  path plus one attribute read and one falsy branch per operation;
* **disabled_again** — a second identical disabled batch.  Its delta vs
  the first batch is judged against the *within-batch* spread (the
  measured noise floor) — the only honest yardstick for "within noise";
* **enabled** — a full :class:`~repro.obs.Observability` wiring with
  head sampling (every ``SAMPLE_EVERY``-th trace) and the slow-query
  log armed, i.e. a realistic production configuration.

A second test runs the same discipline over the **process executor**
(PR 9's cross-process telemetry): *disabled* (``NULL_OBS`` — workers
attach no metric shards), *parent_only*
(``remote_worker_metrics=False`` — parent-side instruments only), and
*full_harvest* (per-worker shared-memory metric shards written on every
op, harvested into the parent registry at the end of the replay).  The
gated claim is the **marginal** cost: ``full_harvest / parent_only``
must stay ≤ ``HARVEST_CEILING`` on the K=4 zipf read-heavy row — the
seqlock shard writes and the snapshot/merge pass are small-constant
additions to an already-instrumented pool.

Each mode replays the same read/write stream ``REPEATS`` times and
keeps the *minimum* wall time (minimum-of-repeats discards scheduler
hiccups; means would smear them in).  Both tests upsert mode-keyed rows
into the headline artifact ``BENCH_obs_overhead.json`` at the
repository root (partial runs refresh their row without losing the
other's).

CI runs this with ``REPRO_BENCH_SMOKE=1`` and asserts the disabled-mode
bounds plus the harvest ceiling — absolute enabled-mode cost is
workload-dependent and is recorded, not gated, in smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.artifacts import load_document, upsert_row, write_document
from repro.engine import ShardedEngine
from repro.obs import Observability
from repro.workloads import RangeQuery, clustered, read_write_stream

from conftest import REPO_ROOT, report

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 32 if SMOKE else 128
SHAPE = (N, N)
EVENTS = 150 if SMOKE else 800
SHARDS = 4
CACHE_SIZE = 1024
#: Update-heavy mix: a 50% write stream maximises instrumented work per
#: event (every write bumps an epoch; every read misses more often), so
#: the measured overhead is an upper bound for read-heavy serving.
MIX = 0.5
REPEATS = 3 if SMOKE else 5
SAMPLE_EVERY = 8
#: Multiple of the measured noise floor the disabled-mode delta may
#: reach.  Generous because the floor itself is a single small number;
#: the point is catching a *structural* regression (an instrumented
#: branch that stopped being free), not 2% jitter.
NOISE_BUDGET = 6.0
#: Process matrix: read-heavy zipf serving over K=4 shm shards.  Each
#: timed region replays the stream ``PROCESS_LOOPS`` times (and, in
#: full-harvest mode, harvests once per replay) — worker spawn stays
#: outside the region while the measured window grows past scheduler
#: jitter, and the fixed first-harvest cost (registering per-worker
#: children) amortises across steady-state harvests.
PROCESS_EVENTS = 250 if SMOKE else 600
PROCESS_LOOPS = 3
PROCESS_REPEATS = 5 if SMOKE else 7
PROCESS_MIX = 0.9
#: Gated bound on ``full_harvest / parent_only`` — the marginal cost of
#: worker-side shard writes plus the parent's snapshot/merge pass.
HARVEST_CEILING = 1.15

#: Artifact identity: rows are keyed by mode so the inline and process
#: tests refresh their own rows independently.
ARTIFACT = "BENCH_obs_overhead.json"
ROW_KEY = ("mode", "shape", "events", "mix")


def _upsert_artifact_row(row: dict) -> None:
    """Merge one mode-keyed row into the root artifact."""
    path = REPO_ROOT / ARTIFACT
    document = load_document(path, "obs_overhead")
    # Drop pre-PR-9 rows (no mode key) — same schema_version, new row
    # identity; a stale un-keyed row would dodge the upsert forever.
    document["rows"] = [r for r in document["rows"] if r.get("mode")]
    upsert_row(document, row, ROW_KEY)
    write_document(path, document)


def _replay(engine, events) -> None:
    for event in events:
        if isinstance(event, RangeQuery):
            engine.range_sum(event.low, event.high)
        else:
            engine.add(event.cell, event.delta)


def _run_mode(data, events, obs) -> tuple[float, float]:
    """Replay ``REPEATS`` times on fresh engines.

    Returns ``(best, spread)``: the minimum wall seconds (discarding
    scheduler hiccups) and the max-min spread across the repeats, which
    measures this machine's run-to-run timing noise for the workload.
    """
    samples = []
    for _ in range(REPEATS):
        engine = ShardedEngine.from_array(
            data,
            shards=SHARDS,
            method="ddc",
            cache_size=CACHE_SIZE,
            **({"obs": obs} if obs is not None else {}),
        )
        engine.reset_stats()
        start = time.perf_counter()
        _replay(engine, events)
        samples.append(time.perf_counter() - start)
        engine.close()
    return min(samples), max(samples) - min(samples)


def test_obs_overhead(benchmark):
    data = clustered(SHAPE, seed=90)
    events = read_write_stream(SHAPE, EVENTS, mix=MIX, locality="zipf", seed=91)

    def measure():
        disabled, spread_a = _run_mode(data, events, None)
        disabled_again, spread_b = _run_mode(data, events, None)
        enabled, _ = _run_mode(
            data,
            events,
            Observability(
                trace_sample_every=SAMPLE_EVERY,
                slow_query_seconds=1e-3,
            ),
        )
        return {
            "disabled_seconds": disabled,
            "disabled_again_seconds": disabled_again,
            "enabled_seconds": enabled,
            "noise_floor_seconds": max(spread_a, spread_b),
        }

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    disabled = timings["disabled_seconds"]
    disabled_again = timings["disabled_again_seconds"]
    enabled = timings["enabled_seconds"]
    noise_floor = timings["noise_floor_seconds"]
    disabled_delta = disabled_again - disabled
    enabled_ratio = enabled / disabled if disabled else None

    budget = max(NOISE_BUDGET * noise_floor, 0.25 * disabled)
    row = {
        "mode": "inline",
        "shape": list(SHAPE),
        "events": EVENTS,
        "mix": MIX,
        "shards": SHARDS,
        "repeats": REPEATS,
        "sample_every": SAMPLE_EVERY,
        **timings,
        "disabled_delta_seconds": disabled_delta,
        "enabled_overhead_ratio": enabled_ratio,
        "disabled_delta_over_budget": (
            abs(disabled_delta) / budget if budget else 0.0
        ),
    }

    lines = [
        f"observability overhead, {N}x{N} cube, {EVENTS} events "
        f"(mix={MIX}, {REPEATS} repeats, min kept)",
        f"{'mode':<16} {'seconds':>10} {'vs disabled':>12}",
        f"{'disabled':<16} {disabled:>10.5f} {'1.00x':>12}",
        f"{'disabled again':<16} {disabled_again:>10.5f} "
        f"{disabled_again / disabled:>11.2f}x",
        f"{'enabled':<16} {enabled:>10.5f} {enabled_ratio:>11.2f}x",
        f"noise floor {noise_floor * 1e3:.3f}ms; enabled overhead "
        f"{(enabled_ratio - 1) * 100:.1f}%",
    ]
    report("obs_overhead", "\n".join(lines), data={"rows": [row]})
    _upsert_artifact_row(row)

    # Acceptance (the only gated bound): disabled-mode timing is stable
    # to within measured noise.  The delta between two independent
    # disabled batches must stay within a small multiple of the
    # within-batch spread; an absolute floor keeps the gate meaningful
    # when the repeats happen to land nearly identical.
    assert abs(disabled_delta) <= budget, (
        f"disabled-mode replays differ by {disabled_delta:.5f}s, "
        f"budget {budget:.5f}s — the obs.enabled guard is no longer free"
    )
    if not SMOKE:
        # Recorded-and-bounded: full tracing with 1-in-8 head sampling
        # stays within small-constant territory on this worst-case
        # write-heavy stream.  The <10% production target holds for
        # sampled configs on larger cubes; tiny bench trees make the
        # fixed per-event cost look relatively larger, and a loaded
        # machine inflates the ratio further, so the gate is a loose
        # regression backstop — the artifact records the exact ratio.
        assert enabled_ratio < 3.0, (
            f"enabled-mode overhead {enabled_ratio:.2f}x exceeds the bound"
        )


def _run_process_mode(data, events, obs, harvest: bool) -> tuple[float, float]:
    """Replay ``REPEATS`` times on fresh process-backed engines.

    The timed region covers ``PROCESS_LOOPS`` replays, each followed by
    a delta flush (so worker-side apply work is complete in every mode)
    and — when ``harvest`` is set — one full harvest of the workers'
    shared-memory metric shards into the parent registry.  Returns
    ``(best, spread)`` like ``_run_mode``.
    """
    samples = []
    for _ in range(PROCESS_REPEATS):
        engine = ShardedEngine.from_array(
            data,
            shards=SHARDS,
            method="ddc",
            cache_size=CACHE_SIZE,
            executor="process",
            **({"obs": obs} if obs is not None else {}),
        )
        engine.reset_stats()
        start = time.perf_counter()
        for _ in range(PROCESS_LOOPS):
            _replay(engine, events)
            engine.process_pool.flush()
            if harvest:
                engine.harvest_worker_metrics()
        samples.append(time.perf_counter() - start)
        engine.close()
    return min(samples), max(samples) - min(samples)


def test_obs_overhead_process(benchmark):
    """Cross-process telemetry cost over the K=4 shm worker pool."""
    data = clustered(SHAPE, seed=92)
    events = read_write_stream(
        SHAPE, PROCESS_EVENTS, mix=PROCESS_MIX, locality="zipf", seed=93
    )

    def measure():
        disabled, spread_a = _run_process_mode(data, events, None, False)
        disabled_again, spread_b = _run_process_mode(data, events, None, False)
        parent_only, _ = _run_process_mode(
            data,
            events,
            Observability(
                trace_sample_every=SAMPLE_EVERY,
                slow_query_seconds=1e-3,
                remote_worker_metrics=False,
            ),
            False,
        )
        full_harvest, _ = _run_process_mode(
            data,
            events,
            Observability(
                trace_sample_every=SAMPLE_EVERY,
                slow_query_seconds=1e-3,
            ),
            True,
        )
        return {
            "disabled_seconds": disabled,
            "disabled_again_seconds": disabled_again,
            "parent_only_seconds": parent_only,
            "full_harvest_seconds": full_harvest,
            "noise_floor_seconds": max(spread_a, spread_b),
        }

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    disabled = timings["disabled_seconds"]
    disabled_again = timings["disabled_again_seconds"]
    parent_only = timings["parent_only_seconds"]
    full_harvest = timings["full_harvest_seconds"]
    noise_floor = timings["noise_floor_seconds"]
    disabled_delta = disabled_again - disabled
    parent_ratio = parent_only / disabled if disabled else None
    harvest_ratio = full_harvest / parent_only if parent_only else None
    budget = max(NOISE_BUDGET * noise_floor, 0.25 * disabled)
    # The gated form discounts the machine's measured run-to-run noise
    # (the spread between two *identical* disabled batches) from the
    # harvest delta: on a quiet machine it equals the raw ratio, on a
    # loaded CI runner it gates the structural cost instead of jitter.
    harvest_delta = full_harvest - parent_only
    adjusted_ratio = (
        max(1.0, 1.0 + (harvest_delta - noise_floor) / parent_only)
        if parent_only
        else None
    )

    row = {
        "mode": "process",
        "shape": list(SHAPE),
        "events": PROCESS_EVENTS,
        "mix": PROCESS_MIX,
        "shards": SHARDS,
        "repeats": PROCESS_REPEATS,
        "loops": PROCESS_LOOPS,
        "sample_every": SAMPLE_EVERY,
        **timings,
        "disabled_delta_seconds": disabled_delta,
        "parent_only_overhead_ratio": parent_ratio,
        "harvest_overhead_ratio": harvest_ratio,
        "harvest_overhead_ratio_adjusted": adjusted_ratio,
        "disabled_delta_over_budget": (
            abs(disabled_delta) / budget if budget else 0.0
        ),
    }

    lines = [
        f"cross-process telemetry overhead, {N}x{N} cube, "
        f"{PROCESS_EVENTS} events x{PROCESS_LOOPS} (mix={PROCESS_MIX}, "
        f"{SHARDS} shards, {PROCESS_REPEATS} repeats, min kept)",
        f"{'mode':<16} {'seconds':>10} {'vs disabled':>12}",
        f"{'disabled':<16} {disabled:>10.5f} {'1.00x':>12}",
        f"{'disabled again':<16} {disabled_again:>10.5f} "
        f"{disabled_again / disabled:>11.2f}x",
        f"{'parent only':<16} {parent_only:>10.5f} {parent_ratio:>11.2f}x",
        f"{'full harvest':<16} {full_harvest:>10.5f} "
        f"{full_harvest / disabled:>11.2f}x",
        f"harvest marginal cost {harvest_ratio:.3f}x raw, "
        f"{adjusted_ratio:.3f}x noise-adjusted vs parent-only "
        f"(ceiling {HARVEST_CEILING:.2f}x); noise floor "
        f"{noise_floor * 1e3:.3f}ms",
    ]
    report("obs_overhead_process", "\n".join(lines), data={"rows": [row]})
    _upsert_artifact_row(row)

    assert abs(disabled_delta) <= budget, (
        f"disabled-mode process replays differ by {disabled_delta:.5f}s, "
        f"budget {budget:.5f}s — the obs.enabled guard is no longer free"
    )
    # The tentpole's gated claim: shared-memory shard writes inside the
    # workers plus one parent-side snapshot/merge pass are a
    # small-constant addition over parent-only instrumentation.  Gated
    # on the noise-adjusted form so a loaded runner's jitter cannot
    # masquerade as a telemetry regression (or hide one bigger than the
    # machine's own measured noise).
    assert adjusted_ratio <= HARVEST_CEILING, (
        f"full remote harvest costs {harvest_ratio:.3f}x raw / "
        f"{adjusted_ratio:.3f}x noise-adjusted vs parent-only "
        f"(ceiling {HARVEST_CEILING:.2f}x)"
    )
