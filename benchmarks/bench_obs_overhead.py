"""Observability overhead: disabled mode must be free, enabled bounded.

The whole design premise of :mod:`repro.obs` is that every structure
carries the shared ``NULL_OBS`` facade until an operator opts in, and
the hot paths guard all instrumentation behind one ``obs.enabled``
predicate.  This bench proves that premise with numbers:

* **disabled** — the stock engine (``NULL_OBS``), exactly the PR 3 code
  path plus one attribute read and one falsy branch per operation;
* **disabled_again** — a second identical disabled batch.  Its delta vs
  the first batch is judged against the *within-batch* spread (the
  measured noise floor) — the only honest yardstick for "within noise";
* **enabled** — a full :class:`~repro.obs.Observability` wiring with
  head sampling (every ``SAMPLE_EVERY``-th trace) and the slow-query
  log armed, i.e. a realistic production configuration.

Each mode replays the same read/write stream ``REPEATS`` times and
keeps the *minimum* wall time (minimum-of-repeats discards scheduler
hiccups; means would smear them in).  The headline artifact
``BENCH_obs_overhead.json`` lands at the repository root.

CI runs this with ``REPRO_BENCH_SMOKE=1`` and asserts only the
disabled-mode bound — enabled-mode cost is workload-dependent and is
recorded, not gated, in smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.artifacts import make_document
from repro.engine import ShardedEngine
from repro.obs import Observability
from repro.workloads import RangeQuery, clustered, read_write_stream

from conftest import report, write_root_artifact

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 32 if SMOKE else 128
SHAPE = (N, N)
EVENTS = 150 if SMOKE else 800
SHARDS = 4
CACHE_SIZE = 1024
#: Update-heavy mix: a 50% write stream maximises instrumented work per
#: event (every write bumps an epoch; every read misses more often), so
#: the measured overhead is an upper bound for read-heavy serving.
MIX = 0.5
REPEATS = 3 if SMOKE else 5
SAMPLE_EVERY = 8
#: Multiple of the measured noise floor the disabled-mode delta may
#: reach.  Generous because the floor itself is a single small number;
#: the point is catching a *structural* regression (an instrumented
#: branch that stopped being free), not 2% jitter.
NOISE_BUDGET = 6.0


def _replay(engine, events) -> None:
    for event in events:
        if isinstance(event, RangeQuery):
            engine.range_sum(event.low, event.high)
        else:
            engine.add(event.cell, event.delta)


def _run_mode(data, events, obs) -> tuple[float, float]:
    """Replay ``REPEATS`` times on fresh engines.

    Returns ``(best, spread)``: the minimum wall seconds (discarding
    scheduler hiccups) and the max-min spread across the repeats, which
    measures this machine's run-to-run timing noise for the workload.
    """
    samples = []
    for _ in range(REPEATS):
        engine = ShardedEngine.from_array(
            data,
            shards=SHARDS,
            method="ddc",
            cache_size=CACHE_SIZE,
            **({"obs": obs} if obs is not None else {}),
        )
        engine.reset_stats()
        start = time.perf_counter()
        _replay(engine, events)
        samples.append(time.perf_counter() - start)
        engine.close()
    return min(samples), max(samples) - min(samples)


def test_obs_overhead(benchmark):
    data = clustered(SHAPE, seed=90)
    events = read_write_stream(SHAPE, EVENTS, mix=MIX, locality="zipf", seed=91)

    def measure():
        disabled, spread_a = _run_mode(data, events, None)
        disabled_again, spread_b = _run_mode(data, events, None)
        enabled, _ = _run_mode(
            data,
            events,
            Observability(
                trace_sample_every=SAMPLE_EVERY,
                slow_query_seconds=1e-3,
            ),
        )
        return {
            "disabled_seconds": disabled,
            "disabled_again_seconds": disabled_again,
            "enabled_seconds": enabled,
            "noise_floor_seconds": max(spread_a, spread_b),
        }

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    disabled = timings["disabled_seconds"]
    disabled_again = timings["disabled_again_seconds"]
    enabled = timings["enabled_seconds"]
    noise_floor = timings["noise_floor_seconds"]
    disabled_delta = disabled_again - disabled
    enabled_ratio = enabled / disabled if disabled else None

    row = {
        "shape": list(SHAPE),
        "events": EVENTS,
        "mix": MIX,
        "shards": SHARDS,
        "repeats": REPEATS,
        "sample_every": SAMPLE_EVERY,
        **timings,
        "disabled_delta_seconds": disabled_delta,
        "enabled_overhead_ratio": enabled_ratio,
    }

    lines = [
        f"observability overhead, {N}x{N} cube, {EVENTS} events "
        f"(mix={MIX}, {REPEATS} repeats, min kept)",
        f"{'mode':<16} {'seconds':>10} {'vs disabled':>12}",
        f"{'disabled':<16} {disabled:>10.5f} {'1.00x':>12}",
        f"{'disabled again':<16} {disabled_again:>10.5f} "
        f"{disabled_again / disabled:>11.2f}x",
        f"{'enabled':<16} {enabled:>10.5f} {enabled_ratio:>11.2f}x",
        f"noise floor {noise_floor * 1e3:.3f}ms; enabled overhead "
        f"{(enabled_ratio - 1) * 100:.1f}%",
    ]
    document = make_document("obs_overhead", [row])
    report("obs_overhead", "\n".join(lines), data=document)
    write_root_artifact("BENCH_obs_overhead.json", document)

    # Acceptance (the only gated bound): disabled-mode timing is stable
    # to within measured noise.  The delta between two independent
    # disabled batches must stay within a small multiple of the
    # within-batch spread; an absolute floor keeps the gate meaningful
    # when the repeats happen to land nearly identical.
    budget = max(NOISE_BUDGET * noise_floor, 0.25 * disabled)
    assert abs(disabled_delta) <= budget, (
        f"disabled-mode replays differ by {disabled_delta:.5f}s, "
        f"budget {budget:.5f}s — the obs.enabled guard is no longer free"
    )
    if not SMOKE:
        # Recorded-and-bounded: full tracing with 1-in-8 head sampling
        # stays within small-constant territory on this worst-case
        # write-heavy stream.  The <10% production target holds for
        # sampled configs on larger cubes; tiny bench trees make the
        # fixed per-event cost look relatively larger, and a loaded
        # machine inflates the ratio further, so the gate is a loose
        # regression backstop — the artifact records the exact ratio.
        assert enabled_ratio < 3.0, (
            f"enabled-mode overhead {enabled_ratio:.2f}x exceeds the bound"
        )
