"""Experiment S4.4-IO — simulated secondary-storage accesses per traversal.

Section 4.4: "the deletion of tree levels will have a positive impact on
tree traversal times, since the number of levels in the tree affects the
number of accesses to secondary storage during traversal."  The paper
offers no disk substrate; we simulate one (DESIGN.md §4): every node a
real traversal touches maps to a page, and a bounded LRU buffer pool
decides which touches are physical reads.  Measured here:

* page accesses and cold-pool misses per query as levels are elided;
* buffer hit rate versus pool size (locality of the tree's upper levels);
* hot-region workloads caching better than uniform ones.
"""

from __future__ import annotations

import pytest

from repro.core.ddc import DynamicDataCube
from repro.storage import BufferPool, attach_pool
from repro.workloads import dense_uniform, hot_region_updates, prefix_cells

from conftest import report

N = 128


def test_page_accesses_vs_tree_height(benchmark):
    data = dense_uniform((N, N), seed=37)
    cells = prefix_cells((N, N), 60, seed=38)

    def sweep():
        rows = []
        for leaf_side in (2, 4, 8, 16, 32):
            cube = DynamicDataCube.from_array(data, leaf_side=leaf_side)
            pool = attach_pool(cube, BufferPool(capacity=1))  # every touch ~ cold
            for cell in cells:
                cube.prefix_sum(cell)
            rows.append(
                (leaf_side, cube.height(), pool.stats.accesses / len(cells))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"page accesses per prefix query vs level elision (n={N}, d=2)",
        f"{'leaf_side':>9} {'levels':>7} {'pages/query':>12}",
    ]
    for leaf_side, levels, pages in rows:
        lines.append(f"{leaf_side:>9} {levels:>7} {pages:>12.1f}")
    report("io_accesses_vs_height", "\n".join(lines))
    pages = [p for *_, p in rows]
    assert pages == sorted(pages, reverse=True)


def test_hit_rate_vs_pool_size(benchmark):
    data = dense_uniform((N, N), seed=39)
    cube = DynamicDataCube.from_array(data)
    cells = prefix_cells((N, N), 200, seed=40)

    def sweep():
        rows = []
        for capacity in (4, 16, 64, 256, 1024, 8192):
            pool = attach_pool(cube, BufferPool(capacity=capacity))
            for cell in cells:  # warm-up pass: populate the pool
                cube.prefix_sum(cell)
            pool.stats.reset()
            for cell in cells:  # measured pass: steady-state behaviour
                cube.prefix_sum(cell)
            rows.append((capacity, pool.stats.hit_rate, pool.stats.misses))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"steady-state buffer hit rate vs pool size, "
        f"200 uniform prefix queries (n={N})",
        f"{'pool pages':>10} {'hit rate':>9} {'misses':>8}",
    ]
    for capacity, hit_rate, misses in rows:
        lines.append(f"{capacity:>10} {hit_rate:>9.3f} {misses:>8}")
    report("io_hit_rate_vs_pool", "\n".join(lines))
    hit_rates = [rate for _, rate, _ in rows]
    assert hit_rates[-1] > hit_rates[0]
    # A pool holding the working set serves the repeat pass entirely.
    assert hit_rates[-1] > 0.99


def test_hot_workload_locality(benchmark):
    """Skewed update traffic caches far better than uniform traffic."""
    data = dense_uniform((N, N), seed=41)
    hot = hot_region_updates((N, N), 300, hot_fraction=0.05, seed=42)
    uniform = hot_region_updates(
        (N, N), 300, hot_fraction=1.0, hot_probability=1.0, seed=43
    )

    def measure():
        rates = {}
        for label, workload in (("hot", hot), ("uniform", uniform)):
            cube = DynamicDataCube.from_array(data)
            pool = attach_pool(cube, BufferPool(capacity=64))
            for update in workload:
                cube.add(update.cell, update.delta)
            rates[label] = pool.stats.hit_rate
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "io_workload_locality",
        "buffer hit rate, 64-page pool, 300 updates:\n"
        f"  hot-region workload: {rates['hot']:.3f}\n"
        f"  uniform workload:    {rates['uniform']:.3f}",
    )
    assert rates["hot"] > rates["uniform"]


@pytest.mark.parametrize("capacity", [16, 1024])
def test_tracked_query_walltime(benchmark, capacity):
    """Overhead of page tracking on a live query path."""
    cube = DynamicDataCube.from_array(dense_uniform((N, N), seed=44))
    attach_pool(cube, BufferPool(capacity=capacity))
    cells = prefix_cells((N, N), 64, seed=45)
    index = iter(range(10**9))

    def one_query():
        return cube.prefix_sum(cells[next(index) % len(cells)])

    benchmark(one_query)
