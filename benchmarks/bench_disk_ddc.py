"""Experiment S1-Disk — the terabyte argument on an actual disk engine.

Section 1 asks "What if the size of the data cube were a terabyte?"
— i.e. what do updates and queries cost when the structure cannot live
in memory.  This bench runs the fully disk-resident Dynamic Data Cube
(page-file nodes, B^c-tree groups, leaf-block pages, bounded caches)
and measures *physical page I/O* per operation, which is the currency
the paper's update-cliff argument is really about:

* one interactive update = tens of pages for the disk DDC, while a
  disk-resident prefix-sum array would rewrite its entire dominated
  region (n^d cells ≈ the whole file);
* I/O per operation grows polylogarithmically with n;
* warm caches eliminate most reads, per the Section 4.4 traversal
  argument.
"""

from __future__ import annotations

import pytest

from repro.storage import DiskDynamicDataCube, PageFile
from repro.workloads import prefix_cells, random_updates

from conftest import report


def populated_cube(
    tmp_path, n: int, updates: int = 500, seed: int = 57, **options
):
    pages = PageFile(tmp_path / f"cube{n}.pf", page_size=512)
    cube = DiskDynamicDataCube((n, n), pages, **options)
    for update in random_updates((n, n), updates, seed=seed):
        cube.add(update.cell, update.delta)
    cube.flush()
    return pages, cube


def test_update_io_vs_cube_size(benchmark, tmp_path):
    def sweep():
        rows = []
        for n in (64, 256, 1024):
            pages, cube = populated_cube(tmp_path, n)
            pages.stats.reset()
            workload = random_updates((n, n), 50, seed=58)
            for update in workload:
                cube.add(update.cell, update.delta)
            cube.flush()
            physical = (pages.stats.reads + pages.stats.writes) / len(workload)
            rows.append((n, physical, n * n))
            pages.close()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "physical page I/O per interactive update (512B pages, warm cache)",
        f"{'n':>6} {'pages/update':>13} {'PS cells to rewrite':>20}",
    ]
    for n, physical, ps_cells in rows:
        lines.append(f"{n:>6} {physical:>13.1f} {ps_cells:>20,}")
    report("disk_ddc_update_io", "\n".join(lines))
    # Polylog growth: quadrupling n must not quadruple the I/O.
    assert rows[1][1] < rows[0][1] * 3
    assert rows[2][1] < rows[1][1] * 3
    # And the absolute numbers sit far below a PS rewrite at every size.
    for n, physical, ps_cells in rows:
        assert physical < ps_cells / 50


def test_query_io_cold_vs_warm(benchmark, tmp_path):
    n = 256
    # Caches sized to hold the query working set, so the warm pass
    # isolates pure locality from capacity misses.
    pages, cube = populated_cube(
        tmp_path, n, updates=800, node_cache=8192, tree_cache=4096
    )
    cells = prefix_cells((n, n), 60, seed=59)

    def measure():
        cube.flush()
        cube._node_cache.clear()
        cube._tree_cache.clear()
        pages.stats.reset()
        for cell in cells:
            cube.prefix_sum(cell)
        cold = pages.stats.reads / len(cells)
        pages.stats.reset()
        for cell in cells:
            cube.prefix_sum(cell)
        warm = pages.stats.reads / len(cells)
        return cold, warm

    cold, warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "disk_ddc_query_io",
        f"physical page reads per prefix query at n={n}:\n"
        f"  cold caches: {cold:.1f}\n"
        f"  warm caches: {warm:.2f}",
    )
    assert warm < cold / 3
    pages.close()


@pytest.mark.parametrize("n", [256])
def test_disk_update_walltime(benchmark, tmp_path, n):
    pages, cube = populated_cube(tmp_path, n)
    updates = random_updates((n, n), 64, seed=60)
    index = iter(range(10**9))

    def one_update():
        update = updates[next(index) % len(updates)]
        cube.add(update.cell, update.delta)

    benchmark(one_update)
    pages.close()
