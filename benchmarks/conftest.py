"""Shared helpers for the benchmark harness.

Every bench module regenerates one of the paper's evaluation artifacts
(see the experiment index in DESIGN.md).  Tables are emitted through
:func:`report`, which persists them under ``benchmarks/results/`` and
queues them for the end-of-session terminal summary, so a plain
``pytest benchmarks/ --benchmark-only`` run prints every experiment
table after the timing table regardless of output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SESSION_REPORTS: list[str] = []


def report(experiment: str, text: str) -> None:
    """Persist a result table and queue it for the terminal summary."""
    banner = f"\n{'=' * 72}\n[{experiment}]\n{'=' * 72}\n"
    _SESSION_REPORTS.append(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    with open(path, "a") as handle:
        handle.write(banner + text + "\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results() -> None:
    """Start every benchmark session with a clean results directory."""
    if RESULTS_DIR.exists():
        for stale in RESULTS_DIR.glob("*.txt"):
            stale.unlink()


def pytest_terminal_summary(terminalreporter) -> None:
    """Print every experiment table collected during the session."""
    if not _SESSION_REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for table in _SESSION_REPORTS:
        terminalreporter.write_line(table)
