"""Shared helpers for the benchmark harness.

Every bench module regenerates one of the paper's evaluation artifacts
(see the experiment index in DESIGN.md).  Tables are emitted through
:func:`report`, which persists them under ``benchmarks/results/`` and
queues them for the end-of-session terminal summary, so a plain
``pytest benchmarks/ --benchmark-only`` run prints every experiment
table after the timing table regardless of output capturing.  A bench
that also has machine-readable results passes ``data=`` to
:func:`report` (a JSON sidecar lands next to the text table), and
headline artifacts go to the repository root via
:func:`write_root_artifact`.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

_SESSION_REPORTS: list[str] = []


def report(experiment: str, text: str, data: object = None) -> None:
    """Persist a result table and queue it for the terminal summary.

    With ``data`` given, a machine-readable JSON sidecar
    (``results/<experiment>.json``) is written alongside the text table
    so downstream tooling never has to parse the human-oriented output.
    """
    banner = f"\n{'=' * 72}\n[{experiment}]\n{'=' * 72}\n"
    _SESSION_REPORTS.append(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    with open(path, "a") as handle:
        handle.write(banner + text + "\n")
    if data is not None:
        sidecar = RESULTS_DIR / f"{experiment}.json"
        sidecar.write_text(json.dumps(data, indent=2) + "\n")


def write_root_artifact(filename: str, data: object) -> pathlib.Path:
    """Write a headline JSON artifact at the repository root."""
    path = REPO_ROOT / filename
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


@pytest.fixture(scope="session", autouse=True)
def _fresh_results() -> None:
    """Start every benchmark session with a clean results directory."""
    if RESULTS_DIR.exists():
        for stale in RESULTS_DIR.glob("*.txt"):
            stale.unlink()
        for stale in RESULTS_DIR.glob("*.json"):
            stale.unlink()


def pytest_terminal_summary(terminalreporter) -> None:
    """Print every experiment table collected during the session."""
    if not _SESSION_REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for table in _SESSION_REPORTS:
        terminalreporter.write_line(table)
