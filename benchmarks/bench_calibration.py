"""Experiment C1 — quantitative calibration of measured costs vs the model.

Fits each method's *measured* worst-case update series to the paper's
growth families and reports the empirical exponents next to the
theoretical ones, plus the implementation constants separating measured
costs from the model.  This is the statistical backbone behind the
"shape holds" claims of EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.methods import build_method
from repro.model import (
    classify_growth,
    constant_factor,
    update_cost,
)
from repro.workloads import dense_uniform

from conftest import report

SIZES = [32, 64, 128, 256, 512]
EXPECTED = {
    "ps": ("polynomial", 2.0),
    "rps": ("polynomial", 1.0),
    "basic-ddc": ("polynomial", 1.0),
    "ddc": ("polylogarithmic", None),
}


def measure_series(name: str) -> list[int]:
    series = []
    for n in SIZES:
        data = dense_uniform((n, n), low=0, high=5, seed=54)
        method = build_method(name, data)
        method.add((0, 0), 1)
        method.stats.reset()
        method.add((0, 0), 1)
        series.append(method.stats.total_cell_ops)
    return series


def test_fitted_exponents(benchmark):
    def run():
        return {name: measure_series(name) for name in EXPECTED}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "fitted growth of measured worst-case update cost, d=2",
        f"{'method':>10} {'family':>16} {'fitted exp':>11} {'model exp':>10} "
        f"{'const x model':>14}",
    ]
    outcomes = {}
    for name, series in table.items():
        fit = classify_growth(SIZES, series)
        modelled = [update_cost(name, n, 2) for n in SIZES]
        factor, spread = constant_factor(series, modelled)
        expected_family, expected_exponent = EXPECTED[name]
        model_text = f"{expected_exponent:.1f}" if expected_exponent else "polylog"
        lines.append(
            f"{name:>10} {fit.family:>16} {fit.fitted_exponent:>11.2f} "
            f"{model_text:>10} {factor:>13.2f}x (spread {spread:.2f})"
        )
        outcomes[name] = (fit, factor, spread)
    report("calibration_update_growth", "\n".join(lines))

    for name, (fit, factor, spread) in outcomes.items():
        expected_family, expected_exponent = EXPECTED[name]
        assert fit.family == expected_family, name
        if expected_exponent is not None:
            assert fit.fitted_exponent == pytest.approx(expected_exponent, abs=0.25)
        # Measured series are clean rescalings of the model: tight spread.
        assert spread < 0.6, name
    # PS is exact: constant factor 1, zero spread.
    assert outcomes["ps"][1] == pytest.approx(1.0)
    assert outcomes["ps"][2] == pytest.approx(0.0, abs=1e-9)
