"""Batch-query throughput: path sharing and vectorized gathers.

A production OLAP front end issues prefix queries in batches (a
dashboard refresh probes many cells of the same few hot regions at
once).  This bench sweeps batch size x query locality for every
registered method and measures, per configuration:

* wall time for one ``prefix_sum_many`` call vs the equivalent scalar
  loop — measured twice: once *adaptively* (whatever path the calibrated
  ``batch_crossover`` picks; ``speedup`` is 1.0 by construction when it
  picks the scalar fallback) and once with the batch path *forced* via
  ``batch_crossover_override`` (``batch_path_speedup``: what the batch
  kernel would do, so a crossover decision can never mask a batch-path
  regression), and
* the logical cost counters — always from the forced batch run, so the
  deterministic count metrics the regression gate compares do not
  depend on which side of the crossover this machine landed on.  For
  the tree methods, ``node_visits`` shows the path-sharing traversal
  descending each distinct root-to-leaf path once, which is where the
  clustered (zipf) workload wins big.

Results are emitted both as the usual text table and as machine-readable
JSON: ``benchmarks/results/batch_query_throughput.json`` plus the
headline artifact ``BENCH_batch_queries.json`` at the repository root.

Set ``REPRO_BENCH_SMOKE=1`` to run a tiny configuration (CI smoke).
"""

from __future__ import annotations

import os

from repro.artifacts import make_document
from repro.methods import build_method, method_names
from repro.workloads import clustered, query_stream

from conftest import report, write_root_artifact

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 32 if SMOKE else 256
SHAPE = (N, N)
# The largest batch must clear every method's batch_crossover so the
# smoke run still exercises (and asserts on) the shared-work batch path.
BATCH_SIZES = [4, 256] if SMOKE else [16, 64, 256]
LOCALITIES = ["uniform", "zipf"]
REPS = 1 if SMOKE else 3


def test_batch_query_throughput(benchmark):
    import time

    data = clustered(SHAPE, seed=50)
    methods = method_names()

    def measure():
        rows = []
        for name in methods:
            method = build_method(name, data)
            for locality in LOCALITIES:
                for batch in BATCH_SIZES:
                    cells = query_stream(
                        SHAPE, batch, locality=locality, seed=51 + batch
                    )
                    # Warm every path once (first-touch numpy setup,
                    # allocator effects — and the adaptive warm-up also
                    # triggers calibration outside the timed region),
                    # then keep the best of REPS timed runs — a single
                    # cold round mostly measures scheduler noise on
                    # small batches.
                    method.prefix_sum_many(cells)
                    method.batch_crossover_override = 1
                    method.prefix_sum_many(cells)
                    method.batch_crossover_override = None
                    [method.prefix_sum(cell) for cell in cells]
                    batch_seconds = forced_seconds = scalar_seconds = None
                    for _ in range(REPS):
                        start = time.perf_counter()
                        batch_results = method.prefix_sum_many(cells)
                        elapsed = time.perf_counter() - start
                        path = method.last_batch_path
                        if batch_seconds is None or elapsed < batch_seconds:
                            batch_seconds = elapsed
                        # Forced batch path: what the batch kernel would
                        # do regardless of the crossover decision.  The
                        # deterministic counters come from this run.
                        method.batch_crossover_override = 1
                        method.stats.reset()
                        start = time.perf_counter()
                        forced_results = method.prefix_sum_many(cells)
                        elapsed = time.perf_counter() - start
                        forced_stats = method.stats.snapshot()
                        method.batch_crossover_override = None
                        if forced_seconds is None or elapsed < forced_seconds:
                            forced_seconds = elapsed
                        method.stats.reset()
                        start = time.perf_counter()
                        scalar_results = [
                            method.prefix_sum(cell) for cell in cells
                        ]
                        elapsed = time.perf_counter() - start
                        scalar_stats = method.stats.snapshot()
                        if scalar_seconds is None or elapsed < scalar_seconds:
                            scalar_seconds = elapsed
                    assert [int(v) for v in batch_results] == [
                        int(v) for v in scalar_results
                    ], f"batch/scalar mismatch for {name}"
                    assert [int(v) for v in forced_results] == [
                        int(v) for v in scalar_results
                    ], f"forced-batch/scalar mismatch for {name}"
                    # Below the crossover the adaptive call runs the
                    # same scalar loop as the baseline, so any measured
                    # delta is timer noise; the speedup is 1 by
                    # construction (raw timings stay in the row), and
                    # ``batch_path_speedup`` records what the masked
                    # batch path would have done.
                    if path == "scalar":
                        speedup = 1.0
                    else:
                        speedup = (
                            scalar_seconds / batch_seconds
                            if batch_seconds
                            else None
                        )
                    rows.append(
                        {
                            "method": name,
                            "shape": list(SHAPE),
                            "locality": locality,
                            "batch": batch,
                            "path": path,
                            "crossover": method._effective_crossover(),
                            "batch_seconds": batch_seconds,
                            "batch_path_seconds": forced_seconds,
                            "scalar_seconds": scalar_seconds,
                            "queries_per_second": (
                                batch / batch_seconds if batch_seconds else None
                            ),
                            "speedup": speedup,
                            "batch_path_speedup": (
                                scalar_seconds / forced_seconds
                                if forced_seconds
                                else None
                            ),
                            "node_visits_batch": forced_stats.node_visits,
                            "node_visits_scalar": scalar_stats.node_visits,
                            "cell_reads_batch": forced_stats.cell_reads,
                            "cell_reads_scalar": scalar_stats.cell_reads,
                        }
                    )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"batch vs scalar prefix queries, {N}x{N} clustered cube",
        f"{'method':<10} {'locality':<8} {'batch':>6} {'path':<6} "
        f"{'batch s':>10} "
        f"{'scalar s':>10} {'speedup':>8} {'bp-speed':>8} "
        f"{'visits(b)':>10} {'visits(s)':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['method']:<10} {row['locality']:<8} {row['batch']:>6} "
            f"{row['path']:<6} "
            f"{row['batch_seconds']:>10.5f} {row['scalar_seconds']:>10.5f} "
            f"{row['speedup']:>8.2f} {row['batch_path_speedup']:>8.2f} "
            f"{row['node_visits_batch']:>10,} {row['node_visits_scalar']:>10,}"
        )
    document = make_document("batch_queries", rows)
    report("batch_query_throughput", "\n".join(lines), data=document)
    write_root_artifact("BENCH_batch_queries.json", document)

    by_key = {(r["method"], r["locality"], r["batch"]): r for r in rows}
    largest = BATCH_SIZES[-1]
    # Path sharing: on a clustered batch the DDC visits strictly fewer
    # nodes than the scalar loop (the acceptance criterion).
    ddc_zipf = by_key[("ddc", "zipf", largest)]
    assert ddc_zipf["node_visits_batch"] < ddc_zipf["node_visits_scalar"]
    # The Basic DDC shares the same traversal.
    basic_zipf = by_key[("basic-ddc", "zipf", largest)]
    assert basic_zipf["node_visits_batch"] < basic_zipf["node_visits_scalar"]
    # Flat methods answer batches without touching any tree nodes.
    for flat in ("ps", "rps"):
        assert by_key[(flat, "zipf", largest)]["node_visits_batch"] == 0
    # Adaptive crossover: a sub-threshold batch falls back to the scalar
    # path and is never reported as a slowdown — but its row still
    # carries the audited forced-batch ``batch_path_speedup``.
    for row in rows:
        if row["path"] == "scalar":
            assert row["speedup"] == 1.0
        assert row["batch_path_speedup"] is not None
    if not SMOKE:
        # Acceptance: at moderate batch sizes the batch path itself wins
        # for every method — no kernel hides behind the scalar fallback.
        for row in rows:
            if row["batch"] >= 64:
                assert row["batch_path_speedup"] >= 1.0, (
                    f"{row['method']} {row['locality']} batch={row['batch']}: "
                    f"forced batch path is a slowdown "
                    f"({row['batch_path_speedup']:.2f}x)"
                )
