"""Experiment S5 — dynamic growth and sparse/clustered data.

Section 5's claims, measured:

1. the cube can grow in *any* direction, paying only for populated
   regions (star-catalog stream into a GrowableCube);
2. clustered data costs the DDC storage proportional to the clusters,
   while PS/RPS must materialise the full domain (Figure 16's forced
   region creation);
3. registering a brand-new point source in empty space is cheap for the
   DDC and expensive for the prefix-sum family.
"""

from __future__ import annotations

import pytest

from repro.core.growth import GrowableCube
from repro.methods import build_method
from repro.workloads import clustered, growth_stream, occupancy

from conftest import report


def test_star_catalog_growth(benchmark):
    """Stream 2,000 discoveries through arbitrary-direction growth."""

    def run():
        cube = GrowableCube(dims=2, initial_side=16)
        expansions = 0
        last_side = cube.side
        for discovery in growth_stream(dims=2, points=2000, drift=3.0, seed=14):
            cube.add(discovery.coordinate, discovery.value)
            if cube.side != last_side:
                expansions += 1
                last_side = cube.side
        return cube, expansions

    cube, expansions = benchmark.pedantic(run, rounds=1, iterations=1)
    domain = cube.side**2
    low, high = cube.bounds
    report(
        "growth_star_catalog",
        f"2,000 discoveries; {expansions} domain doublings; final side "
        f"{cube.side}\nbounding box {tuple(h - l + 1 for l, h in zip(low, high))}; "
        f"domain {domain:,} cells; stored {cube.memory_cells():,} cells "
        f"({100 * cube.memory_cells() / domain:.3f}% of domain)",
    )
    assert expansions >= 1
    assert cube.memory_cells() < domain / 10
    assert cube.range_sum(low, high) == cube.total()


def test_clustered_storage_comparison(benchmark):
    """Figure 16's point: prefix methods must materialise empty space."""
    domain = (512, 512)
    data = clustered(domain, clusters=5, points_per_cluster=200, seed=15)

    def build_all():
        return {
            name: build_method(name, data).memory_cells()
            for name in ("ps", "rps", "ddc")
        }

    storage = benchmark.pedantic(build_all, rounds=1, iterations=1)
    lines = [
        f"clustered data on a {domain[0]}x{domain[1]} domain "
        f"({100 * occupancy(data):.2f}% occupancy)",
        f"{'method':>7} {'cells':>10} {'x raw domain':>13}",
    ]
    for name, cells in storage.items():
        lines.append(f"{name:>7} {cells:>10,} {cells / data.size:>13.3f}")
    report("growth_clustered_storage", "\n".join(lines))
    assert storage["ps"] >= data.size
    assert storage["rps"] >= data.size
    assert storage["ddc"] < data.size / 2


def test_new_point_source_update_cost(benchmark):
    """A cell appears in previously-empty space (the cattle-ranch case)."""
    domain = (512, 512)
    data = clustered(domain, clusters=3, points_per_cluster=150, seed=16)
    empty_cell = (500, 20)
    assert data[empty_cell] == 0

    methods = {name: build_method(name, data) for name in ("ps", "rps", "ddc")}

    def register():
        costs = {}
        for name, method in methods.items():
            method.stats.reset()
            method.add(empty_cell, 500)
            costs[name] = method.stats.cell_writes
        return costs

    costs = benchmark.pedantic(register, rounds=1, iterations=1)
    report(
        "growth_new_point_source",
        "cells written to register one measurement in empty space:\n"
        + "\n".join(f"  {name:>4}: {cells:>8,}" for name, cells in costs.items()),
    )
    assert costs["ddc"] < costs["rps"] < costs["ps"]


@pytest.mark.parametrize("dims", [2, 3])
def test_growth_insert_walltime(benchmark, dims):
    cube = GrowableCube(dims=dims, initial_side=16)
    stream = list(growth_stream(dims=dims, points=4000, seed=17))
    index = iter(range(10**9))

    def one_insert():
        discovery = stream[next(index) % len(stream)]
        cube.add(discovery.coordinate, discovery.value)

    benchmark(one_insert)
