"""Experiment T2 — Table 2: required storage, overlay boxes versus array A.

Regenerates the paper's Table 2 (overlay cells ``k^d - (k-1)^d`` as a
percentage of the ``k^d`` region covered, d=2, k=2..32), cross-checks it
against the cells *actually allocated* by built overlay boxes, and
extends it with whole-tree storage: the modelled series showing that the
lowest levels dominate (the observation motivating Section 4.4), checked
against the measured ``memory_cells()`` of real cubes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ddc import DynamicDataCube
from repro.core.overlay import ArrayOverlay
from repro.counters import OpCounter
from repro.model import (
    level_overlay_cells,
    overlay_cells,
    render_table2,
    table2,
    tree_storage_cells,
)
from repro.workloads import dense_uniform

from conftest import report


def test_table2_analytic_and_measured(benchmark):
    rows = benchmark(table2)
    lines = [render_table2(rows), ""]
    lines.append("cross-check against built ArrayOverlay allocations (d=2):")
    lines.append(f"{'k':>4} {'paper k^d-(k-1)^d':>18} {'allocated':>10} {'note':>28}")
    for row in rows:
        region = np.ones((row.k, row.k), dtype=np.int64)
        overlay = ArrayOverlay.from_dense(region, OpCounter())
        allocated = overlay.memory_cells()
        # Our layout stores each of the d row-sum groups in full
        # (d*k^(d-1) cells + subtotal); the paper's count shares the
        # corner cells between faces.  Same order, small constant.
        lines.append(
            f"{row.k:>4} {row.overlay_box:>18} {allocated:>10} "
            f"{'= d*k^(d-1) + 1':>28}"
        )
        assert allocated == 2 * row.k + 1
        assert allocated >= row.overlay_box
        assert allocated <= 2 * row.overlay_box
    report("table2_overlay_storage", "\n".join(lines))
    percentages = [round(row.percentage, 2) for row in rows]
    assert percentages == [75.0, 43.75, 23.44, 12.11, 6.15]


def test_tree_level_storage_distribution(benchmark):
    """Most storage sits in the lowest levels — Section 4.4's motivation."""
    n, d = 256, 2

    def model_levels():
        levels = []
        k = 2
        while k <= n // 2:
            levels.append((k, level_overlay_cells(n, k, d)))
            k *= 2
        return levels

    levels = benchmark(model_levels)
    total = sum(cells for _, cells in levels)
    lines = [f"modelled overlay storage by level, n={n}, d={d}"]
    lines.append(f"{'box side k':>10} {'cells':>10} {'share':>8}")
    for k, cells in levels:
        lines.append(f"{k:>10} {cells:>10} {100 * cells / total:>7.1f}%")
    report("table2_level_distribution", "\n".join(lines))
    # The two lowest levels together hold most of the overlay storage.
    assert levels[0][1] + levels[1][1] > total / 2
    assert levels[0][1] > total / 3
    # Each higher level stores less than the one below it.
    cells_only = [cells for _, cells in levels]
    assert cells_only == sorted(cells_only, reverse=True)


@pytest.mark.parametrize("leaf_side", [2, 4, 8, 16])
def test_measured_tree_storage_vs_model(benchmark, leaf_side):
    """memory_cells() of a dense cube tracks the storage model."""
    n, d = 128, 2
    data = dense_uniform((n,) * d, seed=4)

    def build():
        return DynamicDataCube.from_array(data, leaf_side=leaf_side)

    cube = benchmark.pedantic(build, rounds=1, iterations=1)
    measured = cube.memory_cells()
    modelled = tree_storage_cells(n, d, leaf_side)
    report(
        f"table2_tree_storage_leaf{leaf_side}",
        f"n={n}, d={d}, leaf_side={leaf_side}: modelled {modelled} cells, "
        f"measured {measured} cells ({measured / (n**d):.2f}x |A|)",
    )
    # The tree-overlay layout adds B-tree bookkeeping over the dense
    # model, but stays within a small factor, and converges toward |A|.
    assert measured >= n**d
    assert measured < 4 * modelled
