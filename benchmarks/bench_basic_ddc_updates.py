"""Experiment S3.3 — the Basic Dynamic Data Cube's update series.

Section 3.3 derives the Basic tree's worst-case update cost as the
geometric series  d(n/2)^(d-1) + d(n/4)^(d-1) + ... + d  =
d (n^(d-1) - 1) / (2^(d-1) - 1) = O(n^(d-1)).  This bench measures real
worst-case updates against that closed form at d=2 and d=3, and shows
the Section 4 structure (the full DDC) removing the polynomial term.
"""

from __future__ import annotations

import pytest

from repro.core.basic_ddc import BasicDynamicDataCube
from repro.core.ddc import DynamicDataCube
from repro.model import basic_ddc_update_cost, ddc_update_cost

from conftest import report


def worst_case_ops(cube_class, n: int, d: int) -> int:
    cube = cube_class((n,) * d)
    cube.add((0,) * d, 1)  # allocate the path once
    cube.stats.reset()
    cube.add((0,) * d, 1)
    return cube.stats.total_cell_ops


@pytest.mark.parametrize(
    "d,sizes", [(2, [32, 64, 128, 256, 512]), (3, [8, 16, 32, 64])]
)
def test_basic_ddc_series(benchmark, d, sizes):
    def measure():
        return [
            (
                n,
                basic_ddc_update_cost(n, d),
                worst_case_ops(BasicDynamicDataCube, n, d),
                ddc_update_cost(n, d),
                worst_case_ops(DynamicDataCube, n, d),
            )
            for n in sizes
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"worst-case update cost, d={d} "
        "(model = Section 3.3 series / Theorem 2)",
        f"{'n':>6} {'basic model':>12} {'basic meas':>11} "
        f"{'ddc model':>10} {'ddc meas':>9}",
    ]
    for n, basic_model, basic_measured, ddc_model, ddc_measured in rows:
        lines.append(
            f"{n:>6} {basic_model:>12.0f} {basic_measured:>11} "
            f"{ddc_model:>10.0f} {ddc_measured:>9}"
        )
    report(f"basic_ddc_series_d{d}", "\n".join(lines))

    for n, basic_model, basic_measured, _, ddc_measured in rows:
        # Measured Basic cost tracks the closed form within a small factor
        # (our layout stores each group fully; the model counts the
        # deduplicated face cells).
        assert basic_model / 3 < basic_measured < 4 * basic_model
        # The full DDC beats the Basic tree at every size.
        assert ddc_measured < basic_measured
    # The gap widens with n: Basic grows polynomially, DDC polylog.
    first_gap = rows[0][2] / rows[0][4]
    last_gap = rows[-1][2] / rows[-1][4]
    assert last_gap > first_gap


def test_basic_ddc_query_stays_logarithmic(benchmark):
    """The Basic tree's strength: O(1) overlay reads, log n levels."""
    n = 512
    cube = BasicDynamicDataCube((n, n))
    cube.add((n - 1, n - 1), 1)

    def query():
        return cube.prefix_sum((n - 1, n - 1))

    benchmark(query)
    cube.stats.reset()
    cube.prefix_sum((n - 1, n - 1))
    ops = cube.stats.total_cell_ops
    report(
        "basic_ddc_query_cost",
        f"Basic DDC prefix query at n={n}, d=2: {ops} cell reads "
        f"(<= 3 per level x {cube.height()} levels + leaf block)",
    )
    assert ops <= 3 * cube.height() + 4
