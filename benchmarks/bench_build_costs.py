"""Supplemental — construction costs: bulk builds vs incremental loads.

The paper assumes structures are built once ("batch load data, then
permit read-only querying") before the update question even arises.
This bench measures what that build costs per method — vectorised bulk
construction versus one-update-at-a-time ingestion — and where the
storage lands, including the Table 2 breakdown of the DDC's cells.
"""

from __future__ import annotations

import time

import pytest

from repro.core.ddc import DynamicDataCube
from repro.methods import build_method, method_class, method_names
from repro.workloads import dense_uniform

from conftest import report

N = 128


def test_bulk_build_costs(benchmark):
    data = dense_uniform((N, N), seed=61)

    def build_all():
        rows = []
        for name in method_names():
            started = time.perf_counter()
            method = method_class(name).from_array(data)
            elapsed = time.perf_counter() - started
            rows.append((name, elapsed, method.memory_cells()))
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    lines = [
        f"bulk build of a dense {N}x{N} cube",
        f"{'method':>10} {'seconds':>9} {'storage cells':>14} {'x|A|':>6}",
    ]
    for name, elapsed, cells in rows:
        lines.append(
            f"{name:>10} {elapsed:>9.4f} {cells:>14,} {cells / (N * N):>6.2f}"
        )
    report("build_costs_bulk", "\n".join(lines))
    by_name = {name: cells for name, _, cells in rows}
    # Storage sanity: dense structures hold >= |A|; segtree ~4x.
    assert by_name["ps"] == N * N
    assert by_name["segtree"] == (2 * N) ** 2
    assert by_name["ddc"] > N * N  # overlay overhead on dense data


def test_ddc_storage_breakdown(benchmark):
    data = dense_uniform((N, N), seed=62)

    def build():
        return DynamicDataCube.from_array(data).storage_breakdown()

    breakdown = benchmark.pedantic(build, rounds=1, iterations=1)
    total = breakdown["total"]
    report(
        "build_ddc_breakdown",
        f"dense {N}x{N} DDC storage breakdown:\n"
        f"  leaf blocks: {breakdown['blocks']:>8,} ({100 * breakdown['blocks'] / total:.1f}%)\n"
        f"  subtotals:   {breakdown['subtotals']:>8,} ({100 * breakdown['subtotals'] / total:.1f}%)\n"
        f"  group trees: {breakdown['groups']:>8,} ({100 * breakdown['groups'] / total:.1f}%)",
    )
    assert breakdown["blocks"] == N * N
    assert breakdown["groups"] > breakdown["subtotals"]


@pytest.mark.parametrize("name", ["ps", "fenwick", "ddc"])
def test_bulk_vs_incremental_walltime(benchmark, name):
    data = dense_uniform((64, 64), seed=63)

    def bulk():
        return method_class(name).from_array(data)

    benchmark(bulk)
