"""Supplemental — query-side comparison and the mixed-workload crossover.

The paper's Table 1 is about updates; the query side of the trade-off
(naive O(n^d), PS/RPS O(1), DDC O(log^d n)) completes the picture.  This
bench measures per-query op counts across methods and range sizes, and
replays a mixed query/update session to locate the regime where the
balanced DDC beats both one-sided designs — the "what-if" scenario of
the introduction.
"""

from __future__ import annotations

import pytest

from repro.methods import build_method
from repro.workloads import (
    dense_uniform,
    interleaved,
    random_ranges,
    random_updates,
    RangeQuery,
)

from conftest import report

N = 128
METHODS = ["naive", "ps", "rps", "fenwick", "segtree", "basic-ddc", "ddc"]


def test_query_op_counts_by_selectivity(benchmark):
    data = dense_uniform((N, N), seed=29)
    methods = {name: build_method(name, data) for name in METHODS}
    selectivities = [0.1, 0.5, 0.9]

    def measure():
        rows = []
        for selectivity in selectivities:
            queries = random_ranges((N, N), 30, selectivity=selectivity, seed=30)
            for name, method in methods.items():
                method.stats.reset()
                for query in queries:
                    method.range_sum(query.low, query.high)
                rows.append(
                    (selectivity, name, method.stats.cell_reads / len(queries))
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"mean cells read per range query, {N}x{N} dense cube",
        f"{'selectivity':>11} " + "".join(f"{name:>11}" for name in METHODS),
    ]
    for selectivity in selectivities:
        row = {name: ops for s, name, ops in rows if s == selectivity}
        lines.append(
            f"{selectivity:>11} " + "".join(f"{row[name]:>11.1f}" for name in METHODS)
        )
    report("query_costs_by_selectivity", "\n".join(lines))

    at_half = {name: ops for s, name, ops in rows if s == 0.5}
    # PS is constant (<= 4 reads per query in 2-d); naive pays the region.
    assert at_half["ps"] <= 4
    assert at_half["naive"] > 1000
    assert at_half["ddc"] < at_half["naive"] / 10


def test_mixed_workload_crossover(benchmark):
    """Total ops for sessions sweeping the query:update ratio.

    One-sided methods win the extremes; the DDC must win (or tie within
    its complexity class) the balanced middle — the paper's raison
    d'etre for interactive, updatable cubes.
    """
    data = dense_uniform((N, N), seed=31)
    fractions = [0.05, 0.5, 0.95]

    def run_sessions():
        table = {}
        for fraction in fractions:
            queries = random_ranges((N, N), int(200 * fraction) or 1, seed=32)
            updates = random_updates((N, N), int(200 * (1 - fraction)) or 1, seed=33)
            session = list(interleaved(queries, updates, fraction, seed=34))
            for name in ("naive", "ps", "ddc"):
                method = build_method(name, data)
                method.stats.reset()
                for operation in session:
                    if isinstance(operation, RangeQuery):
                        method.range_sum(operation.low, operation.high)
                    else:
                        method.add(operation.cell, operation.delta)
                table[(fraction, name)] = method.stats.total_cell_ops
        return table

    table = benchmark.pedantic(run_sessions, rounds=1, iterations=1)
    lines = [
        f"total logical cell ops per 200-operation session, {N}x{N} cube",
        f"{'query frac':>10} {'naive':>12} {'ps':>12} {'ddc':>12}",
    ]
    for fraction in fractions:
        lines.append(
            f"{fraction:>10} "
            f"{table[(fraction, 'naive')]:>12,} "
            f"{table[(fraction, 'ps')]:>12,} "
            f"{table[(fraction, 'ddc')]:>12,}"
        )
    report("mixed_workload_crossover", "\n".join(lines))

    # Update-heavy sessions: naive wins, PS loses badly, DDC close to naive.
    assert table[(0.05, "ps")] > table[(0.05, "ddc")]
    # Query-heavy sessions: PS wins, naive loses, DDC close to PS.
    assert table[(0.95, "naive")] > table[(0.95, "ddc")]
    # Balanced sessions: DDC beats both one-sided methods.
    assert table[(0.5, "ddc")] < table[(0.5, "naive")]
    assert table[(0.5, "ddc")] < table[(0.5, "ps")]


@pytest.mark.parametrize("name", METHODS)
def test_range_query_walltime(benchmark, name):
    data = dense_uniform((N, N), seed=35)
    method = build_method(name, data)
    queries = random_ranges((N, N), 64, selectivity=0.3, seed=36)
    index = iter(range(10**9))

    def one_query():
        query = queries[next(index) % len(queries)]
        return method.range_sum(query.low, query.high)

    benchmark(one_query)
