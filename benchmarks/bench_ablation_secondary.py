"""Experiment A1 (ablation) — the overlay secondary-structure choice.

The paper prescribes recursive Dynamic Data Cubes (B^c trees at one
dimension) for overlay row sums.  This ablation swaps in a d-dimensional
Fenwick-tree secondary, and also measures the plain d-dimensional
Fenwick tree as a whole-structure alternative, quantifying what the
paper's design buys (sparse laziness, dynamic growth) and what it costs
(constant factors per operation).
"""

from __future__ import annotations

import pytest

from repro.core.ddc import DynamicDataCube
from repro.methods import FenwickCube
from repro.methods.segment_tree import SegmentTreeCube
from repro.workloads import clustered, dense_uniform, prefix_cells

from conftest import report

N = 128

VARIANTS = {
    "ddc/bc secondaries": lambda data: DynamicDataCube.from_array(
        data, secondary_kind="ddc"
    ),
    "fenwick secondaries": lambda data: DynamicDataCube.from_array(
        data, secondary_kind="fenwick"
    ),
    "plain fenwick cube": lambda data: FenwickCube.from_array(data),
    "plain segment tree": lambda data: SegmentTreeCube.from_array(data),
}


def test_ablation_op_counts(benchmark):
    data = dense_uniform((N, N), seed=18)
    cells = prefix_cells((N, N), 40, seed=19)

    def measure():
        rows = []
        for label, factory in VARIANTS.items():
            structure = factory(data)
            structure.stats.reset()
            for cell in cells:
                structure.prefix_sum(cell)
            query_ops = structure.stats.total_cell_ops / len(cells)
            structure.stats.reset()
            for cell in cells:
                structure.add(cell, 1)
            update_ops = structure.stats.total_cell_ops / len(cells)
            rows.append((label, query_ops, update_ops, structure.memory_cells()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"dense {N}x{N} cube: mean ops per random prefix query / update",
        f"{'variant':>20} {'query ops':>10} {'update ops':>11} {'storage':>9}",
    ]
    for label, query_ops, update_ops, storage in rows:
        lines.append(
            f"{label:>20} {query_ops:>10.1f} {update_ops:>11.1f} {storage:>9,}"
        )
    report("ablation_secondary_dense", "\n".join(lines))
    by_label = {label: (q, u, s) for label, q, u, s in rows}
    # All three are polylog structures: within an order of magnitude.
    ops = [q + u for q, u, _ in by_label.values()]
    assert max(ops) < 20 * min(ops)


def test_ablation_sparse_storage(benchmark):
    """Where the paper's design wins: clustered data on a big domain."""
    domain = (1024, 1024)
    data = clustered(domain, clusters=4, points_per_cluster=100, seed=20)

    def measure():
        return {
            label: factory(data).memory_cells()
            for label, factory in VARIANTS.items()
        }

    storage = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"clustered data, {domain[0]}x{domain[1]} domain — storage cells"]
    for label, cells in storage.items():
        lines.append(f"  {label:>20}: {cells:>12,}")
    report("ablation_secondary_sparse", "\n".join(lines))
    # Lazy B^c/DDC secondaries stay data-proportional; dense-array
    # variants pay the domain.
    assert storage["ddc/bc secondaries"] < storage["plain fenwick cube"] / 10
    assert storage["ddc/bc secondaries"] < storage["fenwick secondaries"]


@pytest.mark.parametrize("label", list(VARIANTS))
def test_ablation_update_walltime(benchmark, label):
    data = dense_uniform((N, N), seed=21)
    structure = VARIANTS[label](data)
    cells = prefix_cells((N, N), 64, seed=22)
    index = iter(range(10**9))

    def one_update():
        structure.add(cells[next(index) % len(cells)], 1)

    benchmark(one_update)


@pytest.mark.parametrize("label", list(VARIANTS))
def test_ablation_query_walltime(benchmark, label):
    data = dense_uniform((N, N), seed=23)
    structure = VARIANTS[label](data)
    cells = prefix_cells((N, N), 64, seed=24)
    index = iter(range(10**9))

    def one_query():
        return structure.prefix_sum(cells[next(index) % len(cells)])

    benchmark(one_query)
