"""Metrics registry: counters, gauges, and log-scale latency histograms.

The registry is the aggregation side of the observability layer: spans
answer "what did *this* query do", metrics answer "what does the
*distribution* look like" — the p99 of a shard's query latency, the hit
rate of the result cache, how often the batch dispatcher fell back to
the scalar path.  Three instrument kinds cover the serving stack:

* :class:`Counter` — monotonically increasing event tallies;
* :class:`Gauge` — last-write-wins level readings (cache occupancy,
  shard epochs);
* :class:`Histogram` — fixed-bucket distributions.  Latency histograms
  use :data:`DEFAULT_LATENCY_BUCKETS`, a log-scale ladder from 1 µs to
  ~4 s, so one bucket layout serves both a cache hit and a cold
  multi-shard scan; quantiles (p50/p95/p99) are estimated by linear
  interpolation inside the winning bucket.

Every instrument is a *family* keyed by label values (``.labels(...)``),
mirroring the Prometheus data model.  One internal export walk feeds
both renderers, so :meth:`MetricsRegistry.render_prometheus` (text
exposition) and :meth:`MetricsRegistry.to_json` (machine-readable
export) always agree on names, labels, and values — one schema, two
encodings.

When observability is disabled the registry is replaced by
:class:`NullRegistry`, whose instruments are shared do-nothing
singletons: the instrumented hot paths keep their call shape and pay
one predicate check.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterable, Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
]

#: Log-scale latency ladder (seconds): 1 µs · 4^i, i = 0..11 (1 µs → ~4.2 s).
DEFAULT_LATENCY_BUCKETS = tuple(1e-6 * 4**i for i in range(12))

#: Log-scale ladder for operation counts: powers of two, 1 → 32768.
DEFAULT_COUNT_BUCKETS = tuple(float(2**i) for i in range(16))

#: Descent-depth ladder: every level up to 12, then coarser to 32.
DEFAULT_DEPTH_BUCKETS = tuple(
    float(b) for b in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 16, 20, 24, 32)
)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_number(value: float) -> str:
    """Compact, round-trippable number text shared by both encoders."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".9g")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class _Family:
    """Shared machinery: a named instrument with per-label-set children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        if not _NAME_PATTERN.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_PATTERN.match(label):
                raise ConfigurationError(
                    f"invalid label name {label!r} for metric {name!r}"
                )
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The child instrument for one concrete label-value assignment."""
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _default_child(self):
        """The label-less child (only valid for label-less families)."""
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {self.label_names}"
            )
        return self.labels()

    def samples(self) -> Iterable[tuple[dict[str, str], object]]:
        """Yield ``(labels dict, child)`` in insertion order."""
        for key, child in self._children.items():
            yield dict(zip(self.label_names, key)), child


class Counter(_Family):
    """Monotonically increasing tally (family of :class:`_CounterChild`)."""

    kind = "counter"

    def _make_child(self) -> "_CounterChild":
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up (inc by {amount}); use a Gauge"
            )
        self.value += amount


class Gauge(_Family):
    """Last-write-wins level reading (family of :class:`_GaugeChild`)."""

    kind = "gauge"

    def _make_child(self) -> "_GaugeChild":
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the label-less child."""
        self._default_child().set(value)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Family):
    """Fixed-bucket distribution (family of :class:`_HistogramChild`).

    Args:
        buckets: ascending finite upper bounds; an implicit ``+Inf``
            bucket tops the ladder.  Defaults to the log-scale latency
            ladder :data:`DEFAULT_LATENCY_BUCKETS`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(
            float(b) for b in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        )
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly ascending, got {bounds}"
            )
        self.buckets = bounds

    def _make_child(self) -> "_HistogramChild":
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the label-less child."""
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_child().quantile(q)


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (amortised O(log buckets))."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket, ``+Inf`` last (== ``count``)."""
        out = []
        running = 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by intra-bucket interpolation.

        Returns 0.0 for an empty histogram.  Observations landing in the
        ``+Inf`` bucket clamp to the highest finite bound — histograms
        cannot see past their ladder, which is why the latency ladder
        tops out well above any sane query time.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            if running >= target and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                fraction = (target - (running - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]


class _NullInstrument:
    """Do-nothing instrument: every method is a no-op returning zero.

    One shared instance stands in for every counter, gauge, and
    histogram when observability is disabled, so instrumented code never
    branches on the instrument kind.
    """

    __slots__ = ()

    def labels(self, **labels) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    @property
    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-keyed collection of metric families with dual exposition."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise ConfigurationError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind} with labels {existing.label_names}"
                )
            return existing
        family = cls(name, help, labels, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        """Get or create a counter family (idempotent per name)."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family (idempotent per name)."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Get or create a histogram family (idempotent per name)."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> _Family | None:
        """The registered family called ``name``, or ``None``.

        Read-only lookup for consumers that must not create families as
        a side effect — the SLO evaluator and the remote harvester both
        need "is this metric present yet" semantics.
        """
        return self._families.get(name)

    def collect(self) -> list[_Family]:
        """Every registered family, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Exposition — one export walk, two encodings
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                if family.kind == "histogram":
                    cumulative = child.cumulative()
                    for bound, running in zip(child.bounds, cumulative):
                        bucket_labels = dict(labels, le=_format_number(bound))
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_render_labels(bucket_labels)} {running}"
                        )
                    inf_labels = dict(labels, le="+Inf")
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(inf_labels)} {child.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{_format_number(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} "
                        f"{child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """JSON export carrying exactly the exposition's values.

        The document mirrors the text format sample for sample —
        histogram buckets are cumulative and keyed by the same ``le``
        strings — so a consumer can validate one against the other.
        """
        metrics = []
        for family in self.collect():
            samples = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    cumulative = child.cumulative()
                    buckets = [
                        {"le": _format_number(bound), "count": running}
                        for bound, running in zip(child.bounds, cumulative)
                    ]
                    buckets.append({"le": "+Inf", "count": child.count})
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": buckets,
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"metrics": metrics}


class NullRegistry:
    """Disabled-mode registry: hands out the shared no-op instrument."""

    def counter(self, name: str, help: str, labels: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def collect(self) -> list:
        return []

    def render_prometheus(self) -> str:
        return ""

    def to_json(self) -> dict:
        return {"metrics": []}
