"""SLO watchdog: latency and error-budget rules over harvested metrics.

The serving roadmap wants a ``/healthz`` endpoint; this module computes
the status it will read.  Rules evaluate *the registry*, not live
traffic, so one watchdog covers the parent engine and — after a
:class:`~repro.obs.remote.MetricsHarvester` pass — the pool workers too:

* :class:`LatencySlo` — a quantile of a histogram family must stay
  under a threshold.  With several children (per-op, per-worker) the
  *worst* child decides, so one overloaded worker degrades the status
  even when the aggregate looks fine.
* :class:`ErrorBudgetSlo` — the ratio of an error tally to a request
  tally must stay within budget.

:class:`SloWatchdog.check` optionally harvests first (pass the
engine's ``harvest_worker_metrics``), evaluates every rule, and flips
:attr:`SloWatchdog.healthy`; :meth:`SloWatchdog.healthz` renders the
dict a health endpoint would serialise.  Rules with no data yet pass
vacuously — an idle engine is healthy, not unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "SloStatus",
    "LatencySlo",
    "ErrorBudgetSlo",
    "SloWatchdog",
    "default_slo_rules",
    "engine_watchdog",
    "evaluate_health",
]


@dataclass(frozen=True)
class SloStatus:
    """Outcome of one rule evaluation."""

    name: str
    ok: bool
    value: float
    threshold: float
    detail: str

    def render(self) -> str:
        """One status line: ``[ OK ] name value<=threshold detail``."""
        flag = " OK " if self.ok else "FAIL"
        return f"[{flag}] {self.name}: {self.detail}"


def _matching_children(family, labels: dict | None):
    """``(labels, child)`` pairs of a family, filtered by a label subset."""
    for child_labels, child in family.samples():
        if labels and any(
            child_labels.get(key) != str(value) for key, value in labels.items()
        ):
            continue
        yield child_labels, child


def _family_total(family, labels: dict | None) -> float:
    """Sum a family's children: counter/gauge values, histogram counts."""
    total = 0.0
    for _, child in _matching_children(family, labels):
        if family.kind == "histogram":
            total += float(child.count)
        else:
            total += float(child.value)
    return total


@dataclass(frozen=True)
class LatencySlo:
    """``quantile(metric) <= threshold_seconds`` for every matching child."""

    name: str
    metric: str
    quantile: float
    threshold_seconds: float
    labels: dict | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r} quantile must be in (0, 1], "
                f"got {self.quantile}"
            )
        if self.threshold_seconds <= 0:
            raise ConfigurationError(
                f"SLO {self.name!r} threshold must be positive, "
                f"got {self.threshold_seconds}"
            )

    def evaluate(self, registry) -> SloStatus:
        family = registry.get(self.metric)
        percent = f"p{self.quantile * 100:g}"
        if family is None or family.kind != "histogram":
            return SloStatus(
                self.name, True, 0.0, self.threshold_seconds,
                f"{self.metric} {percent}: no data yet",
            )
        worst = 0.0
        worst_labels: dict = {}
        for child_labels, child in _matching_children(family, self.labels):
            if child.count == 0:
                continue
            estimate = child.quantile(self.quantile)
            if estimate > worst:
                worst = estimate
                worst_labels = child_labels
            else:
                worst_labels = worst_labels or child_labels
        ok = worst <= self.threshold_seconds
        where = (
            "{" + ", ".join(f"{k}={v}" for k, v in worst_labels.items()) + "}"
            if worst_labels
            else ""
        )
        detail = (
            f"{self.metric}{where} {percent}={worst * 1e3:.3f}ms "
            f"(budget {self.threshold_seconds * 1e3:.3f}ms)"
        )
        return SloStatus(self.name, ok, worst, self.threshold_seconds, detail)


@dataclass(frozen=True)
class ErrorBudgetSlo:
    """``errors / total <= budget`` across matching children."""

    name: str
    errors_metric: str
    total_metric: str
    budget: float
    errors_labels: dict | None = field(default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget < 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r} budget must be in [0, 1), got {self.budget}"
            )

    def evaluate(self, registry) -> SloStatus:
        errors_family = registry.get(self.errors_metric)
        total_family = registry.get(self.total_metric)
        errors = (
            _family_total(errors_family, self.errors_labels)
            if errors_family is not None
            else 0.0
        )
        total = _family_total(total_family, None) if total_family is not None else 0.0
        ratio = errors / total if total > 0 else 0.0
        ok = ratio <= self.budget
        detail = (
            f"{self.errors_metric}/{self.total_metric} = "
            f"{errors:g}/{total:g} = {ratio:.4%} (budget {self.budget:.2%})"
        )
        return SloStatus(self.name, ok, ratio, self.budget, detail)


def default_slo_rules(
    p99_seconds: float = 0.05, error_budget: float = 0.01
) -> list:
    """The engine's stock rules: request p99 and degraded-reply budget."""
    return [
        LatencySlo(
            "request_latency_p99",
            "repro_engine_request_seconds",
            0.99,
            p99_seconds,
        ),
        ErrorBudgetSlo(
            "degraded_reply_budget",
            "repro_engine_degraded_total",
            "repro_engine_request_seconds",
            error_budget,
        ),
    ]


class SloWatchdog:
    """Evaluates SLO rules against a registry and holds the verdict.

    Args:
        obs: the :class:`~repro.obs.Observability` facade whose registry
            the rules read.
        rules: rule objects with ``evaluate(registry) -> SloStatus``;
            defaults to :func:`default_slo_rules`.
        harvest: optional zero-argument callable run before each check —
            wire the engine's ``harvest_worker_metrics`` here so worker
            metrics are fresh when the rules read them.
    """

    def __init__(
        self,
        obs,
        rules: Sequence | None = None,
        harvest: Callable[[], object] | None = None,
    ) -> None:
        self.obs = obs
        self.rules = list(rules) if rules is not None else default_slo_rules()
        self._harvest = harvest
        self.statuses: list[SloStatus] = []
        self.checks = 0

    def check(self) -> list[SloStatus]:
        """Harvest (if wired), evaluate every rule, update the verdict."""
        if self._harvest is not None:
            self._harvest()
        registry = self.obs.metrics
        self.statuses = [rule.evaluate(registry) for rule in self.rules]
        self.checks += 1
        return self.statuses

    @property
    def healthy(self) -> bool:
        """True while every rule from the latest check passed."""
        return all(status.ok for status in self.statuses)

    def healthz(self) -> dict:
        """The health document a ``/healthz`` endpoint would serialise."""
        return {
            "status": "ok" if self.healthy else "degraded",
            "checks_run": self.checks,
            "rules": [
                {
                    "name": status.name,
                    "ok": status.ok,
                    "value": status.value,
                    "threshold": status.threshold,
                    "detail": status.detail,
                }
                for status in self.statuses
            ],
        }

    def render(self) -> str:
        """Multi-line status report (one line per rule + verdict)."""
        lines = [status.render() for status in self.statuses]
        verdict = "HEALTHY" if self.healthy else "DEGRADED"
        lines.append(f"slo: {verdict} ({self.checks} checks)")
        return "\n".join(lines)


def engine_watchdog(obs, engine, rules: Sequence | None = None) -> SloWatchdog:
    """The one construction path for an engine-backed watchdog.

    Wires the harvest hook to the engine's ``harvest_worker_metrics``
    (a no-op outside process mode) so worker metrics are fresh for
    every rule evaluation.  Both ``repro top`` and the serving
    front-end's ``/healthz`` build their watchdog here.
    """
    return SloWatchdog(obs, rules=rules, harvest=engine.harvest_worker_metrics)


def evaluate_health(watchdog: SloWatchdog, engine) -> dict:
    """Run one health evaluation and return the full health document.

    This is the *single* verdict path shared by ``repro top --once``
    (exit code) and the serve ``/healthz`` endpoint (status code +
    body), so the two surfaces cannot drift: one ``watchdog.check()``
    over the shared rules, then the engine's live circuit-breaker
    states folded in — any open breaker degrades the verdict even when
    every SLO rule passes, because an open breaker means a shard is
    being shed right now.

    Returns the document a health endpoint serialises; ``healthy`` is
    the boolean verdict, ``status`` is ``"ok"`` or ``"degraded"``.
    """
    watchdog.check()
    document = watchdog.healthz()
    info = engine.resilience_info()
    if info is not None:
        document["breakers"] = info["breakers"]
        open_shards = sorted(
            breaker["shard"]
            for breaker in info["breakers"]
            if breaker["state"] != "closed"
        )
        if open_shards:
            document["status"] = "degraded"
            document["open_breakers"] = open_shards
    document["healthy"] = document["status"] == "ok"
    return document
