"""Span-based tracing: one query becomes one engine→shard→method→tree tree.

A :class:`Span` is a named, timed region with arbitrary key/value
attributes (shard id, cache outcome, node-visit deltas).  Spans nest:
each thread carries a stack of open spans, a new span becomes a child of
the stack top, and a span opened with an explicit ``parent=`` attaches
across threads — which is how the engine's executor fan-out keeps
per-shard spans under the request's root span even when they run on
pool threads.

Finished *root* spans land in a bounded ring buffer (oldest evicted
first), so a long serving run keeps a recent window of complete traces
at O(capacity) memory.  Head-based sampling (``sample_every``) decides
at the root whether a trace is recorded at all; an unsampled root pushes
a null marker onto the stack so its entire subtree is suppressed for the
price of one list append.

The tracer never reads the wall clock itself — timestamps come from the
injected clock (see :mod:`repro.obs.clock` and lint rule REP008).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Iterator, Sequence

from ..exceptions import ConfigurationError
from .clock import MonotonicClock

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "render_span_tree",
    "sorted_by_duration",
]

#: Sentinel distinguishing "no parent passed" from "parent is None".
_UNSET = object()


class Span:
    """One named, timed, attributed region of a trace.

    ``trace_id`` identifies the whole request tree (every span under one
    root shares it); ``span_id`` is unique per span within a tracer.
    Together they form the propagation context that crosses the process
    boundary (see :mod:`repro.obs.remote`): the parent ships
    ``(trace_id, span_id)`` with an IPC request, and worker-side spans
    returning in the ack re-parent under that span id.
    """

    __slots__ = ("name", "start", "end", "attributes", "children", "trace_id", "span_id")

    def __init__(
        self, name: str, start: float, trace_id: int = 0, span_id: int = 0
    ) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, object] = {}
        self.children: list["Span"] = []
        self.trace_id = trace_id
        self.span_id = span_id

    def set(self, **attributes) -> None:
        """Attach attributes (merging over earlier values)."""
        self.attributes.update(attributes)

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Do-nothing span: the subtree of an unsampled or disabled trace."""

    __slots__ = ()

    name = "(unsampled)"
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: dict = {}
    children: tuple = ()
    trace_id = 0
    span_id = 0

    def set(self, **attributes) -> None:
        pass

    def walk(self):
        return iter(())


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one live span (push on enter, pop on exit)."""

    __slots__ = ("_tracer", "_span", "_is_root")

    def __init__(self, tracer: "Tracer", span: Span, is_root: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._is_root = is_root

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.end = self._tracer.clock.now()
        self._tracer._stack().pop()
        if self._is_root:
            self._tracer._record(self._span)


class _NullHandle:
    """Context manager for a suppressed span.

    Pushes :data:`NULL_SPAN` so descendants see a (null) parent and
    suppress themselves instead of becoming orphan roots.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> _NullSpan:
        self._tracer._stack().append(NULL_SPAN)
        return NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        self._tracer._stack().pop()


class Tracer:
    """Factory and ring buffer for spans.

    Args:
        clock: injected time source (defaults to a fresh monotonic
            clock; the :class:`~repro.obs.Observability` facade passes
            its own so every component shares one timeline).
        capacity: finished root spans retained (oldest evicted first).
        sample_every: head sampling — record every Nth root trace.  1
            records everything; N > 1 bounds tracing overhead on hot
            paths while metrics stay exact.
    """

    def __init__(
        self,
        clock=None,
        capacity: int = 256,
        sample_every: int = 1,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"tracer capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.clock = clock if clock is not None else MonotonicClock()
        self.capacity = capacity
        self.sample_every = sample_every
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._sample_lock = threading.Lock()
        self._roots_seen = 0
        self._null_handle = _NullHandle(self)
        # ``itertools.count.__next__`` is atomic under the GIL, so span
        # ids can be drawn from executor threads without the lock.
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def span(self, name: str, parent=_UNSET, **attributes):
        """Open a span as a context manager yielding the :class:`Span`.

        Without ``parent=`` the span nests under the calling thread's
        innermost open span (or starts a new sampled root).  Pass the
        parent explicitly to attach across threads — e.g. per-shard
        sub-query spans created on executor threads.
        """
        if parent is _UNSET:
            stack = self._stack()
            parent = stack[-1] if stack else None
        if parent is NULL_SPAN or isinstance(parent, _NullSpan):
            return self._null_handle
        if parent is None and not self._sample_root():
            return self._null_handle
        trace_id = parent.trace_id if parent is not None else next(self._trace_ids)
        span = Span(name, self.clock.now(), trace_id, next(self._span_ids))
        if attributes:
            span.attributes.update(attributes)
        if parent is not None:
            parent.children.append(span)
        return _SpanHandle(self, span, is_root=parent is None)

    def current(self) -> Span | _NullSpan | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> tuple[int, int] | None:
        """The propagation context ``(trace_id, span_id)`` of the
        calling thread's innermost *recorded* span, or ``None`` when no
        span is open or the trace is unsampled.  This is the wire format
        shipped across the IPC boundary with worker requests."""
        span = self.current()
        if isinstance(span, Span):
            return (span.trace_id, span.span_id)
        return None

    def next_span_id(self) -> int:
        """Allocate a fresh span id (used when grafting foreign spans)."""
        return next(self._span_ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _sample_root(self) -> bool:
        if self.sample_every == 1:
            return True
        with self._sample_lock:
            self._roots_seen += 1
            return self._roots_seen % self.sample_every == 1

    def _record(self, span: Span) -> None:
        self._finished.append(span)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def finished_roots(self) -> list[Span]:
        """Retained finished root spans, oldest first."""
        return list(self._finished)

    def clear(self) -> None:
        """Drop every retained trace (open spans are unaffected)."""
        self._finished.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(capacity={self.capacity}, "
            f"sample_every={self.sample_every}, "
            f"retained={len(self._finished)})"
        )


class NullTracer:
    """Disabled-mode tracer: every span is the shared null span."""

    def __init__(self) -> None:
        self._handle = _StatelessNullHandle()

    def span(self, name: str, parent=_UNSET, **attributes):
        return self._handle

    def current(self):
        return None

    def current_context(self):
        return None

    def next_span_id(self) -> int:
        return 0

    def finished_roots(self) -> list:
        return []

    def clear(self) -> None:
        pass


class _StatelessNullHandle:
    """Null span context that does not even touch a thread-local stack."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


def _format_attributes(attributes: dict) -> str:
    if not attributes:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in attributes.items())
    return " {" + inner + "}"


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable one-line-per-span rendering of a finished trace.

    ::

        engine.range_sum 184.2us {cache=miss}
          shard.range_sum 90.1us {shard=0, node_visits=14}
            method.range_sum 88.0us {method=ddc}
              tree.prefix_sum 21.5us {structure=ddc, depth=7}
    """
    lines: list[str] = []
    _render_into(span, indent, lines)
    return "\n".join(lines)


def _render_into(span: Span, indent: int, lines: list[str]) -> None:
    micros = span.duration * 1e6
    if micros >= 1e6:
        timing = f"{micros / 1e6:.3f}s"
    elif micros >= 1e3:
        timing = f"{micros / 1e3:.1f}ms"
    else:
        timing = f"{micros:.1f}us"
    lines.append(
        f"{'  ' * indent}{span.name} {timing}"
        f"{_format_attributes(span.attributes)}"
    )
    for child in span.children:
        _render_into(child, indent + 1, lines)


def sorted_by_duration(spans: Sequence[Span]) -> list[Span]:
    """Spans sorted slowest-first (helper for "show me the N slowest")."""
    return sorted(spans, key=lambda span: span.duration, reverse=True)
