"""Unified export surface: one snapshot, every encoding.

``repro metrics`` wants Prometheus text, dashboards want JSON, humans
want ``chrome://tracing`` / Perfetto for span trees, and the future
``/healthz`` wants the SLO verdict — all of them views over the same
:class:`~repro.obs.Observability` state.  This module renders them from
one walk so the encodings can never disagree:

* :func:`chrome_trace_document` — finished root spans as Chrome trace
  "complete" (``ph: "X"``) events.  Worker-grafted spans (attribute
  ``worker``) land on their own track, so a process-mode trace shows
  the parent request lane above per-worker lanes.
* :func:`export_unified` — the kitchen-sink snapshot dict backing
  :meth:`Observability.export_unified`: Prometheus text + JSON metrics
  (per-worker labels included once harvested), the Chrome trace, slow
  queries, pool state, and the SLO health document.
"""

from __future__ import annotations

import json

from .trace import Span

__all__ = [
    "chrome_trace_document",
    "write_chrome_trace",
    "export_unified",
]

#: Synthetic Chrome-trace process id (one engine = one "process" row).
_TRACE_PID = 1


def _span_tid(span: Span) -> int:
    """Track id for one span: parent work on 0, worker spans on 1+N."""
    worker = span.attributes.get("worker")
    if worker is None:
        return 0
    try:
        return int(worker) + 1
    except (TypeError, ValueError):
        return 0


def chrome_trace_document(roots) -> dict:
    """Finished root spans as a ``chrome://tracing`` / Perfetto document.

    Timestamps are microseconds relative to the earliest root, so the
    document is stable across runs of the same virtual-clock test.
    Span attributes become event ``args`` (stringified — the viewer
    displays them verbatim); ``trace_id``/``span_id`` ride along so
    events can be joined back to the tracer's trees.
    """
    roots = [root for root in roots if isinstance(root, Span)]
    if not roots:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(root.start for root in roots)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-engine"},
        }
    ]
    tids_seen: set[int] = set()
    for root in roots:
        for span in root.walk():
            tid = _span_tid(span)
            tids_seen.add(tid)
            args = {key: str(value) for key, value in span.attributes.items()}
            args["trace_id"] = str(span.trace_id)
            args["span_id"] = str(span.span_id)
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "repro",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "args": args,
                }
            )
    for tid in sorted(tids_seen):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": "parent" if tid == 0 else f"worker {tid - 1}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, roots) -> int:
    """Serialise :func:`chrome_trace_document` to ``path``.

    Returns the number of trace events written (metadata excluded).
    """
    document = chrome_trace_document(roots)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")


def export_unified(obs, engine=None, slo=None) -> dict:
    """One snapshot of everything the observability layer knows.

    Args:
        obs: the facade to export.
        engine: optional :class:`~repro.engine.ShardedEngine`; when given
            its worker metrics are harvested first (so per-worker labels
            appear in both metric encodings) and its pool state rides
            along.
        slo: optional :class:`~repro.obs.slo.SloWatchdog`; when given a
            fresh check runs and its health document is included.
    """
    harvest = None
    pool = None
    if engine is not None:
        harvester = getattr(engine, "harvest_worker_metrics", None)
        if harvester is not None:
            harvest = harvester()
        pool_info = getattr(engine, "pool_info", None)
        if pool_info is not None:
            pool = pool_info()
    health = None
    if slo is not None:
        slo.check()
        health = slo.healthz()
    roots = obs.tracer.finished_roots()
    return {
        "prometheus": obs.metrics.render_prometheus(),
        "metrics": obs.metrics.to_json()["metrics"],
        "chrome_trace": chrome_trace_document(roots),
        "slow_queries": [
            {
                "seconds": record.seconds,
                "attributes": dict(record.attributes),
                "shards": record.shards,
                "workers": record.workers,
            }
            for record in obs.slow_log.slowest(16)
        ],
        "harvest": harvest,
        "pool": pool,
        "slo": health,
    }
