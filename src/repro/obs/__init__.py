"""``repro.obs``: tracing, metrics, and slow-query capture for serving.

The paper's whole argument is a cost model — operations per query and
per update — and :class:`~repro.counters.OpCounter` measures exactly
that, after the fact, in aggregate.  This package adds the *live* view a
serving deployment needs: per-query span trees, latency and op-count
distributions, and a slow-query log, behind one facade:

>>> from repro.obs import Observability
>>> from repro.engine import ShardedEngine
>>> obs = Observability()
>>> engine = ShardedEngine((64, 64), shards=4, obs=obs)
>>> engine.add((3, 5), 7)
>>> _ = engine.range_sum((0, 0), (40, 40))
>>> print(obs.metrics.render_prometheus())        # doctest: +SKIP
>>> for record in obs.slow_log.slowest(3):        # doctest: +SKIP
...     print(record.render())

Design rules the whole layer obeys:

* **Disabled means free.**  Every structure carries ``NULL_OBS`` until
  an :class:`Observability` is wired in; the instrumented hot paths
  check one ``obs.enabled`` predicate and otherwise run the exact PR 3
  code.  ``benchmarks/bench_obs_overhead.py`` proves the disabled-mode
  cost is within run-to-run noise.
* **One clock.**  All timestamps come from the injected clock; hot-path
  modules never call ``time.perf_counter`` themselves (lint rule
  REP008 enforces this).
* **One schema.**  The Prometheus text exposition and the JSON export
  are two encodings of the same sample walk — values always agree.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .clock import ManualClock, MonotonicClock
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .export import chrome_trace_document, export_unified, write_chrome_trace
from .remote import (
    MetricsHarvester,
    RemoteMetricsLayout,
    WorkerMetricsShard,
    graft_spans,
    span_payload,
    worker_metrics_layout,
)
from .slo import (
    ErrorBudgetSlo,
    LatencySlo,
    SloStatus,
    SloWatchdog,
    default_slo_rules,
    engine_watchdog,
    evaluate_health,
)
from .slowlog import NullSlowQueryLog, SlowQueryLog, SlowQueryRecord
from .trace import (
    NULL_SPAN,
    NullTracer,
    Span,
    Tracer,
    render_span_tree,
    sorted_by_duration,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MonotonicClock",
    "ManualClock",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "render_span_tree",
    "sorted_by_duration",
    "SlowQueryLog",
    "SlowQueryRecord",
    "NullSlowQueryLog",
    "RemoteMetricsLayout",
    "WorkerMetricsShard",
    "MetricsHarvester",
    "worker_metrics_layout",
    "span_payload",
    "graft_spans",
    "chrome_trace_document",
    "write_chrome_trace",
    "export_unified",
    "SloWatchdog",
    "SloStatus",
    "LatencySlo",
    "ErrorBudgetSlo",
    "default_slo_rules",
    "engine_watchdog",
    "evaluate_health",
]


class Observability:
    """One wiring point for clock, metrics, tracer, and slow-query log.

    Structures receive an ``Observability`` (or the shared ``NULL_OBS``)
    and read everything through it.  The facade pre-registers the
    method- and tree-level instrument families used by the hot paths so
    instrumented code never pays a registry lookup per query.

    Args:
        clock: injected time source; defaults to
            :class:`~repro.obs.clock.MonotonicClock`.
        metrics: metrics registry; defaults to a fresh
            :class:`~repro.obs.metrics.MetricsRegistry`.
        tracer: span tracer; defaults to a :class:`~repro.obs.trace.Tracer`
            sharing ``clock``.
        slow_log: slow-query log; defaults to a fresh
            :class:`~repro.obs.slowlog.SlowQueryLog`.
        trace_sample_every: head-sampling period for the default tracer
            (record every Nth root trace); ignored when ``tracer`` is
            passed explicitly.
        slow_query_seconds: latency threshold for the default slow log;
            ignored when ``slow_log`` is passed explicitly.
        slow_query_ops: op-count threshold for the default slow log.
        slow_sample_rate: sampling probability for the default slow log.
        remote_worker_metrics: when True (the default) a process-backed
            engine allocates per-worker shared-memory metric shards and
            a harvester (see :mod:`repro.obs.remote`); False keeps
            observability parent-only.
    """

    def __init__(
        self,
        clock=None,
        metrics=None,
        tracer=None,
        slow_log=None,
        trace_sample_every: int = 1,
        slow_query_seconds: float = 0.0,
        slow_query_ops: int | None = None,
        slow_sample_rate: float = 1.0,
        remote_worker_metrics: bool = True,
    ) -> None:
        self.enabled = True
        self.remote_worker_metrics = remote_worker_metrics
        self.clock = clock if clock is not None else MonotonicClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(clock=self.clock, sample_every=trace_sample_every)
        )
        self.slow_log = (
            slow_log
            if slow_log is not None
            else SlowQueryLog(
                latency_threshold=slow_query_seconds,
                op_threshold=slow_query_ops,
                sample_rate=slow_sample_rate,
            )
        )
        self._register_shared_instruments()

    def _register_shared_instruments(self) -> None:
        """Pre-create the families the method/tree hot paths observe into."""
        self.method_query_seconds = self.metrics.histogram(
            "repro_method_query_seconds",
            "Range-sum latency per method (base dispatch).",
            labels=("method",),
        )
        self.method_query_ops = self.metrics.histogram(
            "repro_method_query_ops",
            "Logical cell operations per range-sum query, per method.",
            labels=("method",),
            buckets=DEFAULT_COUNT_BUCKETS,
        )
        self.batch_path_total = self.metrics.counter(
            "repro_method_batch_path_total",
            "Batch dispatch decisions: shared-work batch path vs scalar "
            "fallback below the method's crossover.",
            labels=("method", "path"),
        )
        self.descent_depth = self.metrics.histogram(
            "repro_tree_descent_depth",
            "Primary/B^c tree levels walked per descent.",
            labels=("structure", "op"),
            buckets=DEFAULT_DEPTH_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "Observability":
        """A permanently-off facade: no-op components, zero retention.

        Prefer the shared :data:`NULL_OBS` singleton; this constructor
        exists for tests that want an independent disabled instance.
        """
        obs = cls.__new__(cls)
        obs.enabled = False
        obs.remote_worker_metrics = False
        obs.clock = MonotonicClock()
        obs.metrics = NullRegistry()
        obs.tracer = NullTracer()
        obs.slow_log = NullSlowQueryLog()
        obs._register_shared_instruments()
        return obs

    # ------------------------------------------------------------------
    # Convenience pass-throughs
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a span on the tracer (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, **attributes)

    def export_unified(self, engine=None, slo=None) -> dict:
        """One snapshot, every encoding (see :func:`repro.obs.export.export_unified`).

        Pass the engine to harvest worker metrics and include pool
        state; pass an :class:`~repro.obs.slo.SloWatchdog` to include a
        fresh health verdict.
        """
        return export_unified(self, engine=engine, slo=slo)

    def enable(self) -> None:
        """Turn instrumentation on (components must be real, not null)."""
        if isinstance(self.metrics, NullRegistry):
            raise ConfigurationError(
                "cannot enable a disabled() Observability — construct a "
                "fresh Observability() instead"
            )
        self.enabled = True

    def disable(self) -> None:
        """Pause instrumentation (retained traces and metrics survive)."""
        self.enabled = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state})"


#: Shared disabled facade every structure carries by default.  Hot paths
#: check ``obs.enabled`` once and skip all instrumentation work.
NULL_OBS = Observability.disabled()
