"""Cross-process telemetry: shared-memory worker metric shards.

The parent-process registry (:mod:`repro.obs.metrics`) cannot see what
happens inside pool workers — seqlock retries, slab-kernel gather
timings, delta-apply latency all execute in other processes.  Shipping
metric updates over the IPC pipe would tax the exact hot path the
metrics are meant to watch, so workers publish telemetry the same way
shards publish data: through shared memory.

**Slot layout.**  Each worker owns one small segment laid out by a
:class:`RemoteMetricsLayout` — a fixed, parent-chosen schema of
instruments flattened into a single ``float64`` slot array:

* counter / gauge → 1 slot (the running value);
* histogram with ``B`` finite bounds → ``B + 1`` bucket-count slots
  (``+Inf`` last, matching :class:`~repro.obs.metrics._HistogramChild`),
  then a ``sum`` slot, then a ``count`` slot.

Ahead of the slots sits a two-word ``int64`` header reusing the seqlock
discipline of :mod:`repro.engine.shm`: ``seq`` (odd while the owning
worker is mid-update, even after) and ``updates`` (total updates
published).  The worker is the *only* writer, so updates are lock-free;
the parent snapshots the slot array and retries while ``seq`` is odd or
changes underneath it.

**Harvest semantics.**  :class:`MetricsHarvester` owns the segments
(workers only attach), keeps the last snapshot per worker, and merges
*deltas* into the parent registry under an extra ``worker`` label.
Because the segment outlives the worker process, a SIGKILLed worker's
last-published values are still mapped: the next harvest picks them up
(no loss), and since merging is delta-based a respawned worker that
keeps incrementing the same slots is never double-counted.

**Trace propagation.**  The parent ships ``(trace_id, span_id)`` with
an IPC request (see :meth:`~repro.obs.trace.Tracer.current_context`);
the worker times its spans relative to its own op start and returns
them in the ack as plain nested tuples (:func:`span_payload`).  The
parent re-bases them onto its timeline and grafts them under the
requesting span (:func:`graft_spans`) so one trace tree spans both
sides of the process boundary.
"""

from __future__ import annotations

import itertools
import os
from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..shmutil import attach_segment
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from .trace import Span, Tracer

__all__ = [
    "HEADER_SEQ",
    "HEADER_UPDATES",
    "RemoteMetricsLayout",
    "WorkerMetricsShard",
    "MetricsHarvester",
    "worker_metrics_layout",
    "span_payload",
    "graft_spans",
]

#: Header words ahead of the slot array: ``seq`` is the single-writer
#: seqlock counter, ``updates`` counts published updates (diagnostics).
HEADER_SEQ = 0
HEADER_UPDATES = 1
_HEADER_COUNT = 2
_HEADER_DTYPE = np.dtype(np.int64)
_HEADER_NBYTES = _HEADER_COUNT * _HEADER_DTYPE.itemsize
_SLOT_DTYPE = np.dtype(np.float64)

_KINDS = ("counter", "gauge", "histogram")

_SEGMENT_IDS = itertools.count()


class RemoteMetricsLayout:
    """Fixed slot schema shared by one worker shard and its harvester.

    Built parent-side and pickled to workers, so both ends agree on
    every offset by construction.  Entries are plain tuples::

        (kind, name, help, labels, buckets)

    where ``kind`` is ``"counter"``/``"gauge"``/``"histogram"``,
    ``labels`` is a tuple of ``(label, value)`` pairs binding this slot
    group to one concrete child (the harvester appends the ``worker``
    label itself), and ``buckets`` is the finite bucket ladder for
    histograms (``None`` otherwise).
    """

    def __init__(self, entries: Sequence[tuple]) -> None:
        if not entries:
            raise ConfigurationError("remote metrics layout needs >= 1 entry")
        resolved: list[tuple] = []
        offsets: list[int] = []
        index: dict[tuple, int] = {}
        slot = 0
        for position, entry in enumerate(entries):
            kind, name, help_text, labels, buckets = entry
            if kind not in _KINDS:
                raise ConfigurationError(
                    f"unknown remote instrument kind {kind!r}; "
                    f"known kinds: {', '.join(_KINDS)}"
                )
            labels = tuple((str(key), str(value)) for key, value in labels)
            if kind == "histogram":
                bounds = tuple(float(b) for b in (buckets or ()))
                if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
                    raise ConfigurationError(
                        f"remote histogram {name!r} buckets must be "
                        f"non-empty and strictly ascending, got {bounds}"
                    )
                width = len(bounds) + 3  # +Inf bucket, sum, count
            else:
                bounds = None
                width = 1
            key = (str(name), labels)
            if key in index:
                raise ConfigurationError(
                    f"duplicate remote instrument {name!r} with labels {labels}"
                )
            index[key] = position
            resolved.append((kind, str(name), str(help_text), labels, bounds))
            offsets.append(slot)
            slot += width
        self.entries = tuple(resolved)
        self.offsets = tuple(offsets)
        self.slots = slot
        self._index = index

    @property
    def nbytes(self) -> int:
        """Segment size: header plus the full slot array."""
        return _HEADER_NBYTES + self.slots * _SLOT_DTYPE.itemsize

    def locate(self, name: str, labels: dict) -> int:
        """Position of the entry for ``name`` + concrete labels."""
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        # Entries store labels in declaration order; compare as sets.
        for (entry_name, entry_labels), position in self._index.items():
            if entry_name == name and dict(entry_labels) == dict(key[1]):
                return position
        raise ConfigurationError(
            f"remote layout has no instrument {name!r} with labels "
            f"{dict(key[1])}"
        )


def worker_metrics_layout() -> RemoteMetricsLayout:
    """The pool's standard worker telemetry schema.

    One layout shared by every worker: slab-kernel gather latency,
    delta-apply latency and batch size, per-op tallies, and a gauge
    flagging whether the numba read kernel compiled in that worker.
    """
    return RemoteMetricsLayout(
        [
            (
                "histogram",
                "repro_worker_gather_seconds",
                "Slab read-kernel gather latency inside pool workers",
                (),
                DEFAULT_LATENCY_BUCKETS,
            ),
            (
                "histogram",
                "repro_worker_apply_seconds",
                "Delta-apply latency inside pool workers",
                (),
                DEFAULT_LATENCY_BUCKETS,
            ),
            (
                "histogram",
                "repro_worker_apply_batch_updates",
                "Updates folded per delta-apply batch inside pool workers",
                (),
                DEFAULT_COUNT_BUCKETS,
            ),
            *(
                (
                    "counter",
                    "repro_worker_ops_total",
                    "Operations served by pool workers",
                    (("op", op),),
                    None,
                )
                for op in ("query_many", "apply", "ping")
            ),
            (
                "gauge",
                "repro_worker_kernel_numba",
                "1 when the worker's slab read kernel is numba-compiled",
                (),
                None,
            ),
        ]
    )


class _ShardInstrument:
    """Base for worker-side handles: one slot group in the shard."""

    __slots__ = ("_shard", "_offset")

    def __init__(self, shard: "WorkerMetricsShard", offset: int) -> None:
        self._shard = shard
        self._offset = offset


class _ShardCounter(_ShardInstrument):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up (inc by {amount}); use a gauge"
            )
        shard = self._shard
        shard._begin()
        shard._slots[self._offset] += amount
        shard._end()


class _ShardGauge(_ShardInstrument):
    __slots__ = ()

    def set(self, value: float) -> None:
        shard = self._shard
        shard._begin()
        shard._slots[self._offset] = value
        shard._end()

    def inc(self, amount: float = 1.0) -> None:
        shard = self._shard
        shard._begin()
        shard._slots[self._offset] += amount
        shard._end()

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _ShardHistogram(_ShardInstrument):
    __slots__ = ("_bounds", "_sum_offset", "_count_offset")

    def __init__(
        self, shard: "WorkerMetricsShard", offset: int, bounds: tuple
    ) -> None:
        super().__init__(shard, offset)
        self._bounds = bounds
        self._sum_offset = offset + len(bounds) + 1
        self._count_offset = self._sum_offset + 1

    def observe(self, value: float) -> None:
        shard = self._shard
        slots = shard._slots
        shard._begin()
        slots[self._offset + bisect_left(self._bounds, value)] += 1.0
        slots[self._sum_offset] += value
        slots[self._count_offset] += 1.0
        shard._end()


class WorkerMetricsShard:
    """Worker-side writer over one telemetry segment (lock-free).

    The worker is the sole writer; every update is bracketed by the
    seqlock so the parent's snapshot either sees it whole or retries.
    Handles are resolved once at worker start (:meth:`counter` etc.) —
    the hot path is two header bumps and a few slot adds.
    """

    def __init__(self, layout: RemoteMetricsLayout, segment_name: str) -> None:
        self.layout = layout
        self.segment_name = segment_name
        self._segment = attach_segment(segment_name)
        self._header = np.ndarray(
            _HEADER_COUNT, dtype=_HEADER_DTYPE, buffer=self._segment.buf
        )
        self._slots = np.ndarray(
            layout.slots,
            dtype=_SLOT_DTYPE,
            buffer=self._segment.buf,
            offset=_HEADER_NBYTES,
        )

    def _begin(self) -> None:
        self._header[HEADER_SEQ] += 1

    def _end(self) -> None:
        self._header[HEADER_UPDATES] += 1
        self._header[HEADER_SEQ] += 1

    def _handle(self, kind: str, name: str, labels: dict):
        position = self.layout.locate(name, labels)
        entry_kind, _, _, _, bounds = self.layout.entries[position]
        if entry_kind != kind:
            raise ConfigurationError(
                f"remote instrument {name!r} is a {entry_kind}, not a {kind}"
            )
        offset = self.layout.offsets[position]
        if kind == "counter":
            return _ShardCounter(self, offset)
        if kind == "gauge":
            return _ShardGauge(self, offset)
        return _ShardHistogram(self, offset, bounds)

    def counter(self, name: str, **labels) -> _ShardCounter:
        """Handle for a counter slot declared in the layout."""
        return self._handle("counter", name, labels)

    def gauge(self, name: str, **labels) -> _ShardGauge:
        """Handle for a gauge slot declared in the layout."""
        return self._handle("gauge", name, labels)

    def histogram(self, name: str, **labels) -> _ShardHistogram:
        """Handle for a histogram slot group declared in the layout."""
        return self._handle("histogram", name, labels)

    def close(self) -> None:
        """Unmap the segment (the parent owns unlinking)."""
        self._header = None
        self._slots = None
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


class MetricsHarvester:
    """Parent-side owner of worker telemetry segments; merges on demand.

    Creates one segment per worker slot up front (workers attach by
    name, so a respawned worker resumes incrementing the same slots) and
    folds snapshot *deltas* into the parent registry under an extra
    ``worker`` label.  Delta merging is what makes harvest crash-safe:

    * a dead worker's last-published values are still mapped — the next
      harvest collects them (nothing lost);
    * harvesting twice without new updates adds zero (nothing double-
      counted), regardless of kills and respawns in between.

    A worker SIGKILLed mid-update leaves its seqlock odd forever; after
    a bounded retry the harvester accepts the torn snapshot (at most one
    update is ambiguous) and counts it in ``torn_snapshots``.
    """

    #: Snapshot attempts before accepting a torn read.
    _SNAPSHOT_TRIES = 4

    def __init__(self, layout: RemoteMetricsLayout, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"harvester needs >= 1 worker, got {workers}")
        self.layout = layout
        self.workers = workers
        self.torn_snapshots = 0
        self.harvests = 0
        self._closed = False
        self._segments: list = []
        self._headers: list[np.ndarray] = []
        self._slot_views: list[np.ndarray] = []
        self._last = [
            np.zeros(layout.slots, dtype=_SLOT_DTYPE) for _ in range(workers)
        ]
        token = f"{os.getpid():x}-{next(_SEGMENT_IDS):x}"
        from multiprocessing import shared_memory

        try:
            for worker in range(workers):
                segment = shared_memory.SharedMemory(
                    name=f"repro-obsw-{token}-{worker}",
                    create=True,
                    size=layout.nbytes,
                )
                header = np.ndarray(
                    _HEADER_COUNT, dtype=_HEADER_DTYPE, buffer=segment.buf
                )
                header[...] = 0
                slots = np.ndarray(
                    layout.slots,
                    dtype=_SLOT_DTYPE,
                    buffer=segment.buf,
                    offset=_HEADER_NBYTES,
                )
                slots[...] = 0.0
                self._segments.append(segment)
                self._headers.append(header)
                self._slot_views.append(slots)
        except BaseException:
            self.destroy()
            raise

    def segment_name(self, worker: int) -> str:
        """Name of ``worker``'s telemetry segment."""
        return self._segments[worker].name

    def worker_telemetry(self, worker: int) -> tuple:
        """Picklable attach instructions for one worker:
        ``(layout, segment name)``."""
        return (self.layout, self.segment_name(worker))

    def updates_published(self, worker: int) -> int:
        """The worker's own count of published updates (header word)."""
        return int(self._headers[worker][HEADER_UPDATES])

    def _snapshot(self, worker: int) -> tuple[np.ndarray, bool]:
        """Seqlock-consistent copy of one worker's slots.

        Returns ``(snapshot, torn)``; ``torn`` is True when the seqlock
        never stabilised (worker died mid-update) and the copy may split
        one update.
        """
        header = self._headers[worker]
        view = self._slot_views[worker]
        snapshot = np.array(view, copy=True)
        for _ in range(self._SNAPSHOT_TRIES):
            seq_before = int(header[HEADER_SEQ])
            snapshot = np.array(view, copy=True)
            seq_after = int(header[HEADER_SEQ])
            if seq_before == seq_after and seq_after % 2 == 0:
                return snapshot, False
        return snapshot, True

    def harvest(self, registry: MetricsRegistry) -> dict:
        """Merge every worker's new updates into ``registry``.

        Returns a summary: workers scanned, updates published in total,
        torn snapshots observed so far.
        """
        layout = self.layout
        merged = 0
        for worker in range(self.workers):
            snapshot, torn = self._snapshot(worker)
            if torn:
                self.torn_snapshots += 1
            last = self._last[worker]
            delta = snapshot - last
            # Slots are monotone except gauges; negative drift can only
            # come from a torn read splitting one update — clamp it.
            np.maximum(delta, 0.0, out=delta)
            worker_label = str(worker)
            for position, entry in enumerate(layout.entries):
                kind, name, help_text, labels, bounds = entry
                offset = layout.offsets[position]
                label_names = tuple(key for key, _ in labels) + ("worker",)
                label_values = dict(labels, worker=worker_label)
                if kind == "counter":
                    amount = float(delta[offset])
                    if amount > 0.0:
                        family = registry.counter(name, help_text, labels=label_names)
                        family.labels(**label_values).inc(amount)
                        merged += 1
                elif kind == "gauge":
                    family = registry.gauge(name, help_text, labels=label_names)
                    family.labels(**label_values).set(float(snapshot[offset]))
                else:
                    bucket_count = len(bounds) + 1
                    count_delta = int(round(float(delta[offset + bucket_count + 1])))
                    if count_delta <= 0:
                        continue
                    family = registry.histogram(
                        name, help_text, labels=label_names, buckets=bounds
                    )
                    child = family.labels(**label_values)
                    for index in range(bucket_count):
                        child.counts[index] += int(round(float(delta[offset + index])))
                    child.sum += float(delta[offset + bucket_count])
                    child.count += count_delta
                    merged += 1
            self._last[worker] = snapshot
        self.harvests += 1
        return {
            "workers": self.workers,
            "merged_children": merged,
            "torn_snapshots": self.torn_snapshots,
            "updates_published": sum(
                self.updates_published(worker) for worker in range(self.workers)
            ),
        }

    def destroy(self) -> None:
        """Close and unlink every telemetry segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._headers = []
        self._slot_views = []
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsHarvester(workers={self.workers}, "
            f"slots={self.layout.slots}, harvests={self.harvests})"
        )


# ----------------------------------------------------------------------
# Trace propagation: worker span payloads and parent-side grafting
# ----------------------------------------------------------------------


def span_payload(
    name: str,
    rel_start: float,
    rel_end: float,
    attributes: dict | None = None,
    children: Iterable[tuple] = (),
) -> tuple:
    """One worker-side span as a picklable tuple.

    Times are *relative to the worker's op start* — the worker has no
    access to the parent's clock, so absolute placement happens at graft
    time using the parent's own send timestamp as the base.
    """
    return (
        str(name),
        float(rel_start),
        float(rel_end),
        dict(attributes or {}),
        list(children),
    )


def graft_spans(tracer: Tracer, parent, payload: Sequence[tuple], base: float) -> int:
    """Re-parent worker-shipped spans under ``parent``.

    ``base`` is the parent-clock timestamp the relative worker times are
    re-based onto (the moment the request was sent, so worker spans nest
    inside the IPC window).  Grafted spans join the parent's trace: they
    take its ``trace_id`` and fresh ``span_id``s from the tracer.
    Returns the number of spans grafted; a null/unsampled parent grafts
    nothing.
    """
    if not isinstance(parent, Span):
        return 0
    grafted = 0
    for name, rel_start, rel_end, attributes, children in payload:
        span = Span(
            name, base + rel_start, parent.trace_id, tracer.next_span_id()
        )
        span.end = base + rel_end
        if attributes:
            span.attributes.update(attributes)
        parent.children.append(span)
        grafted += 1
        if children:
            grafted += graft_spans(tracer, span, children, base)
    return grafted
