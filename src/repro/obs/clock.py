"""Injectable monotonic clocks: the only sanctioned time source for hot paths.

Every latency the observability layer records flows through a clock
object injected at construction time, never through a direct
``time.perf_counter()`` call inside the instrumented modules.  That
inversion buys two things:

* **testability** — a :class:`ManualClock` makes span durations and
  histogram contents exact in tests, so the tracing and slow-query
  machinery is verified deterministically instead of with sleeps;
* **enforceability** — lint rule REP008 can mechanically forbid direct
  clock calls inside the hot-path packages (``core/``, ``methods/``,
  ``engine/``), because the one legitimate way to read the time is
  ``obs.clock.now()``.

:class:`MonotonicClock` is the production implementation and the only
place in the serving stack that touches :func:`time.perf_counter`.
"""

from __future__ import annotations

import time

from ..exceptions import ConfigurationError

__all__ = ["MonotonicClock", "ManualClock"]


class MonotonicClock:
    """Production clock: a thin veneer over :func:`time.perf_counter`."""

    __slots__ = ()

    def now(self) -> float:
        """Seconds on a monotonic, high-resolution timeline."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds`` (no-op when <= 0).

        Retry backoff in the serving engine sleeps through the injected
        clock — never through a direct ``time.sleep`` — so a
        :class:`ManualClock` test advances virtual time instead of
        stalling the suite (lint rule REP008 enforces the inversion).
        """
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MonotonicClock()"


class ManualClock:
    """Test clock: time advances only when told to.

    Args:
        start: initial reading in seconds.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The current manual reading."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (monotonicity is enforced)."""
        if seconds < 0:
            raise ConfigurationError(
                f"a monotonic clock cannot go backwards (advance {seconds})"
            )
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Virtual sleep: advance the reading, return immediately.

        This is what makes retry backoff and injected latency spikes
        deterministic — a chaos soak "sleeps" through thousands of
        seconds of virtual time in microseconds of wall time.
        """
        if seconds > 0:
            self.advance(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ManualClock(now={self._now})"
