"""Slow-query log: full span trees + OpCounter diffs for outlier queries.

Histograms show that a tail exists; the slow-query log shows *why*.  A
query whose latency (or logical operation count) crosses the configured
threshold is captured as one :class:`SlowQueryRecord` holding:

* the query's finished span tree — engine→shard→method→tree nesting
  with every per-span attribute (shard ids, cache outcome, node-visit
  deltas), and
* the :class:`~repro.counters.OpCounter` diff accumulated while serving
  it — the paper's own cost axis, so a slow query can be read as "slow
  because it touched 40k cells" vs "slow because the executor stalled".

Probabilistic sampling (``sample_rate``) bounds capture overhead under a
pathological workload where *every* query crosses the threshold; the
RNG is seeded so runs stay reproducible.  The record buffer is a ring:
the log never grows past ``capacity`` entries.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..counters import OpCounter
from ..exceptions import ConfigurationError
from .trace import Span, render_span_tree

__all__ = ["SlowQueryRecord", "SlowQueryLog", "NullSlowQueryLog"]


@dataclass
class SlowQueryRecord:
    """One captured slow query."""

    #: Root of the query's span tree (may be the null span when the
    #: tracer head-sampled this trace out; the ops diff is still real).
    span: object
    #: Logical operations accumulated while serving the query.
    ops: OpCounter
    #: Wall seconds the query took (from the injected clock).
    seconds: float
    #: Free-form context (operation name, executor kind, batch size, ...).
    attributes: dict = field(default_factory=dict)

    def _collect(self, key: str) -> list:
        """Distinct values of one span attribute across the whole tree."""
        values: list = []
        if isinstance(self.span, Span):
            for node in self.span.walk():
                value = node.attributes.get(key)
                if value is not None and value not in values:
                    values.append(value)
        return values

    @property
    def shards(self) -> list:
        """Shard indices touched while serving (from the span tree)."""
        return self._collect("shard")

    @property
    def workers(self) -> list:
        """Pool-worker lanes involved, if any (process executor only)."""
        return self._collect("worker")

    def render(self) -> str:
        """Multi-line rendering: headline, ops line, span tree."""
        extras = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
        shards = self.shards
        workers = self.workers
        if shards:
            extras += f"{', ' if extras else ''}shards={shards}"
        if workers:
            extras += f", workers={workers}"
        lines = [
            f"slow query: {self.seconds * 1e3:.3f}ms"
            + (f" ({extras})" if extras else ""),
            f"  ops: reads={self.ops.cell_reads} writes={self.ops.cell_writes} "
            f"node_visits={self.ops.node_visits}",
        ]
        if isinstance(self.span, Span):
            lines.append(render_span_tree(self.span, indent=1))
        return "\n".join(lines)


class SlowQueryLog:
    """Bounded, sampled capture of queries above a latency/op threshold.

    Args:
        capacity: records retained (ring buffer, oldest evicted).
        latency_threshold: seconds at or above which a query qualifies.
            The default 0.0 captures every query offered — useful for
            tracing runs; production configs raise it.
        op_threshold: alternative qualification by logical operation
            count (``total_cell_ops``); ``None`` disables the op gate.
        sample_rate: probability a qualifying query is actually stored
            (1.0 = keep all).  Bounds overhead when everything is slow.
        seed: RNG seed for the sampling decisions (reproducible runs).
    """

    def __init__(
        self,
        capacity: int = 32,
        latency_threshold: float = 0.0,
        op_threshold: int | None = None,
        sample_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"slow-log capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if latency_threshold < 0:
            raise ConfigurationError(
                f"latency_threshold must be >= 0, got {latency_threshold}"
            )
        self.latency_threshold = latency_threshold
        self.op_threshold = op_threshold
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)
        #: Queries that qualified (before sampling) — the true slow count.
        self.qualified = 0
        #: Qualifying queries dropped by the sampling coin flip.
        self.sampled_out = 0

    def consider(
        self,
        span: object,
        ops: OpCounter,
        seconds: float,
        **attributes,
    ) -> bool:
        """Offer one finished query; returns True when it was recorded."""
        slow = seconds >= self.latency_threshold or (
            self.op_threshold is not None
            and ops.total_cell_ops >= self.op_threshold
        )
        if not slow:
            return False
        self.qualified += 1
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.sampled_out += 1
            return False
        self._records.append(
            SlowQueryRecord(span=span, ops=ops, seconds=seconds, attributes=attributes)
        )
        return True

    def records(self) -> list[SlowQueryRecord]:
        """Retained records, oldest first."""
        return list(self._records)

    def slowest(self, count: int) -> list[SlowQueryRecord]:
        """The ``count`` slowest retained records, slowest first."""
        ranked = sorted(self._records, key=lambda r: r.seconds, reverse=True)
        return ranked[:count]

    def clear(self) -> None:
        """Drop every record (thresholds and tallies are preserved)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlowQueryLog(records={len(self._records)}, "
            f"threshold={self.latency_threshold}s, "
            f"sample_rate={self.sample_rate})"
        )


class NullSlowQueryLog:
    """Disabled-mode slow log: records nothing, reports nothing."""

    latency_threshold = 0.0
    qualified = 0
    sampled_out = 0

    def consider(self, span, ops, seconds, **attributes) -> bool:
        return False

    def records(self) -> list:
        return []

    def slowest(self, count: int) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
