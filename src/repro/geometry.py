"""Geometry helpers for cells, inclusive ranges, and boxes.

The paper ("The Dynamic Data Cube", EDBT 2000) works with a d-dimensional
array ``A`` indexed from 0, and all of its range sums are **inclusive** on
both ends: ``SUM(A[l] : A[h])`` includes the cells ``l`` and ``h``.  This
module centralises the small amount of coordinate arithmetic the rest of
the library relies on:

* cell / range normalisation and validation,
* the 2^d corner enumeration with inclusion-exclusion signs used to turn
  prefix sums into arbitrary range sums (Figure 4 of the paper),
* power-of-two capacity helpers (the paper assumes ``n = 2^i``; we pad
  arbitrary shapes up to that internally).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .exceptions import (
    DimensionMismatchError,
    InvalidRangeError,
    InvalidShapeError,
    OutOfBoundsError,
)

__all__ = [
    "Cell",
    "Shape",
    "normalize_shape",
    "normalize_cell",
    "normalize_range",
    "range_cell_count",
    "iter_cells",
    "inclusion_exclusion_corners",
    "next_power_of_two",
    "is_power_of_two",
    "padded_side",
    "clamp_cell",
]

Cell = tuple[int, ...]
Shape = tuple[int, ...]


def normalize_shape(shape: Sequence[int]) -> Shape:
    """Validate a cube shape and return it as a tuple.

    Every dimension must be a positive integer.  Raises
    :class:`InvalidShapeError` otherwise.
    """
    shape = tuple(int(s) for s in shape)
    if not shape:
        raise InvalidShapeError("cube shape must have at least one dimension")
    if any(s <= 0 for s in shape):
        raise InvalidShapeError(f"all dimensions must be positive, got {shape}")
    return shape


def normalize_cell(cell: Sequence[int] | int, shape: Shape) -> Cell:
    """Validate ``cell`` against ``shape`` and return it as a tuple.

    A bare integer is accepted for one-dimensional cubes.  Raises
    :class:`DimensionMismatchError` or :class:`OutOfBoundsError`.
    """
    # Fast path for the serving loops: a tuple of plain ints needs no
    # rebuilding, only the bounds check.  (``type is int`` deliberately
    # excludes bool and numpy integers — those take the coercing path.)
    if type(cell) is tuple and len(cell) == len(shape):
        for coordinate, size in zip(cell, shape):
            if type(coordinate) is not int:
                break
            if not 0 <= coordinate < size:
                raise OutOfBoundsError(
                    f"cell {cell} out of bounds for shape {shape}"
                )
        else:
            return cell
    if isinstance(cell, int):
        cell = (cell,)
    cell = tuple(int(c) for c in cell)
    if len(cell) != len(shape):
        raise DimensionMismatchError(
            f"cell {cell} has {len(cell)} coordinates, cube has {len(shape)} dimensions"
        )
    for coordinate, size in zip(cell, shape):
        if not 0 <= coordinate < size:
            raise OutOfBoundsError(f"cell {cell} out of bounds for shape {shape}")
    return cell


def normalize_range(
    low: Sequence[int] | int, high: Sequence[int] | int, shape: Shape
) -> tuple[Cell, Cell]:
    """Validate an inclusive range ``[low, high]`` against ``shape``.

    Raises :class:`InvalidRangeError` if any ``low`` coordinate exceeds the
    matching ``high`` coordinate.
    """
    low_cell = normalize_cell(low, shape)
    high_cell = normalize_cell(high, shape)
    if any(lo > hi for lo, hi in zip(low_cell, high_cell)):
        raise InvalidRangeError(f"range low {low_cell} exceeds high {high_cell}")
    return low_cell, high_cell


def range_cell_count(low: Cell, high: Cell) -> int:
    """Number of cells inside the inclusive range ``[low, high]``."""
    count = 1
    for lo, hi in zip(low, high):
        count *= hi - lo + 1
    return count


def iter_cells(low: Cell, high: Cell) -> Iterator[Cell]:
    """Iterate over every cell in the inclusive range ``[low, high]``.

    Iteration order is row-major (last dimension varies fastest).
    """
    dims = len(low)
    current = list(low)
    while True:
        yield tuple(current)
        axis = dims - 1
        while axis >= 0:
            current[axis] += 1
            if current[axis] <= high[axis]:
                break
            current[axis] = low[axis]
            axis -= 1
        else:
            return


def inclusion_exclusion_corners(
    low: Cell, high: Cell
) -> Iterator[tuple[int, Cell | None]]:
    """Yield ``(sign, corner)`` pairs expressing a range sum via prefix sums.

    This is the geometric identity from Figure 4 of the paper generalised
    to d dimensions::

        SUM(A[low] : A[high]) = sum over subsets S of dims of
            (-1)^|S| * PREFIX(corner_S)

    where ``corner_S`` picks ``high_i`` for dimensions outside ``S`` and
    ``low_i - 1`` for dimensions in ``S``.  A corner with any coordinate of
    ``-1`` denotes an empty prefix region and is yielded as ``None`` (its
    contribution is zero); callers may simply skip those terms.
    """
    dims = len(low)
    for mask in range(1 << dims):
        sign = 1
        corner = []
        empty = False
        for axis in range(dims):
            if mask >> axis & 1:
                sign = -sign
                coordinate = low[axis] - 1
                if coordinate < 0:
                    empty = True
                    break
                corner.append(coordinate)
            else:
                corner.append(high[axis])
        if empty:
            yield sign, None
        else:
            yield sign, tuple(corner)


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is ``>= value`` (and at least 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and value & (value - 1) == 0


def padded_side(shape: Shape) -> int:
    """Hypercube side the paper's tree uses for this logical shape.

    The primary tree always covers a hypercube of power-of-two side (the
    paper assumes each dimension has size ``2^i``); any logical shape is
    embedded into the smallest such hypercube.
    """
    return next_power_of_two(max(shape))


def clamp_cell(cell: Cell, shape: Shape) -> Cell:
    """Clamp each coordinate of ``cell`` to ``[0, shape_i - 1]``."""
    return tuple(min(max(c, 0), s - 1) for c, s in zip(cell, shape))
