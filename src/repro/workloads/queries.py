"""Query and update workloads for the benchmark harness.

The paper's cost model is worst-case; the harness measures both the
worst case (origin-corner updates, full-extent prefix queries) and
averaged random workloads so the *shape* comparison of Figure 1 can be
validated empirically on real structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry import Cell, normalize_shape

__all__ = [
    "RangeQuery",
    "PointUpdate",
    "random_ranges",
    "prefix_cells",
    "query_stream",
    "random_updates",
    "worst_case_update",
    "hot_region_updates",
    "interleaved",
    "read_write_stream",
    "straddling_ranges",
]


@dataclass(frozen=True)
class RangeQuery:
    """One inclusive range query."""

    low: Cell
    high: Cell


@dataclass(frozen=True)
class PointUpdate:
    """One point update (delta semantics)."""

    cell: Cell
    delta: int


def random_ranges(
    shape: Sequence[int],
    count: int,
    selectivity: float | None = None,
    seed: int = 0,
) -> list[RangeQuery]:
    """Random inclusive ranges, optionally of fixed per-dim selectivity.

    With ``selectivity`` given, every range spans that fraction of each
    dimension (clamped to at least one cell) at a random position;
    otherwise both corners are uniform.
    """
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = []
        high = []
        for size in shape:
            if selectivity is None:
                a = int(rng.integers(0, size))
                b = int(rng.integers(0, size))
                lo, hi = min(a, b), max(a, b)
            else:
                extent = max(1, int(round(selectivity * size)))
                lo = int(rng.integers(0, size - extent + 1))
                hi = lo + extent - 1
            low.append(lo)
            high.append(hi)
        queries.append(RangeQuery(tuple(low), tuple(high)))
    return queries


def prefix_cells(shape: Sequence[int], count: int, seed: int = 0) -> list[Cell]:
    """Random target cells for corner-anchored prefix queries."""
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    return [
        tuple(int(rng.integers(0, size)) for size in shape) for _ in range(count)
    ]


def query_stream(
    shape: Sequence[int],
    count: int,
    locality: str = "uniform",
    clusters: int = 4,
    spread: float = 0.05,
    zipf_exponent: float = 1.1,
    seed: int = 0,
) -> list[Cell]:
    """Prefix-query target cells with controllable locality.

    The batch-query benchmark sweeps this knob: path-sharing traversal
    gains little on scattered queries and a lot on clustered ones, so
    the stream models both extremes.

    * ``"uniform"`` — iid uniform cells (no locality; every descent
      path is roughly equally likely).
    * ``"zipf"`` — ``clusters`` random centres with Zipf-distributed
      popularity (exponent ``zipf_exponent``); each query picks a
      centre and lands normally around it with per-dimension standard
      deviation ``spread * size``.  Models an OLAP dashboard refresh:
      many queries probing the same few hot regions.
    """
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    if locality == "uniform":
        return [
            tuple(int(rng.integers(0, size)) for size in shape)
            for _ in range(count)
        ]
    if locality != "zipf":
        raise ConfigurationError(f"unknown locality {locality!r}")
    clusters = max(1, clusters)
    centres = [
        tuple(int(rng.integers(0, size)) for size in shape) for _ in range(clusters)
    ]
    weights = np.array([1.0 / (rank + 1) ** zipf_exponent for rank in range(clusters)])
    weights /= weights.sum()
    cells = []
    for _ in range(count):
        centre = centres[int(rng.choice(clusters, p=weights))]
        cell = tuple(
            int(np.clip(round(rng.normal(c, max(1.0, spread * size))), 0, size - 1))
            for c, size in zip(centre, shape)
        )
        cells.append(cell)
    return cells


def random_updates(
    shape: Sequence[int],
    count: int,
    magnitude: int = 10,
    seed: int = 0,
) -> list[PointUpdate]:
    """Uniformly random point updates with non-zero deltas."""
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    updates = []
    for _ in range(count):
        cell = tuple(int(rng.integers(0, size)) for size in shape)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-magnitude, magnitude + 1))
        updates.append(PointUpdate(cell, delta))
    return updates


def worst_case_update(shape: Sequence[int]) -> PointUpdate:
    """The paper's worst case: updating ``A[0, ..., 0]`` (Figure 5)."""
    shape = normalize_shape(shape)
    return PointUpdate((0,) * len(shape), 1)


def hot_region_updates(
    shape: Sequence[int],
    count: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    magnitude: int = 10,
    seed: int = 0,
) -> list[PointUpdate]:
    """Skewed updates: most deltas land in a small origin-corner region.

    Models the "Internet commerce" scenario — a minority of cells (the
    current trading day, the popular products) receive the bulk of the
    update traffic.
    """
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    hot_extent = [max(1, int(round(hot_fraction * size))) for size in shape]
    updates = []
    for _ in range(count):
        limits = hot_extent if rng.random() < hot_probability else list(shape)
        cell = tuple(int(rng.integers(0, limit)) for limit in limits)
        delta = 0
        while delta == 0:
            delta = int(rng.integers(-magnitude, magnitude + 1))
        updates.append(PointUpdate(cell, delta))
    return updates


def read_write_stream(
    shape: Sequence[int],
    count: int,
    mix: float = 0.9,
    locality: str = "uniform",
    pool: int = 32,
    selectivity: float = 0.1,
    clusters: int = 4,
    spread: float = 0.05,
    zipf_exponent: float = 1.1,
    magnitude: int = 10,
    seed: int = 0,
) -> list[RangeQuery | PointUpdate]:
    """A serving-style event stream: ``mix`` reads, ``1 - mix`` writes.

    Models the traffic the sharded engine serves: a dashboard fleet
    re-issuing the same analytical range queries (reads drawn from a
    finite ``pool`` of distinct ranges, so hot queries genuinely repeat
    and a result cache has something to hit) interleaved with point
    updates trickling in from the transactional side.

    * ``mix`` — fraction of events that are reads (``RangeQuery``); the
      rest are writes (``PointUpdate`` with non-zero delta).
    * ``locality`` — ``"uniform"`` scatters both the query pool and the
      writes uniformly; ``"zipf"`` anchors the pool at ``clusters``
      centres with Zipf-distributed popularity (exponent
      ``zipf_exponent``), ranks the pool itself by Zipf weights (the
      dashboard's top queries dominate), and lands writes near the same
      centres with per-dimension spread ``spread * size``.
    * ``pool`` — number of distinct read queries; ``selectivity`` —
      per-dimension fraction of the cube each pool range spans.

    The result is a list (not a generator) so a benchmark can replay the
    identical stream against several engine configurations.
    """
    shape = normalize_shape(shape)
    if not 0.0 <= mix <= 1.0:
        raise ConfigurationError(f"mix must be within [0, 1], got {mix}")
    if locality not in ("uniform", "zipf"):
        raise ConfigurationError(f"unknown locality {locality!r}")
    if pool < 1:
        raise ConfigurationError(f"pool must be >= 1, got {pool}")
    rng = np.random.default_rng(seed)

    if locality == "zipf":
        clusters = max(1, clusters)
        centres = [
            tuple(int(rng.integers(0, size)) for size in shape)
            for _ in range(clusters)
        ]
        centre_weights = np.array(
            [1.0 / (rank + 1) ** zipf_exponent for rank in range(clusters)]
        )
        centre_weights /= centre_weights.sum()

    def _near_centre() -> Cell:
        centre = centres[int(rng.choice(clusters, p=centre_weights))]
        return tuple(
            int(np.clip(round(rng.normal(c, max(1.0, spread * size))), 0, size - 1))
            for c, size in zip(centre, shape)
        )

    read_pool: list[RangeQuery] = []
    for _ in range(pool):
        anchor = (
            _near_centre()
            if locality == "zipf"
            else tuple(int(rng.integers(0, size)) for size in shape)
        )
        low = []
        high = []
        for position, size in zip(anchor, shape):
            extent = max(1, int(round(selectivity * size)))
            lo = int(np.clip(position - extent // 2, 0, size - extent))
            low.append(lo)
            high.append(lo + extent - 1)
        read_pool.append(RangeQuery(tuple(low), tuple(high)))

    if locality == "zipf":
        pool_weights = np.array(
            [1.0 / (rank + 1) ** zipf_exponent for rank in range(pool)]
        )
        pool_weights /= pool_weights.sum()
    else:
        pool_weights = np.full(pool, 1.0 / pool)

    events: list[RangeQuery | PointUpdate] = []
    for _ in range(count):
        if rng.random() < mix:
            events.append(read_pool[int(rng.choice(pool, p=pool_weights))])
        else:
            cell = (
                _near_centre()
                if locality == "zipf"
                else tuple(int(rng.integers(0, size)) for size in shape)
            )
            delta = 0
            while delta == 0:
                delta = int(rng.integers(-magnitude, magnitude + 1))
            events.append(PointUpdate(cell, delta))
    return events


def straddling_ranges(
    shape: Sequence[int],
    count: int,
    shards: int,
    seed: int = 0,
) -> list[RangeQuery]:
    """Ranges guaranteed to cross at least one shard-slab boundary.

    The adversarial read workload for fault-injection testing: a range
    confined to one slab exercises none of the fan-out machinery, so a
    chaos run over single-shard ranges would under-test exactly the
    paths (multi-shard retry, partial degradation, per-shard deadline
    accounting) it exists to cover.  Boundaries follow the engine's
    ``floor(i·n/K)`` slab rule, so every returned range overlaps at
    least two shards of a K-shard engine over ``shape``.
    """
    shape = normalize_shape(shape)
    leading = shape[0]
    if not 2 <= shards <= leading:
        raise ConfigurationError(
            f"straddling_ranges needs 2 <= shards <= {leading}, got {shards}"
        )
    boundaries = [leading * i // shards for i in range(1, shards)]
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        boundary = int(boundaries[int(rng.integers(0, len(boundaries)))])
        lo0 = int(rng.integers(0, boundary))
        hi0 = int(rng.integers(boundary, leading))
        low = [lo0]
        high = [hi0]
        for size in shape[1:]:
            a = int(rng.integers(0, size))
            b = int(rng.integers(0, size))
            low.append(min(a, b))
            high.append(max(a, b))
        queries.append(RangeQuery(tuple(low), tuple(high)))
    return queries


def interleaved(
    queries: Sequence[RangeQuery],
    updates: Sequence[PointUpdate],
    query_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[RangeQuery | PointUpdate]:
    """Mixed read/write stream with the given read fraction.

    The "what-if" workload of the introduction: analysts interleave
    hypothetical updates with analytical queries and expect both to be
    interactive.
    """
    rng = np.random.default_rng(seed)
    query_iter = iter(queries)
    update_iter = iter(updates)
    pending_queries = len(queries)
    pending_updates = len(updates)
    while pending_queries or pending_updates:
        take_query = pending_queries and (
            not pending_updates or rng.random() < query_fraction
        )
        if take_query:
            yield next(query_iter)
            pending_queries -= 1
        else:
            yield next(update_iter)
            pending_updates -= 1
