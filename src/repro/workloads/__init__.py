"""Synthetic workloads: data generators and query/update streams."""

from .generators import (
    Discovery,
    clustered,
    dense_uniform,
    growth_stream,
    occupancy,
    sparse_uniform,
    zipf_skewed,
)
from .queries import (
    PointUpdate,
    RangeQuery,
    hot_region_updates,
    interleaved,
    prefix_cells,
    query_stream,
    random_ranges,
    random_updates,
    read_write_stream,
    straddling_ranges,
    worst_case_update,
)

__all__ = [
    "dense_uniform",
    "sparse_uniform",
    "clustered",
    "zipf_skewed",
    "growth_stream",
    "Discovery",
    "occupancy",
    "RangeQuery",
    "PointUpdate",
    "random_ranges",
    "prefix_cells",
    "query_stream",
    "random_updates",
    "worst_case_update",
    "hot_region_updates",
    "interleaved",
    "read_write_stream",
    "straddling_ranges",
]
