"""Synthetic data generators exercising the paper's data regimes.

The paper's evaluation is analytic and its motivating datasets (EOSDIS
environmental grids, star catalogs, enterprise sales) are described
qualitatively, so we generate synthetic data with the properties the
arguments rely on:

* dense uniform cubes — the regime PS/RPS were designed for;
* sparse uniform cubes — density ``p`` of populated cells;
* clustered cubes — Gaussian point-source clusters over a mostly empty
  domain (the "methane around industrial centres" picture of Section 5);
* skewed cubes — Zipf-distributed mass, for hot-spot update workloads;
* growth streams — point discoveries drifting in arbitrary directions,
  feeding the :class:`~repro.core.growth.GrowableCube` benchmarks.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry import normalize_shape

__all__ = [
    "dense_uniform",
    "sparse_uniform",
    "clustered",
    "zipf_skewed",
    "Discovery",
    "growth_stream",
    "occupancy",
]


def dense_uniform(
    shape: Sequence[int], low: int = 0, high: int = 100, seed: int = 0
) -> np.ndarray:
    """Dense cube with i.i.d. uniform integer cells in ``[low, high)``."""
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=shape, dtype=np.int64)


def sparse_uniform(
    shape: Sequence[int],
    density: float = 0.01,
    low: int = 1,
    high: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Cube where each cell is populated independently with ``density``."""
    shape = normalize_shape(shape)
    if not 0 <= density <= 1:
        raise ConfigurationError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) < density
    values = rng.integers(low, high, size=shape, dtype=np.int64)
    return np.where(mask, values, 0)


def clustered(
    shape: Sequence[int],
    clusters: int = 5,
    points_per_cluster: int = 200,
    spread: float = 0.03,
    low: int = 1,
    high: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian point-source clusters over an otherwise empty cube.

    Cluster centres are uniform over the domain; member points are
    normal around the centre with standard deviation ``spread`` (as a
    fraction of each dimension), clipped to the domain — the EOSDIS
    regime the paper argues prefix-sum methods handle poorly.
    """
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    cube = np.zeros(shape, dtype=np.int64)
    for _ in range(clusters):
        centre = [rng.uniform(0, size) for size in shape]
        sigma = [max(spread * size, 0.5) for size in shape]
        for _ in range(points_per_cluster):
            cell = tuple(
                int(np.clip(rng.normal(c, s), 0, size - 1))
                for c, s, size in zip(centre, sigma, shape)
            )
            cube[cell] += int(rng.integers(low, high))
    return cube


def zipf_skewed(
    shape: Sequence[int], exponent: float = 1.3, records: int = 5000, seed: int = 0
) -> np.ndarray:
    """Zipf-skewed mass: a few hot cells carry most of the total.

    Cell coordinates are drawn per dimension from a truncated Zipf, so
    the heat concentrates near the origin corner.
    """
    shape = normalize_shape(shape)
    rng = np.random.default_rng(seed)
    cube = np.zeros(shape, dtype=np.int64)
    ranks = [np.arange(1, size + 1, dtype=np.float64) for size in shape]
    probabilities = [r**-exponent / (r**-exponent).sum() for r in ranks]
    for _ in range(records):
        cell = tuple(
            int(rng.choice(size, p=probability))
            for size, probability in zip(shape, probabilities)
        )
        cube[cell] += int(rng.integers(1, 10))
    return cube


@dataclass(frozen=True)
class Discovery:
    """One point arriving in a growth stream."""

    coordinate: tuple[int, ...]
    value: int


def growth_stream(
    dims: int,
    points: int = 1000,
    drift: float = 2.0,
    cluster_jumps: int = 10,
    seed: int = 0,
) -> Iterator[Discovery]:
    """Star-catalog discovery stream wandering in arbitrary directions.

    A random walk emits clustered discoveries around a drifting centre,
    with occasional long jumps to fresh sky regions — including toward
    negative coordinates, exercising growth in *any* direction
    (Section 5).
    """
    rng = np.random.default_rng(seed)
    centre = np.zeros(dims)
    jump_every = max(1, points // max(cluster_jumps, 1))
    for index in range(points):
        if index and index % jump_every == 0:
            centre = centre + rng.uniform(-50 * drift, 50 * drift, size=dims)
        centre = centre + rng.normal(0, drift, size=dims)
        coordinate = tuple(int(round(c + rng.normal(0, drift))) for c in centre)
        yield Discovery(coordinate=coordinate, value=int(rng.integers(1, 20)))


def occupancy(cube: np.ndarray) -> float:
    """Fraction of non-zero cells — the sparsity metric used in reports."""
    return float(np.count_nonzero(cube)) / cube.size
