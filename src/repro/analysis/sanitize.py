"""Sanitized wrappers: re-audit a structure after every mutating op.

``sanitize(tree)`` returns a transparent proxy that forwards every
attribute to the wrapped structure but runs a full :func:`audit` after
each mutating call, raising :class:`~repro.analysis.audit.AuditError`
the instant an invariant breaks.  This is the fuzzing harness's fault
detector: instead of discovering corruption queries later (or never),
the failing *operation* is identified directly.

Audits are deep and materialise dense mirrors, so sanitized structures
belong in tests and fuzz runs, not production traffic.
"""

from __future__ import annotations

from functools import wraps

from .audit import AuditReport, audit

__all__ = ["MUTATORS", "Sanitized", "sanitize"]

#: Method names treated as mutations (audited after each call).
MUTATORS = frozenset(
    {
        "add",
        "set",
        "insert",
        "delete",
        "append",
        "add_many",
        "expand",
        "compact",
        "allocate",
        "free",
        "write",
        "access",
        "clear",
    }
)


class Sanitized:
    """Proxy that audits the wrapped structure after every mutation."""

    def __init__(self, target, mutators: frozenset[str] = MUTATORS) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_mutators", mutators)
        object.__setattr__(self, "audits", 0)

    @property
    def wrapped(self):
        """The underlying structure (escape hatch for read-heavy loops)."""
        return self._target

    def audit(self) -> AuditReport:
        """Run one audit immediately (raises on any violated invariant)."""
        object.__setattr__(self, "audits", self.audits + 1)
        return audit(self._target)

    def __getattr__(self, name: str):
        value = getattr(self._target, name)
        if name in self._mutators and callable(value):

            @wraps(value)
            def checked(*args, **kwargs):
                result = value(*args, **kwargs)
                self.audit()
                return result

            return checked
        return value

    def __setattr__(self, name: str, value) -> None:
        setattr(self._target, name, value)

    def __len__(self) -> int:
        return len(self._target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sanitized({self._target!r}, audits={self.audits})"


def sanitize(structure, mutators: frozenset[str] = MUTATORS) -> Sanitized:
    """Wrap ``structure`` so every mutating call is followed by an audit.

    The structure is audited once up front, so a wrapper over an
    already-corrupt structure fails immediately rather than blaming the
    first operation.
    """
    audit(structure)
    return Sanitized(structure, mutators)
