"""AST-based project-rule linter for the ``repro`` library.

Generic linters cannot know this project's contracts; this pass encodes
them.  Run it over library sources with::

    python -m repro.analysis.lint src/

Rules (suppress a line with ``# noqa: REPxxx``):

* **REP001 raw-exception** — library code must not raise bare
  :class:`ValueError` / :class:`KeyError` / :class:`IndexError`; use the
  :mod:`repro.exceptions` hierarchy (every class there multiply inherits
  the builtin, so callers keep working).
* **REP002 opcounter** — in a class that carries an operation counter
  (``self.stats`` / ``self._counter``), every cell-access method
  (``get``, ``add``, ``prefix_sum``, ...) must charge the counter,
  directly or by delegating to a method that does.  This is the paper's
  cost-model accounting: an uncharged read silently corrupts every
  benchmark built on :class:`~repro.counters.OpCounter`.
* **REP003 mutable-default** — no mutable default argument values.
* **REP004 bare-assert** — no ``assert`` statements in library code;
  asserts vanish under ``python -O`` and must not guard user-facing
  validation.  Raise :class:`~repro.exceptions.StructureError` (internal
  invariants) or a :class:`~repro.exceptions.ConfigurationError`-family
  error (user input) instead.
* **REP005 missing-all** — every public module must define ``__all__``
  so the public surface is explicit.
* **REP006 scalar-loop-batch** — a ``*_many`` batch method inside
  ``src/repro/core/`` or ``src/repro/methods/`` must not loop over its
  own scalar counterpart (``prefix_sum_many`` calling ``prefix_sum`` in
  a ``for``): the batch engine's whole point is shared work, and a
  hidden scalar loop silently forfeits it while looking batched.  The
  base-class defaults in ``methods/base.py`` are the sanctioned
  fallback and are exempt, and so is any loop lexically inside an
  ``if not self._use_batch_path(...):`` branch — that guard is the
  adaptive-crossover contract choosing the scalar path deliberately.
  Fallbacks taken through any other condition carry an explanatory
  ``noqa``.
* **REP007 unguarded-engine-state** — inside ``src/repro/engine/``, the
  shared mutable serving state (the ``_epochs`` list, the ``_cache``,
  and the ``_breakers`` circuit-breaker list) must only be mutated —
  assigned, aug-assigned, deleted, or driven through a method call like
  ``.put()`` / ``.get()`` / ``.clear()`` / ``.record_failure()``,
  including through a subscript (``self._breakers[i].allow(...)``) —
  lexically inside a ``with ..._lock:`` block, or inside a helper whose
  name starts with ``_locked_`` (documented as called with the lock
  held), or in ``__init__`` (construction precedes sharing).  Writes
  driven through a local alias (``c = self._cache; c[key] = value``)
  count as mutations of the aliased attribute.  An unguarded mutation
  is a data race with the executor's reader threads and can serve a
  stale cached sum or a torn breaker state; plain attribute reads
  (``.capacity``, iteration) are not flagged.  This is a fast lexical
  pre-pass: when the CFG/dataflow analyzer (``repro analyze``) runs in
  the same gate, pass ``defer_to_flow=True`` and its path-sensitive
  REP009 supersedes it.
* **REP008 direct-clock** — hot-path modules (``src/repro/core/``,
  ``src/repro/methods/``, ``src/repro/engine/``, plus
  ``src/repro/obs/remote.py``, which runs inside pool workers) must
  not call
  ``time.time`` / ``time.perf_counter`` / ``time.monotonic`` (or their
  ``_ns`` variants) or ``time.sleep`` directly; all timestamps and
  sleeps flow through the injected observability clock
  (:mod:`repro.obs.clock`).  A direct clock read bypasses the
  :class:`~repro.obs.clock.ManualClock` the tests inject and silently
  re-introduces timing cost on paths that are supposed to be free when
  observability is disabled; a direct sleep (retry backoff, injected
  latency) would turn every deterministic virtual-time chaos test into
  a real-time one.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "LintFinding",
    "RULES",
    "lint_source",
    "lint_paths",
    "main",
]

#: Builtin exceptions that library code must wrap in the repro hierarchy.
_RAW_EXCEPTIONS = frozenset({"ValueError", "KeyError", "IndexError"})

#: Attribute names under which structures hold their OpCounter.
_COUNTER_ATTRS = frozenset({"stats", "_counter"})

#: Methods that, per the cost model, read or write stored cells.
_CHARGED_METHODS = frozenset(
    {
        "get",
        "set",
        "add",
        "add_many",
        "insert",
        "delete",
        "append",
        "prefix_sum",
        "prefix_sum_many",
        "range_sum",
        "range_sum_many",
        "apply_delta",
        "apply_delta_many",
        "row_value",
        "row_value_many",
        "subtotal",
    }
)

RULES = {
    "REP001": "raw builtin exception raised from library code",
    "REP002": "cell-access method does not charge the operation counter",
    "REP003": "mutable default argument",
    "REP004": "assert statement in library code",
    "REP005": "public module does not define __all__",
    "REP006": "*_many batch method loops over its own scalar operation",
    "REP007": "shared engine state mutated outside the epoch/lock helpers",
    "REP008": "hot-path module reads the wall clock directly",
}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _suppressed(source_lines: Sequence[str], line: int, rule: str) -> bool:
    """True when the flagged line carries a matching ``noqa`` pragma."""
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    marker = text.rfind("# noqa")
    if marker == -1:
        return False
    pragma = text[marker + len("# noqa") :].strip()
    if not pragma.startswith(":"):
        return True  # blanket noqa
    return rule in pragma[1:].replace(",", " ").split()


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------


def _check_raw_exceptions(tree: ast.Module) -> Iterable[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _RAW_EXCEPTIONS:
            yield (
                node.lineno,
                "REP001",
                f"raise {name} — use the repro.exceptions hierarchy "
                f"(e.g. ConfigurationError, InvalidShapeError)",
            )


def _check_mutable_defaults(tree: ast.Module) -> Iterable[tuple[int, str, str]]:
    mutable_calls = frozenset({"list", "dict", "set", "bytearray", "OrderedDict"})
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_calls
            )
            if bad:
                yield (
                    default.lineno,
                    "REP003",
                    f"mutable default in {node.name}() — default to None "
                    f"and allocate inside the body",
                )


def _check_asserts(tree: ast.Module) -> Iterable[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            yield (
                node.lineno,
                "REP004",
                "assert vanishes under -O; raise StructureError or a "
                "ConfigurationError-family exception",
            )


def _check_module_all(
    tree: ast.Module, module_path: Path
) -> Iterable[tuple[int, str, str]]:
    name = module_path.name
    if name.startswith("_") and name != "__init__.py":
        return
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return
    yield (1, "REP005", f"module {name} must define __all__")


# -- REP002: OpCounter accounting --------------------------------------


def _self_attr(node: ast.AST) -> str | None:
    """Attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _MethodFacts:
    lineno: int
    touches_counter: bool
    self_calls: set[str]
    trivial: bool
    abstract: bool


def _method_facts(method: ast.FunctionDef) -> _MethodFacts:
    touches = False
    self_calls: set[str] = set()
    for node in ast.walk(method):
        attr = _self_attr(node)
        if attr in _COUNTER_ATTRS:
            touches = True
        if isinstance(node, ast.Call):
            call_attr = _self_attr(node.func)
            if call_attr is not None:
                self_calls.add(call_attr)

    abstract = any(
        (isinstance(d, ast.Name) and d.id == "abstractmethod")
        or (isinstance(d, ast.Attribute) and d.attr == "abstractmethod")
        for d in method.decorator_list
    )
    body = method.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # drop docstring
    trivial = all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        or (
            isinstance(stmt, ast.Raise)
            and isinstance(stmt.exc, (ast.Call, ast.Name))
            and "NotImplementedError"
            in ast.dump(stmt.exc)
        )
        for stmt in body
    ) or not body
    return _MethodFacts(method.lineno, touches, self_calls, trivial, abstract)


def _check_opcounter(tree: ast.Module) -> Iterable[tuple[int, str, str]]:
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        methods = {
            stmt.name: _method_facts(stmt)
            for stmt in class_node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if not any(facts.touches_counter for facts in methods.values()):
            continue  # class does not carry an operation counter

        resolved: dict[str, bool] = {}

        def charges(name: str, trail: frozenset[str]) -> bool:
            if name not in methods:
                return True  # inherited / dynamic: subclass's concern
            if name in resolved:
                return resolved[name]
            if name in trail:
                return False  # recursion without ever touching the counter
            facts = methods[name]
            if facts.abstract or facts.trivial:
                result = True
            elif facts.touches_counter:
                result = True
            else:
                result = any(
                    charges(call, trail | {name}) for call in facts.self_calls
                )
            resolved[name] = result
            return result

        for name in sorted(_CHARGED_METHODS & set(methods)):
            facts = methods[name]
            if facts.abstract or facts.trivial:
                continue
            if not charges(name, frozenset()):
                yield (
                    facts.lineno,
                    "REP002",
                    f"{class_node.name}.{name}() reads/writes stored cells "
                    f"but never charges self.stats / self._counter",
                )


# -- REP006: batch methods must not hide scalar loops -------------------

#: Loop-like AST nodes a scalar call may hide inside.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.GeneratorExp,
    ast.DictComp,
)


def _is_crossover_guard(test: ast.expr) -> bool:
    """True when an ``if`` test consults the adaptive batch crossover.

    ``if not self._use_batch_path(count): <scalar loop>`` is the
    documented fallback contract (see ``methods/base.py``): the guard
    *is* the evidence the scalar loop was chosen deliberately, so REP006
    sanctions any loop lexically inside that branch.
    """
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and (
            _self_attr(node.func) == "_use_batch_path"
        ):
            return True
    return False


def _crossover_fallback_loops(method: ast.FunctionDef) -> set[int]:
    """ids of loop nodes inside ``not self._use_batch_path`` branches."""
    sanctioned: set[int] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.If) or not _is_crossover_guard(node.test):
            continue
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, _LOOP_NODES):
                    sanctioned.add(id(sub))
    return sanctioned


def _check_batch_loops(
    tree: ast.Module, module_path: Path
) -> Iterable[tuple[int, str, str]]:
    parts = module_path.parts
    if "core" not in parts and "methods" not in parts:
        return
    if module_path.name == "base.py" and "methods" in parts:
        return  # the sanctioned scalar-loop defaults live here
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for method in class_node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if not method.name.endswith("_many"):
                continue
            scalar = method.name[: -len("_many")]
            sanctioned = _crossover_fallback_loops(method)
            for loop in ast.walk(method):
                if not isinstance(loop, _LOOP_NODES):
                    continue
                if id(loop) in sanctioned:
                    continue
                flagged = False
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Call)
                        and _self_attr(node.func) == scalar
                    ):
                        yield (
                            node.lineno,
                            "REP006",
                            f"{class_node.name}.{method.name}() loops over "
                            f"self.{scalar}() — batch methods must share "
                            f"work, not hide a scalar loop",
                        )
                        flagged = True
                        break
                if flagged:
                    break


# -- REP007: engine shared state only mutates under the lock ------------

#: Attributes holding the engine's shared mutable serving state.  The
#: process-pool entries (``_lanes``: worker/pipe lanes, each guarded by
#: its per-lane lock) joined the set with the process executor.
_GUARDED_ATTRS = frozenset({"_epochs", "_cache", "_breakers", "_lanes"})

#: Function names allowed to touch guarded state without a lexical lock:
#: construction (nothing is shared yet) and helpers whose naming contract
#: says "caller holds the lock".
_LOCK_EXEMPT_PREFIXES = ("_locked_",)


def _guarded_attr(node: ast.AST) -> str | None:
    """Attribute name when ``node`` is ``<expr>.<guarded attr>``."""
    if isinstance(node, ast.Attribute) and node.attr in _GUARDED_ATTRS:
        return node.attr
    return None


def _is_lock_with(node: ast.With) -> bool:
    """True for ``with <expr>._lock:`` (or any ``*_lock`` attribute)."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Attribute) and expr.attr.endswith("_lock"):
            return True
        if isinstance(expr, ast.Name) and expr.id.endswith("_lock"):
            return True
    return False


def _access_root(node: ast.AST) -> ast.AST:
    """Root expression of a subscript/attribute/star access chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node


def _collect_aliases(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Local names bound to a guarded attribute (``c = self._cache``).

    Lexical, not flow-sensitive: one pre-pass sweep over the function.
    The flow analyzer's REP009 redoes this with real must-alias
    tracking; this keeps the fast pre-pass from missing the plain
    alias-then-mutate spelling entirely.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(function):
        if not isinstance(node, ast.Assign):
            continue
        attr = _guarded_attr(node.value)
        if attr is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = attr
    return aliases


def _iter_state_mutations(
    node: ast.AST, aliases: dict[str, str] | None = None
) -> Iterable[tuple[int, str]]:
    """Yield ``(lineno, description)`` for guarded-state mutations in node.

    A *mutation* is an assignment / aug-assignment / deletion whose
    target involves a guarded attribute (``self._epochs[i] += 1``,
    ``self._cache = ...``), or a method call driven through one
    (``self._cache.put(...)`` — the LRU reorders on ``get`` too, so all
    guarded-object method calls count).  With ``aliases``, writes driven
    through a local alias of a guarded attribute (``c = self._cache;
    c[key] = value`` / ``c.put(...)``) count too.  Plain loads and bare
    rebinds of the alias name itself are not mutations.
    """
    aliases = aliases or {}
    targets: list[ast.AST] = []
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        reported = False
        for sub in ast.walk(target):
            attr = _guarded_attr(sub)
            if attr is not None:
                yield (node.lineno, f"assignment to {attr}")
                reported = True
                break
        if reported:
            continue
        root = _access_root(target)
        if (
            root is not target  # bare `c = ...` rebinds, doesn't mutate
            and isinstance(root, ast.Name)
            and root.id in aliases
        ):
            yield (
                node.lineno,
                f"assignment through alias {root.id!r} of {aliases[root.id]}",
            )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        # See through one subscript so an element-wise drive like
        # ``self._breakers[i].record_failure(...)`` is still guarded.
        if isinstance(receiver, ast.Subscript):
            receiver = receiver.value
        attr = _guarded_attr(receiver)
        if attr is not None:
            yield (node.lineno, f"{attr}.{node.func.attr}() call")
        elif isinstance(receiver, ast.Name) and receiver.id in aliases:
            yield (
                node.lineno,
                f"{receiver.id}.{node.func.attr}() call through an alias "
                f"of {aliases[receiver.id]}",
            )


def _check_engine_state(
    tree: ast.Module, module_path: Path
) -> Iterable[tuple[int, str, str]]:
    if "engine" not in module_path.parts:
        return
    for function in ast.walk(tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if function.name == "__init__" or function.name.startswith(
            _LOCK_EXEMPT_PREFIXES
        ):
            continue
        locked_lines: set[int] = set()
        for with_node in ast.walk(function):
            if isinstance(with_node, ast.With) and _is_lock_with(with_node):
                for inner in ast.walk(with_node):
                    if hasattr(inner, "lineno"):
                        locked_lines.add(id(inner))
        aliases = _collect_aliases(function)
        for node in ast.walk(function):
            if id(node) in locked_lines:
                continue
            for line, description in _iter_state_mutations(node, aliases):
                yield (
                    line,
                    "REP007",
                    f"{description} in {function.name}() outside "
                    f"'with ..._lock:' — shared engine state must only "
                    f"mutate under the lock or in a _locked_* helper",
                )


# -- REP008: hot paths read time only through the injected clock ---------

#: Wall/monotonic clock readers that hot-path modules must not call.
_CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: Directory names marking the instrumented hot paths.
_HOT_PATH_DIRS = frozenset({"core", "methods", "engine"})

#: Individual observability modules that are themselves on the hot path.
#: ``obs/remote.py`` runs inside pool workers (the shared-memory metric
#: shard writes on every op), so its timestamps must flow through the
#: injected clock exactly like engine code.
_HOT_PATH_FILES = frozenset({("obs", "remote.py")})


def _on_hot_path(module_path: Path) -> bool:
    if _HOT_PATH_DIRS & set(module_path.parts):
        return True
    parts = module_path.parts
    return any(
        len(parts) >= len(suffix) and tuple(parts[-len(suffix):]) == suffix
        for suffix in _HOT_PATH_FILES
    )


def _check_direct_clock(
    tree: ast.Module, module_path: Path
) -> Iterable[tuple[int, str, str]]:
    if not _on_hot_path(module_path):
        return
    imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCTIONS:
                    imported.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        called = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _CLOCK_FUNCTIONS
        ):
            called = f"time.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in imported:
            called = func.id
        if called is not None:
            yield (
                node.lineno,
                "REP008",
                f"{called}() in a hot-path module — read time through "
                f"the injected observability clock (repro.obs.clock)",
            )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def lint_source(
    source: str, path: str | Path, *, defer_to_flow: bool = False
) -> list[LintFinding]:
    """Lint one module's source text; returns sorted findings.

    ``defer_to_flow=True`` drops the REP007 engine-state pre-pass: when
    the CFG/dataflow analyzer (:mod:`repro.analysis.flow`) runs in the
    same gate, its path-sensitive REP009 supersedes the lexical check —
    reporting both would double-flag every genuine site.
    """
    module_path = Path(path)
    try:
        tree = ast.parse(source, filename=str(module_path))
    except SyntaxError as error:
        return [
            LintFinding(
                str(module_path),
                error.lineno or 1,
                "REP000",
                f"syntax error: {error.msg}",
            )
        ]
    source_lines = source.splitlines()
    findings: list[LintFinding] = []
    checks = [
        _check_raw_exceptions(tree),
        _check_mutable_defaults(tree),
        _check_asserts(tree),
        _check_module_all(tree, module_path),
        _check_opcounter(tree),
        _check_batch_loops(tree, module_path),
        _check_direct_clock(tree, module_path),
    ]
    if not defer_to_flow:
        checks.append(_check_engine_state(tree, module_path))
    for check in checks:
        for line, rule, message in check:
            if not _suppressed(source_lines, line, rule):
                findings.append(LintFinding(str(module_path), line, rule, message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str | Path], *, defer_to_flow: bool = False
) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    The result is globally sorted by ``(path, line, rule)`` — not just
    per-file — so output order is stable regardless of how the input
    paths were spelled (``src/`` vs an explicit file list).
    """
    findings: list[LintFinding] = []
    for module_path in _iter_python_files(paths):
        findings.extend(
            lint_source(
                module_path.read_text(),
                module_path,
                defer_to_flow=defer_to_flow,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print findings, return 1 when any exist."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or "-h" in arguments or "--help" in arguments:
        print(__doc__)
        print("usage: python -m repro.analysis.lint PATH [PATH ...]")
        return 0 if arguments else 2
    missing = [entry for entry in arguments if not Path(entry).exists()]
    if missing:
        # A typo'd path must not report "clean" — that would let a
        # misconfigured CI job pass without checking anything.
        for entry in missing:
            print(f"repro-lint: no such path: {entry}", file=sys.stderr)
        return 2
    findings = lint_paths(arguments)
    for finding in findings:
        print(finding)
    checked = sum(1 for _ in _iter_python_files(arguments))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro-lint: {checked} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
