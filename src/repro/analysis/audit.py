"""Structural sanitizer: deep invariant audits with node paths.

Every structure in the library already knows *some* of its invariants
(``validate()`` methods); this module is the uniform, exhaustive entry
point.  :func:`audit` dispatches on the structure's type, re-derives
every cached quantity from first principles — subtree sums from leaf
values, overlay box values from a dense mirror of the covered region,
page free-lists from the bytes on disk — and reports each violation as
a :class:`Finding` carrying a path to the offending node (for example
``root/child[2]/sums[1]`` or ``free[3]``).

Audits materialise dense mirrors of cube contents, so they are meant
for tests, fuzzing, and operator debugging of test-sized cubes — not
for the hot path of a terabyte deployment.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import StructureError

__all__ = ["AuditError", "Finding", "AuditReport", "audit"]

_NO_PAGE = 0xFFFFFFFFFFFFFFFF


class AuditError(StructureError):
    """An audit found at least one violated invariant.

    Subclasses :class:`~repro.exceptions.StructureError` so existing
    ``except StructureError`` handlers catch audit failures too.
    """


@dataclass(frozen=True)
class Finding:
    """One violated invariant at one location inside a structure."""

    path: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of one :func:`audit` pass over one structure."""

    subject: str
    checks: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every evaluated invariant held."""
        return not self.findings

    def fail(self, path: str, message: str) -> None:
        """Record one violated invariant."""
        self.findings.append(Finding(path, message))

    def check(self, condition: bool, path: str, message: str) -> bool:
        """Evaluate one invariant; record a finding when it fails."""
        self.checks += 1
        if not condition:
            self.fail(path, message)
        return bool(condition)

    def merge(self, other: "AuditReport", prefix: str) -> None:
        """Fold a sub-structure's report in under ``prefix``."""
        self.checks += other.checks
        for finding in other.findings:
            self.findings.append(
                Finding(f"{prefix}/{finding.path}", finding.message)
            )

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditError` describing every finding."""
        if self.findings:
            detail = "; ".join(str(f) for f in self.findings[:10])
            more = len(self.findings) - 10
            if more > 0:
                detail += f"; ... and {more} more"
            raise AuditError(
                f"{self.subject} failed {len(self.findings)} of "
                f"{self.checks} checks: {detail}"
            )

    def render(self) -> str:
        """Human-readable summary (used by the ``repro audit`` CLI)."""
        lines = [f"audit of {self.subject}: {self.checks} checks"]
        if self.ok:
            lines.append("all invariants hold")
        for finding in self.findings:
            lines.append(f"FAIL {finding}")
        return "\n".join(lines)


def audit(obj, *, raise_on_failure: bool = True) -> AuditReport:
    """Deep-check every structural invariant of ``obj``.

    Dispatches on the concrete type: B^c trees (rank- and key-addressed),
    overlay boxes, Dynamic Data Cubes (basic, full, growable), the page
    file, the buffer pool, and the disk-resident structures all get a
    dedicated walker; anything else falls back to its ``validate()``
    method.

    Args:
        obj: the structure to audit.
        raise_on_failure: raise :class:`AuditError` (a
            :class:`StructureError`) when any invariant fails; pass
            ``False`` to inspect the report instead.

    Returns:
        The full :class:`AuditReport` (when nothing failed, or when
        ``raise_on_failure`` is false).
    """
    report = AuditReport(subject=type(obj).__name__)
    auditor = _resolve_auditor(obj)
    auditor(obj, report)
    if raise_on_failure:
        report.raise_if_failed()
    return report


def _resolve_auditor(obj):
    # Imports are local so that auditing in-memory structures never pays
    # for (or requires) the disk layer and vice versa.
    from ..core.bc_tree import BcTree
    from ..core.ddc import DynamicDataCube
    from ..core.growth import GrowableCube
    from ..core.keyed_bc_tree import KeyedBcTree
    from ..core.overlay import ArrayOverlay, TreeOverlay
    from ..storage.buffer import BufferPool
    from ..storage.disk_bc_tree import DiskBcTree
    from ..storage.disk_ddc import DiskDynamicDataCube
    from ..storage.pagefile import PageFile

    if isinstance(obj, BcTree):
        return _audit_bc_tree
    if isinstance(obj, KeyedBcTree):
        return _audit_keyed_bc_tree
    if isinstance(obj, GrowableCube):
        return _audit_growable
    if isinstance(obj, DynamicDataCube):
        return _audit_ddc
    if isinstance(obj, (ArrayOverlay, TreeOverlay)):
        return lambda overlay, report: _audit_overlay(
            overlay, report, mirror=None, path="root"
        )
    if isinstance(obj, PageFile):
        return _audit_pagefile
    if isinstance(obj, BufferPool):
        return _audit_buffer_pool
    if isinstance(obj, DiskBcTree):
        return _audit_disk_bc_tree
    if isinstance(obj, DiskDynamicDataCube):
        return _audit_disk_ddc
    return _audit_fallback


def _audit_fallback(obj, report: AuditReport) -> None:
    validate = getattr(obj, "validate", None)
    if validate is None:
        report.fail("root", f"no auditor and no validate() for {type(obj).__name__}")
        return
    report.checks += 1
    try:
        validate()
    except StructureError as error:
        report.fail("root", str(error))


# ----------------------------------------------------------------------
# Rank-addressed B^c tree
# ----------------------------------------------------------------------


def _audit_bc_tree(tree, report: AuditReport) -> None:
    count, total, _ = _walk_bc(tree, tree._root, "root", True, report)
    report.check(
        count == tree._size, "root", f"size cache {tree._size} != actual {count}"
    )
    report.check(
        total == tree._total, "root", f"total cache {tree._total} != actual {total}"
    )


def _walk_bc(tree, node, path: str, is_root: bool, report: AuditReport):
    if not hasattr(node, "children"):  # leaf
        if not is_root:
            report.check(
                len(node.values) >= tree._min_fill, path, "leaf underfull"
            )
        report.check(len(node.values) <= tree.fanout, path, "leaf overfull")
        return len(node.values), sum(node.values), 1

    if not is_root:
        report.check(
            len(node.children) >= tree._min_fill, path, "internal node underfull"
        )
    else:
        report.check(
            len(node.children) >= 2, path, "internal root must have >= 2 children"
        )
    report.check(len(node.children) <= tree.fanout, path, "internal node overfull")
    report.check(
        len(node.children) == len(node.counts) == len(node.sums),
        path,
        "children / counts / sums arrays out of sync",
    )
    total_count = 0
    total_sum = 0
    depths = set()
    for index, child in enumerate(node.children):
        child_path = f"{path}/child[{index}]"
        count, child_sum, depth = _walk_bc(tree, child, child_path, False, report)
        if index < len(node.counts):
            report.check(
                node.counts[index] == count,
                f"{path}/counts[{index}]",
                f"count cache {node.counts[index]} != actual {count}",
            )
        if index < len(node.sums):
            report.check(
                node.sums[index] == child_sum,
                f"{path}/sums[{index}]",
                f"STS cache {node.sums[index]} != actual {child_sum}",
            )
        total_count += count
        total_sum += child_sum
        depths.add(depth)
    report.check(len(depths) == 1, path, "leaves at differing depths")
    return total_count, total_sum, (depths.pop() if depths else 0) + 1


# ----------------------------------------------------------------------
# Key-addressed B^c tree
# ----------------------------------------------------------------------


def _audit_keyed_bc_tree(tree, report: AuditReport) -> None:
    size, total, _, _ = _walk_keyed(tree, tree._root, "root", True, report)
    report.check(
        size == tree._size, "root", f"size cache {tree._size} != actual {size}"
    )
    report.check(
        total == tree._total, "root", f"total cache {tree._total} != actual {total}"
    )
    keys = [key for key, _ in tree.items()]
    report.check(
        all(a < b for a, b in zip(keys, keys[1:])),
        "root",
        "keys not strictly increasing in traversal order",
    )


def _walk_keyed(tree, node, path: str, is_root: bool, report: AuditReport):
    minimum = (tree.fanout + 1) // 2
    if not hasattr(node, "children"):  # leaf
        if not is_root:
            report.check(len(node.keys) >= minimum, path, "leaf underfull")
        report.check(len(node.keys) <= tree.fanout, path, "leaf overfull")
        report.check(
            sorted(set(node.keys)) == node.keys,
            path,
            "leaf keys unsorted or duplicated",
        )
        max_key = node.keys[-1] if node.keys else None
        return len(node.keys), sum(node.values), 1, max_key

    if not is_root:
        report.check(len(node.children) >= minimum, path, "internal node underfull")
    else:
        report.check(
            len(node.children) >= 2, path, "internal root must have >= 2 children"
        )
    report.check(len(node.children) <= tree.fanout, path, "internal node overfull")
    report.check(
        len(node.children) == len(node.max_keys) == len(node.sums),
        path,
        "children / max_keys / sums arrays out of sync",
    )
    total_size = 0
    total_sum = 0
    depths = set()
    for index, child in enumerate(node.children):
        child_path = f"{path}/child[{index}]"
        size, child_sum, depth, child_max = _walk_keyed(
            tree, child, child_path, False, report
        )
        if index < len(node.sums):
            report.check(
                node.sums[index] == child_sum,
                f"{path}/sums[{index}]",
                f"STS cache {node.sums[index]} != actual {child_sum}",
            )
        if index < len(node.max_keys):
            report.check(
                node.max_keys[index] == child_max,
                f"{path}/max_keys[{index}]",
                f"max-key cache {node.max_keys[index]} != actual {child_max}",
            )
        total_size += size
        total_sum += child_sum
        depths.add(depth)
    report.check(len(depths) == 1, path, "leaves at differing depths")
    max_key = node.max_keys[-1] if node.max_keys else None
    return total_size, total_sum, (depths.pop() if depths else 0) + 1, max_key


# ----------------------------------------------------------------------
# Overlay boxes
# ----------------------------------------------------------------------


def _audit_overlay(overlay, report: AuditReport, mirror, path: str) -> None:
    """Check one overlay box, optionally against a dense mirror region.

    ``mirror`` is the dense contents of the region the box covers; when
    given, every row-sum value the box can serve is recomputed from it.
    Without a mirror only the box's internal consistency is checked
    (group totals must equal the subtotal, secondaries must be sound).
    """
    from ..core.overlay import ArrayOverlay

    subtotal = overlay._subtotal
    if mirror is not None:
        report.check(
            subtotal == mirror.sum().item(),
            path,
            f"overlay subtotal {subtotal} != covered cells {mirror.sum().item()}",
        )
    if overlay.dims == 1:
        return

    if isinstance(overlay, ArrayOverlay):
        for axis, group in enumerate(overlay._groups):
            group_path = f"{path}/group[{axis}]"
            top = (-1,) * (overlay.dims - 1)
            report.check(
                group[top].item() == subtotal,
                group_path,
                f"cumulative corner {group[top].item()} != subtotal {subtotal}",
            )
            if mirror is not None:
                expected = mirror.sum(axis=axis)
                for cross_axis in range(expected.ndim):
                    expected = np.cumsum(expected, axis=cross_axis)
                report.check(
                    np.array_equal(group, expected),
                    group_path,
                    "cumulative row-sum array disagrees with covered cells",
                )
        return

    # TreeOverlay: every group summarises *all* covered cells along one
    # axis, so each populated group's total must equal the subtotal.
    for axis, secondary in enumerate(overlay._groups):
        group_path = f"{path}/group[{axis}]"
        if secondary is None:
            # A group may legitimately stay unbuilt when every row sum
            # along its axis is zero — even over non-zero cells that
            # cancel within each row.
            report.check(
                subtotal == 0
                if mirror is None
                else not np.any(mirror.sum(axis=axis)),
                group_path,
                "group missing though its row sums are non-zero",
            )
            continue
        report.check(
            secondary.total() == subtotal,
            group_path,
            f"group total {secondary.total()} != subtotal {subtotal}",
        )
        report.merge(audit(secondary, raise_on_failure=False), group_path)
        if mirror is not None:
            _check_group_rows(overlay, secondary, axis, mirror, group_path, report)


def _check_group_rows(
    overlay, secondary, axis: int, mirror, path: str, report: AuditReport
) -> None:
    """Recompute a group's row sums from the mirror and compare."""
    from ..core.bc_tree import BcTree
    from ..core.ddc import DynamicDataCube
    from ..core.keyed_bc_tree import KeyedBcTree

    rows = mirror.sum(axis=axis)
    if isinstance(secondary, (BcTree, KeyedBcTree)):
        cumulative = 0
        for index, row in enumerate(rows.tolist()):
            cumulative += row
            actual = secondary.prefix_sum(index)
            report.check(
                actual == cumulative,
                f"{path}/row[{index}]",
                f"row-sum value {actual} != recomputed {cumulative}",
            )
        return
    if isinstance(secondary, DynamicDataCube):
        # Recursive (d-1)-dimensional sub-cube: must agree cell-for-cell
        # with the rows it summarises.
        report.check(
            np.array_equal(secondary.to_dense(), rows),
            path,
            "recursive sub-cube disagrees with the row sums it summarises",
        )
        return
    # Fenwick (or any other RangeSumMethod) secondary.
    report.check(
        np.array_equal(np.asarray(secondary.to_dense()), rows),
        path,
        "group secondary disagrees with the row sums it summarises",
    )


# ----------------------------------------------------------------------
# Dynamic Data Cube (in memory)
# ----------------------------------------------------------------------


def _audit_ddc(cube, report: AuditReport) -> None:
    padded = np.zeros((cube._capacity,) * cube.dims, dtype=cube.dtype)
    cube._fill_dense(cube._root, (0,) * cube.dims, cube._capacity, padded)
    report.check(
        padded.sum().item() == cube._total,
        "root",
        f"total cache {cube._total} != cell sum {padded.sum().item()}",
    )
    _walk_ddc(cube, cube._root, (0,) * cube.dims, cube._capacity, "root", padded, report)


def _walk_ddc(cube, node, anchor, side, path, padded, report: AuditReport) -> None:
    if node is None:
        return
    if not _is_ddc_node(node):
        report.check(
            node.shape == (side,) * cube.dims,
            path,
            f"leaf block shape {node.shape} != expected {(side,) * cube.dims}",
        )
        return
    half = side // 2
    for mask in range(cube._fan):
        box_path = f"{path}/box[{mask}]"
        child_anchor = cube._child_anchor(anchor, mask, half)
        region = tuple(slice(a, a + half) for a in child_anchor)
        dense = padded[region]
        overlay = node.overlays[mask]
        if overlay is None:
            report.check(
                not np.any(dense),
                box_path,
                "overlay missing for a non-zero box",
            )
        else:
            _audit_overlay(overlay, report, mirror=dense, path=box_path)
        child = node.children[mask]
        if child is None:
            report.check(
                not np.any(dense), box_path, "child missing for a non-zero box"
            )
            continue
        _walk_ddc(cube, child, child_anchor, half, box_path, padded, report)


def _is_ddc_node(node) -> bool:
    return hasattr(node, "overlays")


def _audit_growable(cube, report: AuditReport) -> None:
    bounds = cube.bounds
    if bounds is not None:
        low, high = bounds
        report.check(cube._anchored, "root", "bounds tracked but cube not anchored")
        for axis in range(cube.dims):
            report.check(
                low[axis] <= high[axis],
                f"root/bounds[{axis}]",
                f"low bound {low[axis]} above high bound {high[axis]}",
            )
            report.check(
                cube._origin[axis] <= low[axis]
                and high[axis] < cube._origin[axis] + cube.side,
                f"root/bounds[{axis}]",
                f"bounds [{low[axis]}, {high[axis]}] escape the domain "
                f"[{cube._origin[axis]}, {cube._origin[axis] + cube.side})",
            )
    report.merge(audit(cube._cube, raise_on_failure=False), "root/cube")


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------


def _audit_pagefile(pages, report: AuditReport) -> None:
    if pages._handle.closed:
        report.fail("root", "backing file handle is closed")
        return
    pages.flush()
    size = os.path.getsize(pages.path)
    report.check(
        size >= (pages.page_count + 1) * pages.page_size,
        "root",
        f"file size {size} below {(pages.page_count + 1)} pages of "
        f"{pages.page_size} bytes",
    )
    # Re-read the header from disk and compare with the live state.
    pages._handle.seek(0)
    raw = pages._handle.read(pages.page_size)
    header = struct.Struct("<8sIQQ")
    if not report.check(len(raw) >= header.size, "root", "truncated header"):
        return
    magic, page_size, page_count, free_head = header.unpack(raw[: header.size])
    report.check(magic == b"DDCPGF01", "root", f"bad magic {magic!r}")
    report.check(
        page_size == pages.page_size,
        "root",
        f"header page size {page_size} != live {pages.page_size}",
    )
    report.check(
        page_count == pages.page_count,
        "root",
        f"header page count {page_count} != live {pages.page_count}",
    )
    report.check(
        free_head == pages._free_head,
        "root",
        f"header free head {free_head} != live {pages._free_head}",
    )
    # Walk the free list: every entry in range, no cycles.
    seen: set[int] = set()
    current = pages._free_head
    position = 0
    while current != _NO_PAGE:
        link_path = f"free[{position}]"
        if not report.check(
            0 <= current < pages.page_count,
            link_path,
            f"free-list entry {current} out of range "
            f"(page count {pages.page_count})",
        ):
            return
        if not report.check(
            current not in seen, link_path, f"free-list cycle at page {current}"
        ):
            return
        seen.add(current)
        raw = pages._read_raw(current)
        (current,) = struct.unpack_from("<Q", raw, 0)
        position += 1


def _audit_buffer_pool(pool, report: AuditReport) -> None:
    stats = pool.stats
    report.check(
        pool.resident_pages <= pool.capacity,
        "root",
        f"{pool.resident_pages} resident pages exceed capacity {pool.capacity}",
    )
    report.check(
        stats.hits + stats.misses == stats.accesses,
        "root/stats",
        f"hits {stats.hits} + misses {stats.misses} != accesses {stats.accesses}",
    )
    report.check(
        stats.evictions <= stats.misses,
        "root/stats",
        f"evictions {stats.evictions} exceed misses {stats.misses}",
    )
    assigned = set(pool._page_of_object.values())
    report.check(
        set(pool._pages).issubset(assigned),
        "root",
        "resident pages not drawn from the assigned page ids",
    )
    if pool._page_of_object:
        highest = (pool._next_page - 1) // pool.objects_per_page
        report.check(
            max(assigned) <= highest,
            "root",
            f"assigned page id {max(assigned)} beyond allocation cursor {highest}",
        )


def _audit_disk_bc_tree(tree, report: AuditReport) -> None:
    tree.flush()
    size, total, _, _ = _walk_disk_bc(tree, tree._root_page, "root", True, report)
    report.check(
        size == tree._size, "root", f"size cache {tree._size} != actual {size}"
    )
    report.check(
        abs(total - tree._total) <= 1e-9,
        "root",
        f"total cache {tree._total} != actual {total}",
    )


def _walk_disk_bc(tree, page_id: int, path: str, is_root: bool, report: AuditReport):
    payload = tree._pages.read(page_id)
    node = tree._decode(page_id, payload)
    report.check(
        tree._encode(node) == payload,
        path,
        f"page {page_id} does not round-trip through the node codec",
    )
    minimum = (tree.fanout + 1) // 2
    if node.leaf:
        if not is_root:
            report.check(len(node.keys) >= minimum, path, "leaf underfull")
        report.check(
            sorted(set(node.keys)) == node.keys,
            path,
            "leaf keys unsorted or duplicated",
        )
        max_key = node.keys[-1] if node.keys else None
        return len(node.keys), sum(node.values), 1, max_key
    if not is_root:
        report.check(len(node.children) >= minimum, path, "internal node underfull")
    total_size = 0
    total_sum = 0
    depths = set()
    for index, child in enumerate(node.children):
        child_path = f"{path}/child[{index}]"
        size, child_sum, depth, child_max = _walk_disk_bc(
            tree, child, child_path, False, report
        )
        report.check(
            child_max == node.keys[index],
            f"{path}/keys[{index}]",
            f"max-key cache {node.keys[index]} != actual {child_max}",
        )
        report.check(
            abs(child_sum - node.sums[index]) <= 1e-9,
            f"{path}/sums[{index}]",
            f"STS cache {node.sums[index]} != actual {child_sum}",
        )
        total_size += size
        total_sum += child_sum
        depths.add(depth)
    report.check(len(depths) == 1, path, "leaves at differing depths")
    max_key = node.keys[-1] if node.keys else None
    return total_size, total_sum, (depths.pop() if depths else 0) + 1, max_key


def _audit_disk_ddc(cube, report: AuditReport) -> None:
    cube.flush()
    if cube._root_page == _NO_PAGE:
        report.check(cube._total == 0, "root", "total non-zero with no root page")
        return
    total = _walk_disk_ddc(cube, cube._root_page, cube._capacity, "root", report)
    report.check(
        abs(total - cube._total) <= 1e-9,
        "root",
        f"total cache {cube._total} != recomputed {total}",
    )


def _walk_disk_ddc(cube, page_id: int, side: int, path: str, report: AuditReport):
    payload = cube._pages.read(page_id)
    item = cube._decode(page_id, payload)
    report.check(
        cube._write_back_bytes(item) == payload,
        path,
        f"page {page_id} does not round-trip through the node codec",
    )
    if not hasattr(item, "children"):  # leaf block
        report.check(
            len(item.values) == cube.leaf_side**cube.dims,
            path,
            f"leaf block holds {len(item.values)} values, expected "
            f"{cube.leaf_side ** cube.dims}",
        )
        return sum(item.values)

    half = side // 2
    total = 0.0 if cube._format == "d" else 0
    for mask in range(cube._fan):
        box_path = f"{path}/box[{mask}]"
        child_page = item.children[mask]
        subtotal = item.subtotals[mask]
        if child_page == _NO_PAGE:
            report.check(
                subtotal == 0,
                box_path,
                f"subtotal {subtotal} cached for a missing child",
            )
            continue
        child_sum = _walk_disk_ddc(cube, child_page, half, box_path, report)
        report.check(
            abs(child_sum - subtotal) <= 1e-9,
            box_path,
            f"overlay subtotal {subtotal} != child subtree sum {child_sum}",
        )
        for axis in range(cube.dims if cube.dims > 1 else 0):
            group_page = item.groups[mask][axis]
            group_path = f"{box_path}/group[{axis}]"
            if group_page == _NO_PAGE:
                report.check(
                    subtotal == 0, group_path, "group missing for a non-empty box"
                )
                continue
            tree = cube._open_group(group_page)
            report.check(
                abs(tree.total() - subtotal) <= 1e-9,
                group_path,
                f"group total {tree.total()} != subtotal {subtotal}",
            )
            report.merge(audit(tree, raise_on_failure=False), group_path)
        total += child_sum
    return total
