"""Correctness tooling: structural sanitizer and project-rule linter.

The Dynamic Data Cube's correctness rests on invariants the paper states
but running code can silently drift away from: every B^c-tree node's
subtree sums must equal the sum of its children, overlay box values must
equal the row sums they cache, recursive sub-cubes must agree with the
cells they summarise, and the disk layer's free list and caches must
stay coherent.  This package is the sanitizer + lint layer that checks
all of it:

* :func:`~repro.analysis.audit.audit` — a uniform deep-checker over
  every structure in the library, producing an :class:`AuditReport`
  whose findings carry a *path* to the offending node;
* :func:`~repro.analysis.sanitize.sanitize` — a wrapper that re-audits
  a structure after every mutating operation (for tests and fuzzing);
* :mod:`repro.analysis.lint` — an AST-based project-rule linter
  (REP001–REP008), runnable as ``python -m repro.analysis.lint src/``;
* :mod:`repro.analysis.flow` — CFG/dataflow analyses (REP009–REP012:
  unguarded shared-state writes, lock-order cycles, escaping
  exceptions, hot-path allocations), runnable as ``repro analyze``;
* :mod:`repro.analysis.raceguard` — the runtime
  :class:`~repro.analysis.raceguard.LockSanitizer`, the dynamic twin of
  REP009/REP010 for tests and ``repro chaos --sanitize``.
"""

from __future__ import annotations

from .audit import AuditError, AuditReport, Finding, audit
from .sanitize import Sanitized, sanitize


def __getattr__(name: str):
    # Lazy so that `python -m repro.analysis.lint` (and `... .flow`) do
    # not import the submodule twice (runpy warns when the package
    # eagerly imports it), and so importing the audit layer does not
    # drag in the analyzer.
    if name in ("LintFinding", "lint_paths"):
        from . import lint

        return getattr(lint, name)
    if name in ("FlowFinding", "analyze_paths"):
        from . import flow

        return getattr(flow, name)
    if name in ("LockSanitizer", "attach_engine"):
        from . import raceguard

        return getattr(raceguard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AuditError",
    "AuditReport",
    "Finding",
    "audit",
    "LintFinding",
    "lint_paths",
    "FlowFinding",
    "analyze_paths",
    "LockSanitizer",
    "attach_engine",
    "Sanitized",
    "sanitize",
]
