"""Runtime lock sanitizer: the dynamic twin of the REP009/REP010 rules.

The static analyses in :mod:`repro.analysis.flow` prove properties about
paths the checker can see; :class:`LockSanitizer` checks the paths a run
*actually takes*.  It is a test/chaos instrument — production code never
constructs one — with three moving parts:

* :class:`SanitizedLock` — a drop-in wrapper around a
  ``threading.Lock``/``RLock`` that keeps per-thread held sets and a
  global lock-acquisition-order graph.  Acquiring ``b`` while holding
  ``a`` records the edge ``a -> b``; a later attempt to acquire ``a``
  while holding ``b`` is a latent ABBA deadlock and raises
  :class:`~repro.exceptions.LockOrderViolationError` *before* touching
  the underlying lock (so the sanitizer reports the inversion instead of
  deadlocking the test run).
* :class:`GuardedList` / :class:`GuardedObject` — proxies around
  registered shared objects that verify the guarding lock is held by the
  mutating thread, raising
  :class:`~repro.exceptions.UnguardedMutationError` otherwise.  This is
  the runtime analogue of REP009's "shared attribute written with empty
  lock set".
* :func:`attach_engine` — wires all of the above onto a live
  :class:`~repro.engine.engine.ShardedEngine`: its ``_lock`` becomes a
  :class:`SanitizedLock` and ``_epochs`` / ``_cache`` / ``_breakers``
  become guarded proxies.

Every acquisition, release, and violation is stamped on the injected
:mod:`repro.obs` clock (never ``time.monotonic()`` directly — REP008),
so chaos runs with a :class:`~repro.obs.clock.ManualClock` stay
deterministic and replayable.  With ``strict=False`` the sanitizer
records violations in :attr:`LockSanitizer.violations` instead of
raising, which is how ``repro chaos --sanitize`` accumulates a report
before exiting 2.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..exceptions import (
    LockOrderViolationError,
    RaceGuardError,
    UnguardedMutationError,
)
from ..obs.clock import MonotonicClock

__all__ = [
    "LockEvent",
    "LockSanitizer",
    "SanitizedLock",
    "GuardedList",
    "GuardedObject",
    "attach_engine",
]

#: Method names treated as mutations on a :class:`GuardedObject`.
_MUTATOR_METHODS = frozenset(
    {
        "__setitem__",
        "__delitem__",
        "__iadd__",
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "put",
        "get",  # EpochLruCache.get mutates LRU order + invalidation books
    }
)


@dataclass(frozen=True)
class LockEvent:
    """One acquisition/release/violation, stamped on the obs clock."""

    timestamp: float
    thread: str
    kind: str  # "acquire" | "release" | "violation"
    detail: str


class LockSanitizer:
    """Record lock discipline at runtime; raise (or log) violations.

    ``strict=True`` (the default, used by the test fixture) raises on
    the offending thread at the violation site.  ``strict=False`` (used
    by ``repro chaos --sanitize``) records
    :class:`~repro.exceptions.RaceGuardError` instances in
    :attr:`violations` so a soak can finish and report everything.
    """

    def __init__(self, clock: Any = None, *, strict: bool = True) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.strict = strict
        #: The sanitizer's own books are guarded by a private lock that
        #: is never visible to the code under test.
        self._books = threading.Lock()
        #: thread ident -> {lock name: reentrancy count}, insertion
        #: ordered so the held *sequence* is recoverable.
        self._held: dict[int, dict[str, int]] = {}
        #: (outer, inner) -> thread name that first recorded the edge.
        self._order: dict[tuple[str, str], str] = {}
        self.events: list[LockEvent] = []
        self.violations: list[RaceGuardError] = []

    # -- bookkeeping ---------------------------------------------------

    def _record(self, kind: str, detail: str) -> None:
        self.events.append(
            LockEvent(
                self.clock.now(), threading.current_thread().name, kind, detail
            )
        )

    def _violation(self, error: RaceGuardError) -> None:
        self._record("violation", str(error))
        self.violations.append(error)
        if self.strict:
            raise error

    def held_by_current_thread(self) -> tuple[str, ...]:
        """Lock names the calling thread holds, in acquisition order."""
        with self._books:
            return tuple(self._held.get(threading.get_ident(), {}))

    def holds(self, name: str) -> bool:
        """Does the calling thread hold the lock called ``name``?"""
        with self._books:
            return name in self._held.get(threading.get_ident(), {})

    # -- lock wrapping -------------------------------------------------

    def wrap(self, lock: Any, name: str) -> "SanitizedLock":
        """Wrap ``lock`` so its use is recorded under ``name``."""
        return SanitizedLock(self, lock, name)

    def _before_acquire(self, name: str) -> None:
        """Order check — runs *before* the real acquire so an inversion
        raises instead of deadlocking the run."""
        ident = threading.get_ident()
        inversion: tuple[str, str] | None = None
        with self._books:
            held = self._held.setdefault(ident, {})
            if name in held:  # reentrant: no new edges
                return
            for outer in held:
                if (name, outer) in self._order:
                    inversion = (outer, name)
                    break
            else:
                for outer in held:
                    self._order.setdefault((outer, name), threading.current_thread().name)
        if inversion is not None:
            outer, inner = inversion
            first_thread = self._order[(inner, outer)]
            self._violation(
                LockOrderViolationError(
                    f"acquiring {inner!r} while holding {outer!r} inverts "
                    f"the {inner!r} -> {outer!r} order first recorded on "
                    f"thread {first_thread!r} — latent ABBA deadlock"
                )
            )

    def _after_acquire(self, name: str) -> None:
        ident = threading.get_ident()
        with self._books:
            held = self._held.setdefault(ident, {})
            held[name] = held.get(name, 0) + 1
        self._record("acquire", name)

    def _after_release(self, name: str) -> None:
        ident = threading.get_ident()
        with self._books:
            held = self._held.get(ident, {})
            if name in held:
                held[name] -= 1
                if held[name] <= 0:
                    del held[name]
        self._record("release", name)

    # -- shared-object guarding ----------------------------------------

    def _check_guard(self, target: str, guards: tuple[str, ...], op: str) -> None:
        if any(self.holds(guard) for guard in guards):
            return
        wanted = " or ".join(repr(guard) for guard in guards)
        self._violation(
            UnguardedMutationError(
                f"{op} on {target} without holding {wanted} "
                f"(thread {threading.current_thread().name!r})"
            )
        )

    def guard_list(
        self, target: list, name: str, guards: Sequence[str]
    ) -> "GuardedList":
        return GuardedList(self, target, name, tuple(guards))

    def guard_object(
        self, target: Any, name: str, guards: Sequence[str]
    ) -> "GuardedObject":
        return GuardedObject(self, target, name, tuple(guards))

    def report(self) -> list[str]:
        """Human-readable violation lines (stable order of occurrence)."""
        return [
            f"{type(error).__name__}: {error}" for error in self.violations
        ]


class SanitizedLock:
    """Drop-in ``threading.RLock`` replacement that reports to a sanitizer."""

    def __init__(self, sanitizer: LockSanitizer, inner: Any, name: str) -> None:
        self._sanitizer = sanitizer
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(self.name)
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._sanitizer._after_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._after_release(self.name)

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SanitizedLock({self.name!r})"


class GuardedList:
    """List proxy that requires a guarding lock for every mutation.

    Reads (indexing, iteration, ``len``) pass through unchecked — the
    engine's read paths take the lock anyway, and read-side checking
    would double the sanitizer's overhead for no extra signal on the
    write-race bugs REP009 targets.
    """

    __slots__ = ("_sanitizer", "_target", "_name", "_guards")

    def __init__(
        self,
        sanitizer: LockSanitizer,
        target: list,
        name: str,
        guards: tuple[str, ...],
    ) -> None:
        self._sanitizer = sanitizer
        self._target = target
        self._name = name
        self._guards = guards

    def _check(self, op: str) -> None:
        self._sanitizer._check_guard(self._name, self._guards, op)

    # mutations --------------------------------------------------------

    def __setitem__(self, index: Any, value: Any) -> None:
        self._check(f"__setitem__[{index!r}]")
        self._target[index] = value

    def __delitem__(self, index: Any) -> None:
        self._check(f"__delitem__[{index!r}]")
        del self._target[index]

    def append(self, value: Any) -> None:
        self._check("append")
        self._target.append(value)

    def extend(self, values: Iterable[Any]) -> None:
        self._check("extend")
        self._target.extend(values)

    def insert(self, index: int, value: Any) -> None:
        self._check("insert")
        self._target.insert(index, value)

    def pop(self, index: int = -1) -> Any:
        self._check("pop")
        return self._target.pop(index)

    def clear(self) -> None:
        self._check("clear")
        self._target.clear()

    # reads ------------------------------------------------------------

    def __getitem__(self, index: Any) -> Any:
        return self._target[index]

    def __len__(self) -> int:
        return len(self._target)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._target)

    def __contains__(self, value: Any) -> bool:
        return value in self._target

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GuardedList):
            return self._target == other._target
        return self._target == other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GuardedList({self._name!r}, {self._target!r})"


class GuardedObject:
    """Attribute/method proxy guarding an arbitrary shared object.

    Calls to method names in :data:`_MUTATOR_METHODS` require a guarding
    lock; every other attribute access passes straight through to the
    wrapped object.
    """

    __slots__ = ("_sanitizer", "_target", "_name", "_guards")

    def __init__(
        self,
        sanitizer: LockSanitizer,
        target: Any,
        name: str,
        guards: tuple[str, ...],
    ) -> None:
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_guards", guards)

    def _check(self, op: str) -> None:
        self._sanitizer._check_guard(self._name, self._guards, op)

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._target, attr)
        if attr in _MUTATOR_METHODS and callable(value):
            def guarded(*args: Any, **kwargs: Any) -> Any:
                self._check(attr)
                return value(*args, **kwargs)

            return guarded
        return value

    def __setattr__(self, attr: str, value: Any) -> None:
        self._check(f"setattr({attr!r})")
        setattr(self._target, attr, value)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check(f"__setitem__[{key!r}]")
        self._target[key] = value

    def __getitem__(self, key: Any) -> Any:
        return self._target[key]

    def __len__(self) -> int:
        return len(self._target)

    def __contains__(self, key: Any) -> bool:
        return key in self._target

    def __iter__(self) -> Iterator[Any]:
        return iter(self._target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GuardedObject({self._name!r})"


def attach_engine(engine: Any, sanitizer: LockSanitizer) -> Any:
    """Wire a sanitizer onto a live engine's lock and shared state.

    Replaces ``engine._lock`` with a :class:`SanitizedLock` and wraps
    the REP007/REP009 guarded attributes (``_epochs``, ``_cache``,
    ``_breakers``) in checking proxies.  Returns the engine for
    chaining.  Safe to call once per engine; a second call would wrap
    the wrappers and double-count acquisitions.
    """
    lock_name = "engine._lock"
    engine._lock = sanitizer.wrap(engine._lock, lock_name)
    engine._epochs = sanitizer.guard_list(
        engine._epochs, "engine._epochs", (lock_name,)
    )
    engine._cache = sanitizer.guard_object(
        engine._cache, "engine._cache", (lock_name,)
    )
    if getattr(engine, "_breakers", None) is not None:
        engine._breakers = sanitizer.guard_list(
            list(engine._breakers), "engine._breakers", (lock_name,)
        )
    return engine
