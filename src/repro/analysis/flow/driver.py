"""Driver: run the flow analyses over a tree, diff against a baseline.

The scope rules mirror where each analysis has something to say:

* lock analysis (REP009/REP010) — modules under ``engine/`` (the shared
  mutable serving state lives there; everywhere else is single-owner);
* exception-flow (REP011) — ``engine/`` and ``methods/`` (the public
  serving and query entry points callers program against);
* hot-path allocation (REP012) — ``core/`` and ``methods/`` (the scalar
  descent loops the benchmarks exercise).

Findings are deterministic: modules are visited in sorted path order and
the final list is sorted by ``(path, line, rule, message)``, so repeated
runs over the same tree byte-match — a requirement for the committed
baseline (``benchmarks/baselines/analyze.json``) and CI diffing.

The baseline is an :mod:`repro.artifacts` document whose rows are
accepted findings keyed by ``(path, rule, symbol)``; ``repro analyze
--update-baseline`` rewrites it.  One-off suppressions can instead use a
line pragma, ``# noqa: REP009`` etc., exactly as with the lint rules.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from ...artifacts import load_document, make_document, write_document
from ..lint import _suppressed
from .findings import FLOW_RULES, FlowFinding
from .hotpath import allocation_findings
from .locks import LockAnalyzer
from .raises import EscapeAnalyzer

__all__ = [
    "analyze_paths",
    "analyze_sources",
    "load_baseline",
    "filter_baseline",
    "baseline_document",
    "findings_document",
    "render_markdown_table",
    "main",
]

#: Directory-name gates per analysis family.
_LOCK_DIRS = frozenset({"engine"})
_RAISES_DIRS = frozenset({"engine", "methods"})
_HOTPATH_DIRS = frozenset({"core", "methods"})


def _iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_sources(sources: Sequence[tuple[str, str]]) -> list[FlowFinding]:
    """Run every flow analysis over ``(path, source)`` module pairs.

    The unit the tests drive directly; :func:`analyze_paths` feeds it
    from the filesystem.  Findings carrying a matching ``# noqa:``
    pragma on their line are dropped, and the result is fully sorted.
    """
    lock_analyzer = LockAnalyzer()
    escape_analyzer = EscapeAnalyzer()
    findings: list[FlowFinding] = []
    lines_by_path: dict[str, list[str]] = {}

    for path_text, source in sources:
        parts = set(Path(path_text).parts)
        lines_by_path[path_text] = source.splitlines()
        try:
            tree = ast.parse(source, filename=path_text)
        except SyntaxError as error:
            findings.append(
                FlowFinding(
                    path_text,
                    error.lineno or 1,
                    "REP000",
                    "<module>",
                    f"syntax error: {error.msg}",
                )
            )
            continue
        if _LOCK_DIRS & parts:
            findings.extend(lock_analyzer.analyze_module(tree, path_text))
        if _RAISES_DIRS & parts:
            findings.extend(escape_analyzer.analyze_module(tree, path_text))
        if _HOTPATH_DIRS & parts:
            findings.extend(allocation_findings(tree, path_text))

    findings.extend(lock_analyzer.order_findings())

    kept = [
        finding
        for finding in findings
        if not _suppressed(
            lines_by_path.get(finding.path, []), finding.line, finding.rule
        )
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


def analyze_paths(paths: Sequence[str | Path]) -> list[FlowFinding]:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    sources = [
        (str(module_path), module_path.read_text())
        for module_path in _iter_python_files(paths)
    ]
    return analyze_sources(sources)


# ----------------------------------------------------------------------
# Baseline handling
# ----------------------------------------------------------------------


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Accepted-finding keys from a committed baseline document."""
    document = load_document(path, "flow_analysis")
    keys: set[tuple[str, str, str]] = set()
    for row in document["rows"]:
        if isinstance(row, dict) and {"path", "rule", "symbol"} <= set(row):
            keys.add((str(row["path"]), str(row["rule"]), str(row["symbol"])))
    return keys


def filter_baseline(
    findings: Sequence[FlowFinding], baseline: set[tuple[str, str, str]]
) -> tuple[list[FlowFinding], int]:
    """``(new findings, suppressed count)`` after baseline subtraction."""
    fresh = [finding for finding in findings if finding.key() not in baseline]
    return fresh, len(findings) - len(fresh)


def _rows(findings: Sequence[FlowFinding]) -> list[dict]:
    return [
        {
            "path": finding.path,
            "line": finding.line,
            "rule": finding.rule,
            "symbol": finding.symbol,
            "message": finding.message,
        }
        for finding in findings
    ]


def baseline_document(findings: Sequence[FlowFinding]) -> dict:
    """An artifacts document recording ``findings`` as the new baseline."""
    return make_document("flow_analysis", rows=_rows(findings))


def findings_document(
    findings: Sequence[FlowFinding], *, files: int, suppressed: int
) -> dict:
    """The ``repro analyze --json`` output document."""
    return make_document(
        "flow_analysis",
        rows=_rows(findings),
        files=files,
        suppressed=suppressed,
        rules=dict(sorted(FLOW_RULES.items())),
    )


def render_markdown_table(findings: Sequence[FlowFinding]) -> str:
    """Findings as a GitHub-flavoured markdown table (for step summaries)."""
    if not findings:
        return "No un-baselined flow-analysis findings.\n"
    lines = [
        "| location | rule | symbol | finding |",
        "| --- | --- | --- | --- |",
    ]
    for finding in findings:
        message = finding.message.replace("|", "\\|")
        lines.append(
            f"| `{finding.path}:{finding.line}` | {finding.rule} "
            f"| `{finding.symbol}` | {message} |"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Module entry point (`python -m repro.analysis.flow`)
# ----------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyses; exit 1 on un-baselined findings, 2 on bad usage."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    baseline_path: str | None = None
    if "--baseline" in arguments:
        index = arguments.index("--baseline")
        try:
            baseline_path = arguments[index + 1]
        except IndexError:
            print("--baseline requires a file argument", file=sys.stderr)
            return 2
        del arguments[index : index + 2]
    if not arguments or "-h" in arguments or "--help" in arguments:
        print(__doc__)
        print(
            "usage: python -m repro.analysis.flow PATH [PATH ...] "
            "[--baseline FILE]"
        )
        return 0 if arguments else 2
    missing = [entry for entry in arguments if not Path(entry).exists()]
    if missing:
        for entry in missing:
            print(f"repro-flow: no such path: {entry}", file=sys.stderr)
        return 2
    findings = analyze_paths(arguments)
    suppressed = 0
    if baseline_path is not None:
        findings, suppressed = filter_baseline(
            findings, load_baseline(baseline_path)
        )
    for finding in findings:
        print(finding)
    checked = sum(1 for _ in _iter_python_files(arguments))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(
        f"repro-flow: {checked} file(s) analysed, {status}"
        + (f", {suppressed} baselined" if suppressed else "")
    )
    return 1 if findings else 0


# Re-exported for the CLI; imported here so `repro analyze` has one
# import surface for writes too.
__all__ += ["write_document"]
