"""Lock-state dataflow analysis: unguarded writes and lock-order cycles.

Two rules ride on one forward *must* analysis over the CFG of every
function in the engine package:

* **REP009 unguarded-write-dataflow** — the dataflow successor of lint
  rule REP007.  The analysis tracks, at every program point, the set of
  locks that are held on **every** path reaching it (``with ..._lock:``
  adds, leaving the block removes, joins intersect) together with the
  local names that *must-alias* a guarded shared attribute.  A mutation
  of guarded state — directly (``self._epochs[i] += 1``) or through an
  alias (``c = self._cache; c[key] = value``, invisible to REP007's
  lexical scan) — reachable with an **empty** lock set is a data race
  with the executor's reader threads and is flagged.
* **REP010 lock-order-cycle** — every lock acquisition observed while
  other locks are held contributes ``held -> acquired`` edges to a
  cross-function acquisition-order graph; ``self.method()`` calls
  propagate the callee's transitive acquisitions to the caller's held
  set (a call-graph fixed point).  A cycle in the graph means two
  threads can acquire the same locks in opposite orders — the classic
  ABBA deadlock — and is reported once per strongly-connected component.

Functions named ``_locked_*`` are analysed with a synthetic caller-held
lock (their naming contract: the caller holds the engine lock);
``__init__`` is skipped (construction precedes sharing).  Nested
functions are analysed with the lock state captured at their definition
point, matching how the engine's fan-out closures are created under the
request lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .cfg import BasicBlock, ControlFlowGraph, Statement, WithEnter, WithExit, build_cfg
from .dataflow import UNREACHED, fixpoint, solve_forward
from .findings import FlowFinding

__all__ = ["GUARDED_ATTRS", "LockState", "LockAnalyzer"]

#: Attributes holding shared mutable serving state (same set REP007
#: guards) — including the process executor's worker-lane table.
GUARDED_ATTRS = frozenset({"_epochs", "_cache", "_breakers", "_lanes"})

#: Synthetic lock representing "the caller holds the engine lock" for
#: ``_locked_*`` helpers.  Never contributes order-graph edges.
ENTRY_LOCK = "<caller>"


@dataclass(frozen=True)
class LockState:
    """Must-hold lock set plus must-alias bindings at one program point."""

    locks: frozenset[str] = frozenset()
    aliases: frozenset[tuple[str, str]] = frozenset()  # (local name, guarded attr)

    def alias_of(self, name: str) -> str | None:
        for local, attr in self.aliases:
            if local == name:
                return attr
        return None


def _join(left: LockState, right: LockState) -> LockState:
    return LockState(left.locks & right.locks, left.aliases & right.aliases)


def _dotted(expr: ast.expr) -> str | None:
    """``self._lock`` / ``cache_lock`` as a dotted string, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base is not None else None
    return None


def _lock_name(item: ast.withitem) -> str | None:
    """The lock a ``with`` item acquires, or None for non-lock contexts."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = _dotted(expr)
    if name is not None and name.split(".")[-1].endswith("lock"):
        return name
    return None


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


@dataclass
class _Mutation:
    lineno: int
    attr: str
    via: str | None  # alias name when the write went through one


@dataclass
class _FunctionFacts:
    """Everything one function contributes to the cross-function stage."""

    qualname: str
    unguarded: list[_Mutation] = field(default_factory=list)
    #: (held locks, acquired lock, lineno) per acquisition point.
    acquisitions: list[tuple[frozenset[str], str, int]] = field(default_factory=list)
    #: (held locks, callee short name, lineno) per ``self.x()`` call.
    self_calls: list[tuple[frozenset[str], str, int]] = field(default_factory=list)
    acquires: frozenset[str] = frozenset()


class _FunctionAnalysis:
    """One function's lock dataflow: solve, then replay to collect events."""

    def __init__(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        entry_locks: frozenset[str],
        guarded: frozenset[str],
    ) -> None:
        self.function = function
        self.facts = _FunctionFacts(qualname)
        self.guarded = guarded
        #: Nested functions queued with the lock state at their def site.
        self.nested: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, frozenset[str]]] = []
        self._collect = False
        cfg = build_cfg(function)
        states = solve_forward(
            cfg, self._transfer_block, LockState(locks=entry_locks), _join
        )
        self._collect = True
        for block in cfg.blocks:
            in_state = states[block.index]
            if in_state is UNREACHED or not isinstance(in_state, LockState):
                continue
            self._transfer_block(block, in_state)

    # -- transfer ------------------------------------------------------

    def _transfer_block(self, block: BasicBlock, state: LockState) -> LockState:
        for statement in block.statements:
            state = self._transfer_statement(statement, state)
        return state

    def _transfer_statement(self, statement: Statement, state: LockState) -> LockState:
        if isinstance(statement, WithEnter):
            lock = _lock_name(statement.item)
            if lock is None:
                return self._scan(statement.item.context_expr, state, statement.lineno)
            if self._collect and lock not in state.locks:
                self.facts.acquisitions.append(
                    (state.locks, lock, statement.lineno)
                )
                self.facts.acquires |= {lock}
            return LockState(state.locks | {lock}, state.aliases)
        if isinstance(statement, WithExit):
            lock = _lock_name(statement.item)
            if lock is None:
                return state
            return LockState(state.locks - {lock}, state.aliases)

        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self._collect:
                self.nested.append((statement, state.locks))
            return self._kill(state, statement.name)
        if isinstance(statement, ast.ClassDef):
            return self._kill(state, statement.name)

        # Compound headers sit whole in their test block; scan only the
        # header expression — the body flows through its own blocks.
        if isinstance(statement, (ast.If, ast.While)):
            return self._scan(statement.test, state, statement.lineno)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            state = self._scan(statement.iter, state, statement.lineno)
            for node in ast.walk(statement.target):
                if isinstance(node, ast.Name):
                    state = self._kill(state, node.id)
            return state
        if isinstance(statement, ast.ExceptHandler):
            if statement.name is not None:
                state = self._kill(state, statement.name)
            return state

        state = self._scan(statement, state, getattr(statement, "lineno", 0))

        # Alias generation and kills come *after* the mutation scan so a
        # rebinding statement is judged under the bindings it started in.
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                state = self._assign_target(target, statement.value, state)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            state = self._assign_target(statement.target, statement.value, state)
        elif isinstance(statement, ast.AugAssign):
            if isinstance(statement.target, ast.Name):
                state = self._kill(state, statement.target.id)
        return state

    def _assign_target(
        self, target: ast.expr, value: ast.expr, state: LockState
    ) -> LockState:
        if isinstance(target, ast.Name):
            state = self._kill(state, target.id)
            if isinstance(value, ast.Attribute) and value.attr in self.guarded:
                state = LockState(
                    state.locks, state.aliases | {(target.id, value.attr)}
                )
            elif isinstance(value, ast.Name):
                attr = state.alias_of(value.id)
                if attr is not None:
                    state = LockState(
                        state.locks, state.aliases | {(target.id, attr)}
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    state = self._kill(state, element.id)
        return state

    @staticmethod
    def _kill(state: LockState, name: str) -> LockState:
        if state.alias_of(name) is None:
            return state
        return LockState(
            state.locks,
            frozenset(pair for pair in state.aliases if pair[0] != name),
        )

    # -- mutation scanning ---------------------------------------------

    def _scan(self, node: ast.AST, state: LockState, lineno: int) -> LockState:
        """Record guarded-state mutations and self-calls inside ``node``."""
        if not self._collect:
            return state
        for mutation in self._mutations(node, state):
            if not state.locks:
                self.facts.unguarded.append(mutation)
        for call in _walk_shallow(node):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                self.facts.self_calls.append(
                    (state.locks, call.func.attr, getattr(call, "lineno", lineno))
                )
        return state

    def _mutations(self, node: ast.AST, state: LockState) -> Iterable[_Mutation]:
        targets: list[ast.expr] = []
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets) if isinstance(node, ast.Assign) else [node.target]
            )
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            yield from self._target_mutation(target, state)
        for call in _walk_shallow(node):
            if not isinstance(call, ast.Call) or not isinstance(
                call.func, ast.Attribute
            ):
                continue
            receiver = call.func.value
            if isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            lineno = getattr(call, "lineno", 0)
            if isinstance(receiver, ast.Attribute) and receiver.attr in self.guarded:
                yield _Mutation(lineno, receiver.attr, None)
            elif isinstance(receiver, ast.Name):
                attr = state.alias_of(receiver.id)
                if attr is not None:
                    yield _Mutation(lineno, attr, receiver.id)

    def _target_mutation(
        self, target: ast.expr, state: LockState
    ) -> Iterable[_Mutation]:
        # A bare Name target is a local rebind, not a mutation; anything
        # deeper (subscript / attribute) mutates the referenced object.
        if isinstance(target, ast.Name):
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._target_mutation(element, state)
            return
        for sub in ast.walk(target):
            if isinstance(sub, ast.Attribute) and sub.attr in self.guarded:
                yield _Mutation(getattr(target, "lineno", 0), sub.attr, None)
                return
        root = target
        while isinstance(root, (ast.Subscript, ast.Attribute, ast.Starred)):
            root = root.value
        if isinstance(root, ast.Name):
            attr = state.alias_of(root.id)
            if attr is not None:
                yield _Mutation(getattr(target, "lineno", 0), attr, root.id)


class LockAnalyzer:
    """Run the lock analysis over modules, then derive order-graph cycles.

    Usage: call :meth:`analyze_module` per module (collecting the REP009
    findings it returns), then :meth:`order_findings` once for the
    cross-module REP010 cycle report.
    """

    def __init__(self, guarded: frozenset[str] = GUARDED_ATTRS) -> None:
        self.guarded = guarded
        #: (path, class-scope facts) per analysed class/module scope.
        self._scopes: list[tuple[str, dict[str, _FunctionFacts]]] = []

    # -- per-module pass ------------------------------------------------

    def analyze_module(self, tree: ast.Module, path: str) -> list[FlowFinding]:
        findings: list[FlowFinding] = []
        module_scope: dict[str, _FunctionFacts] = {}
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                class_scope: dict[str, _FunctionFacts] = {}
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        findings.extend(
                            self._analyze_function(
                                stmt, f"{node.name}.{stmt.name}", path, class_scope
                            )
                        )
                self._scopes.append((path, class_scope))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    self._analyze_function(node, node.name, path, module_scope)
                )
        if module_scope:
            self._scopes.append((path, module_scope))
        return findings

    def _analyze_function(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        path: str,
        scope: dict[str, _FunctionFacts],
    ) -> list[FlowFinding]:
        if function.name == "__init__":
            return []
        entry = (
            frozenset({ENTRY_LOCK})
            if function.name.startswith("_locked_")
            else frozenset()
        )
        queue: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, frozenset[str]]]
        queue = [(function, qualname, entry)]
        findings: list[FlowFinding] = []
        while queue:
            node, name, entry_locks = queue.pop(0)
            analysis = _FunctionAnalysis(node, name, entry_locks, self.guarded)
            scope[node.name] = analysis.facts
            for mutation in analysis.facts.unguarded:
                through = f" through alias {mutation.via!r}" if mutation.via else ""
                findings.append(
                    FlowFinding(
                        path,
                        mutation.lineno,
                        "REP009",
                        name,
                        f"{mutation.attr} mutated{through} with no lock held "
                        f"on some path — guard with 'with ..._lock:' or move "
                        f"into a _locked_* helper",
                    )
                )
            for nested, captured in analysis.nested:
                queue.append((nested, f"{name}.<locals>.{nested.name}", captured))
        return findings

    # -- cross-function stage -------------------------------------------

    def order_findings(self) -> list[FlowFinding]:
        """REP010: cycles in the cross-function lock-acquisition graph."""
        edges: dict[tuple[str, str], tuple[str, int]] = {}

        for path, scope in self._scopes:
            # Transitive lock acquisitions per function, via the
            # same-scope ``self.x()`` call graph.
            names = sorted(scope)

            def step(
                name: str, states: dict[str, frozenset[str]]
            ) -> frozenset[str]:
                facts = scope[name]
                acquired = facts.acquires
                for _, callee, _ in facts.self_calls:
                    if callee in scope:
                        acquired = acquired | states[callee]
                return acquired

            closure = fixpoint(names, lambda name: scope[name].acquires, step)

            for name in names:
                facts = scope[name]
                for held, acquired, lineno in facts.acquisitions:
                    for holder in held:
                        self._edge(edges, holder, acquired, path, lineno)
                for held, callee, lineno in facts.self_calls:
                    if callee not in scope:
                        continue
                    for acquired in closure[callee]:
                        for holder in held:
                            self._edge(edges, holder, acquired, path, lineno)

        return self._cycles(edges)

    @staticmethod
    def _edge(
        edges: dict[tuple[str, str], tuple[str, int]],
        holder: str,
        acquired: str,
        path: str,
        lineno: int,
    ) -> None:
        if holder == ENTRY_LOCK or holder == acquired:
            return
        key = (holder, acquired)
        location = (path, lineno)
        if key not in edges or location < edges[key]:
            edges[key] = location

    @staticmethod
    def _cycles(
        edges: dict[tuple[str, str], tuple[str, int]]
    ) -> list[FlowFinding]:
        graph: dict[str, set[str]] = {}
        for holder, acquired in edges:
            graph.setdefault(holder, set()).add(acquired)
            graph.setdefault(acquired, set())

        # Tarjan SCC, iterative, over lexicographically sorted nodes so
        # component discovery (and so reporting) is deterministic.
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(graph[root])))
            ]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = low[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(sorted(graph[successor]))))
                        advanced = True
                        break
                    if successor in on_stack:
                        low[node] = min(low[node], index_of[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))

        for node in sorted(graph):
            if node not in index_of:
                strongconnect(node)

        findings: list[FlowFinding] = []
        for component in sorted(components):
            members = set(component)
            cycle_edges = sorted(
                (edges[key], key)
                for key in edges
                if key[0] in members and key[1] in members
            )
            (path, lineno), _ = cycle_edges[0]
            order = " -> ".join(component + [component[0]])
            findings.append(
                FlowFinding(
                    path,
                    lineno,
                    "REP010",
                    "<lock-order-graph>",
                    f"lock-acquisition-order cycle {order} — two threads "
                    f"taking these locks in opposite orders deadlock; pick "
                    f"one global order",
                )
            )
        return findings
