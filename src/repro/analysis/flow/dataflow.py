"""Generic fixed-point dataflow solving over a :class:`ControlFlowGraph`.

Analyses supply three things — an initial state for the entry (forward)
or the exits (backward), a per-block *transfer* function, and a lattice
*join* — and get back the state at every block boundary once the
worklist reaches a fixed point.  The framework is deliberately small:

* :data:`UNREACHED` is the implicit top element: the state of a block no
  path has delivered a value to yet.  ``join(UNREACHED, x) == x`` is
  handled here, so analyses never see the sentinel.
* A *must* analysis (lock sets: "held on **every** path") joins with set
  intersection; a *may* analysis (reaching writes, liveness) joins with
  union.  Both are ordinary functions of two states.
* Termination needs the usual conditions — a join that only moves states
  down a finite lattice and a monotone transfer.  Every analysis in this
  package uses finite sets of names drawn from one function's AST, so
  the chains are trivially finite.

:func:`fixpoint` is the companion for *summary* problems that live on a
call graph instead of a CFG (the escaping-exception sets of
:mod:`~repro.analysis.flow.raises`, the transitive lock-acquisition sets
of :mod:`~repro.analysis.flow.locks`).
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

from .cfg import BasicBlock, ControlFlowGraph

__all__ = [
    "UNREACHED",
    "solve_forward",
    "solve_backward",
    "fixpoint",
]

State = TypeVar("State")
Node = TypeVar("Node", bound=Hashable)


class _Unreached:
    """Singleton top element for blocks no path has reached yet."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNREACHED"


UNREACHED = _Unreached()


def _join(join: Callable[[State, State], State], left: object, right: State) -> State:
    if isinstance(left, _Unreached):
        return right
    return join(left, right)  # type: ignore[arg-type]


def solve_forward(
    cfg: ControlFlowGraph,
    transfer: Callable[[BasicBlock, State], State],
    initial: State,
    join: Callable[[State, State], State],
) -> dict[int, State | _Unreached]:
    """Forward worklist solve; returns the *input* state of every block.

    ``transfer(block, state)`` folds the block's statements over the
    incoming state and returns the outgoing state.  Blocks never reached
    from the entry keep :data:`UNREACHED` as their input.
    """
    states: dict[int, State | _Unreached] = {
        block.index: UNREACHED for block in cfg.blocks
    }
    states[cfg.entry] = initial
    worklist: list[int] = [cfg.entry]
    while worklist:
        index = worklist.pop()
        in_state = states[index]
        if isinstance(in_state, _Unreached):
            continue
        out_state = transfer(cfg.blocks[index], in_state)
        for successor in cfg.blocks[index].successors:
            merged = _join(join, states[successor], out_state)
            if merged != states[successor]:
                states[successor] = merged
                worklist.append(successor)
    return states


def solve_backward(
    cfg: ControlFlowGraph,
    transfer: Callable[[BasicBlock, State], State],
    initial: State,
    join: Callable[[State, State], State],
) -> dict[int, State | _Unreached]:
    """Backward worklist solve; returns the *output* state of every block.

    ``transfer(block, state)`` folds the block's statements in reverse
    over the state flowing in from its successors.  Exit blocks (no
    successors) start from ``initial``.
    """
    predecessors = cfg.predecessors()
    states: dict[int, State | _Unreached] = {
        block.index: UNREACHED for block in cfg.blocks
    }
    worklist: list[int] = []
    for block in cfg.blocks:
        if not block.successors:
            states[block.index] = initial
            worklist.append(block.index)
    while worklist:
        index = worklist.pop()
        out_state = states[index]
        if isinstance(out_state, _Unreached):
            continue
        in_state = transfer(cfg.blocks[index], out_state)
        for predecessor in predecessors[index]:
            merged = _join(join, states[predecessor], in_state)
            if merged != states[predecessor]:
                states[predecessor] = merged
                worklist.append(predecessor)
    return states


def fixpoint(
    nodes: list[Node],
    initial: Callable[[Node], State],
    step: Callable[[Node, dict[Node, State]], State],
) -> dict[Node, State]:
    """Iterate ``step`` over ``nodes`` until no state changes.

    The call-graph analogue of the CFG solvers: ``step(node, states)``
    recomputes one node's summary from the current summaries of every
    node it depends on.  Iteration order is the given ``nodes`` order,
    repeated until stable, so results are deterministic.
    """
    states: dict[Node, State] = {node: initial(node) for node in nodes}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            updated = step(node, states)
            if updated != states[node]:
                states[node] = updated
                changed = True
    return states
