"""Hot-path allocation analysis: per-query descent loops stay lean (REP012).

The batch benchmarks (``BENCH_batch_queries.json``, ``BENCH_engine.json``)
live and die on the scalar descent loops — the per-level ``while`` walks
in ``DynamicDataCube._prefix_walk``, the B^c-tree descents, the Fenwick
index loops.  A comprehension, generator expression, or closure created
*inside* one of those loops allocates on every level of every query; at
millions of queries that is pure allocator pressure the prefix-sum
trade-off literature says to engineer away (hoist the allocation, reuse
a buffer, or vectorise the level).

REP012 flags, inside the known scalar descent entry points and their
walk helpers, any ``For``/``While`` loop body that builds:

* a list / set / dict comprehension or generator expression,
* a ``lambda`` or nested ``def`` (a closure cell allocation per
  iteration),
* a ``list()`` / ``dict()`` / ``set()`` constructor call.

Batch ``*_many`` methods are exempt — they amortise one allocation over
the whole batch, which is the entire point of the batch path.  Findings
that represent a measured-and-accepted trade-off belong in the committed
analyze baseline, not in ``noqa`` sprinkles.
"""

from __future__ import annotations

import ast

from .findings import FlowFinding

__all__ = ["HOT_FUNCTIONS", "allocation_findings"]

#: Scalar per-query entry points and the descent helpers behind them.
HOT_FUNCTIONS = frozenset(
    {
        "prefix_sum",
        "range_sum",
        "row_value",
        "apply_delta",
        "add",
        "get",
        "subtotal",
        "_prefix_walk",
        "_range_walk",
        "_descend",
        "_box_contribution",
        "_walk_under",
        "prefix_one",
        "add_one",
        "gather_level",
    }
)

#: Builtin constructors whose call inside a descent loop allocates.
_ALLOCATING_CALLS = frozenset({"list", "dict", "set"})

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


def _allocations(loop: ast.For | ast.AsyncFor | ast.While) -> list[tuple[int, str]]:
    """(line, description) per allocation lexically inside ``loop``."""
    found: list[tuple[int, str]] = []
    for node in ast.walk(loop):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            found.append((node.lineno, "comprehension"))
        elif isinstance(node, ast.GeneratorExp):
            found.append((node.lineno, "generator expression"))
        elif isinstance(node, ast.Lambda):
            found.append((node.lineno, "lambda closure"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append((node.lineno, f"nested function {node.name}()"))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ALLOCATING_CALLS
        ):
            found.append((node.lineno, f"{node.func.id}() construction"))
    return found


def allocation_findings(tree: ast.Module, path: str) -> list[FlowFinding]:
    """REP012 findings for every hot function in ``tree``."""
    findings: list[FlowFinding] = []
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name not in HOT_FUNCTIONS:
                continue
            qualname = f"{class_node.name}.{method.name}"
            seen: set[int] = set()
            for loop in ast.walk(method):
                if not isinstance(loop, _LOOP_NODES):
                    continue
                for line, what in _allocations(loop):
                    if line in seen:
                        continue  # nested loops: report the site once
                    seen.add(line)
                    findings.append(
                        FlowFinding(
                            path,
                            line,
                            "REP012",
                            qualname,
                            f"{what} allocated inside the per-query descent "
                            f"loop — hoist it out of the loop, reuse a "
                            f"buffer, or move the query to the batch path",
                        )
                    )
    return findings
