"""Exception-flow analysis: undeclared non-ReproError escapes (REP011).

The library's error contract (``docs/api.md``, ``repro.exceptions``) is
that every failure a caller can see derives from :class:`ReproError`, so
``except ReproError`` is a complete guard.  Lint rule REP001 catches the
direct violations (``raise ValueError`` in library code) but is blind to
*escape paths*: a private helper that raises ``KeyError`` which a public
entry point re-exports unhandled breaks the contract just as surely.

This analysis computes, per function, the set of exception class names
that can escape it:

* a ``raise Name(...)`` contributes its name **unless** an enclosing
  ``try`` catches it — matching is hierarchy-aware (the class map built
  from :mod:`repro.exceptions` knows ``DeadlineExceededError`` is caught
  by ``except ResilienceError`` *and* by ``except TimeoutError``);
* a ``self.method()`` call imports the callee's escaping set (filtered
  through the same enclosing handlers) — resolved per class and iterated
  to a fixed point, so chains of private helpers propagate;
* bare ``raise`` (re-raise) and raises of non-literal expressions are
  ignored (unknowable statically).

A *public* entry point (name without a leading underscore) is flagged
when an escaping exception is neither rooted in ``ReproError`` nor
declared in its docstring (a mention of the class name — typically in a
``Raises:`` section — is the documented-contract escape hatch).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from .dataflow import fixpoint
from .findings import FlowFinding

__all__ = ["exception_hierarchy", "EscapeAnalyzer"]

#: Exceptions that are part of Python's protocol vocabulary rather than
#: failure reporting; escaping these is never a contract violation.
_PROTOCOL_EXCEPTIONS = frozenset(
    {"NotImplementedError", "StopIteration", "GeneratorExit", "KeyboardInterrupt"}
)


def exception_hierarchy() -> dict[str, frozenset[str]]:
    """Map every known exception name to its ancestor names.

    Built live from :mod:`repro.exceptions` (so a new error class is
    known the moment it exists) plus the builtin exception classes.  The
    ancestor sets drive hierarchy-aware handler matching: ``KeyError``
    maps to ``{KeyError, LookupError, Exception, BaseException}``.
    """
    from ... import exceptions as repro_exceptions

    classes: dict[str, type] = {}
    for name in dir(builtins):
        value = getattr(builtins, name)
        if isinstance(value, type) and issubclass(value, BaseException):
            classes[name] = value
    for name in getattr(repro_exceptions, "__all__", []):
        value = getattr(repro_exceptions, name, None)
        if isinstance(value, type) and issubclass(value, BaseException):
            classes[name] = value

    hierarchy: dict[str, frozenset[str]] = {}
    for name, cls in classes.items():
        hierarchy[name] = frozenset(
            ancestor.__name__
            for ancestor in cls.__mro__
            if issubclass(ancestor, BaseException)
        )
    return hierarchy


def _repro_rooted() -> frozenset[str]:
    """Names of every exception class rooted in ``ReproError``."""
    from ... import exceptions as repro_exceptions

    rooted = set()
    for name in getattr(repro_exceptions, "__all__", []):
        value = getattr(repro_exceptions, name, None)
        if (
            isinstance(value, type)
            and issubclass(value, repro_exceptions.ReproError)
        ):
            rooted.add(name)
    return frozenset(rooted)


def _handler_names(handler: ast.ExceptHandler) -> list[str] | None:
    """Class names a handler catches; ``None`` means catch-everything."""
    if handler.type is None:
        return None
    names: list[str] = []
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


@dataclass
class _RaiseSite:
    name: str
    lineno: int
    #: Handler name-lists of every enclosing try (innermost last).
    guards: list[list[str] | None]


@dataclass
class _CallSite:
    callee: str
    lineno: int
    guards: list[list[str] | None]


@dataclass
class _FunctionEscapes:
    qualname: str
    lineno: int
    docstring: str
    raises: list[_RaiseSite] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


class _Collector(ast.NodeVisitor):
    """Gather raise sites and self-calls with their enclosing handlers."""

    def __init__(self, record: _FunctionEscapes) -> None:
        self.record = record
        self.guards: list[list[str] | None] = []

    def visit_Try(self, node: ast.Try) -> None:
        collected: list[str] = []
        flattened: list[str] | None = collected
        for handler in node.handlers:
            names = _handler_names(handler)
            if names is None:
                flattened = None
                break
            collected.extend(names)
        self.guards.append(flattened)
        for stmt in node.body:
            self.visit(stmt)
        self.guards.pop()
        # Handler bodies, else, and finally run outside the protection.
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is not None:
            self.record.raises.append(
                _RaiseSite(name, node.lineno, list(self.guards))
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.record.calls.append(
                _CallSite(func.attr, node.lineno, list(self.guards))
            )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs run later, under their own contract

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class EscapeAnalyzer:
    """Per-class escaping-exception fixed point + REP011 reporting."""

    def __init__(self) -> None:
        self.hierarchy = exception_hierarchy()
        self.rooted = _repro_rooted()

    def _caught(self, name: str, guards: list[list[str] | None]) -> bool:
        ancestors = self.hierarchy.get(name, frozenset({name, "Exception"}))
        for handler_names in guards:
            if handler_names is None:
                return True  # bare except / except BaseException
            for caught in handler_names:
                if caught == name or caught in ancestors:
                    return True
        return False

    def analyze_module(self, tree: ast.Module, path: str) -> list[FlowFinding]:
        findings: list[FlowFinding] = []
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                methods = [
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                findings.extend(self._analyze_scope(methods, node.name, path))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._analyze_scope([node], None, path))
        return findings

    def _analyze_scope(
        self,
        functions: list[ast.FunctionDef | ast.AsyncFunctionDef],
        class_name: str | None,
        path: str,
    ) -> list[FlowFinding]:
        records: dict[str, _FunctionEscapes] = {}
        for function in functions:
            qualname = (
                f"{class_name}.{function.name}" if class_name else function.name
            )
            record = _FunctionEscapes(
                qualname, function.lineno, ast.get_docstring(function) or ""
            )
            collector = _Collector(record)
            # Visit the body, not the def itself — visit_FunctionDef is
            # the *nested*-def barrier and would skip everything.
            for statement in function.body:
                collector.visit(statement)
            records[function.name] = record

        names = sorted(records)

        def step(
            name: str, states: dict[str, frozenset[str]]
        ) -> frozenset[str]:
            record = records[name]
            escaping = set()
            for site in record.raises:
                if not self._caught(site.name, site.guards):
                    escaping.add(site.name)
            for call in record.calls:
                if call.callee not in records:
                    continue  # inherited / external: out of scope
                for escaped in states[call.callee]:
                    if not self._caught(escaped, call.guards):
                        escaping.add(escaped)
            return frozenset(escaping)

        escapes = fixpoint(names, lambda name: frozenset(), step)

        findings: list[FlowFinding] = []
        for name in names:
            if name.startswith("_"):
                continue  # only public entry points carry the contract
            record = records[name]
            for escaped in sorted(escapes[name]):
                if escaped in self.rooted or escaped in _PROTOCOL_EXCEPTIONS:
                    continue
                if escaped in record.docstring:
                    continue  # documented contract
                line = self._escape_line(records, name, escaped)
                findings.append(
                    FlowFinding(
                        path,
                        line if line is not None else record.lineno,
                        "REP011",
                        record.qualname,
                        f"{escaped} can escape this public entry point — "
                        f"wrap it in the ReproError hierarchy or declare it "
                        f"in the docstring's Raises section",
                    )
                )
        return findings

    @staticmethod
    def _escape_line(
        records: dict[str, _FunctionEscapes], name: str, escaped: str
    ) -> int | None:
        """The nearest raise site of ``escaped`` starting from ``name``."""
        seen: set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in records:
                continue
            seen.add(current)
            for site in records[current].raises:
                if site.name == escaped:
                    return site.lineno
            queue.extend(call.callee for call in records[current].calls)
        return None
