"""The finding record shared by every flow analysis.

Kept in its own module so the analyses (:mod:`locks`, :mod:`raises`,
:mod:`hotpath`) and the driver can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowFinding", "FLOW_RULES"]

#: Rules produced by the dataflow analyses (REP001–REP008 live in
#: :mod:`repro.analysis.lint`).
FLOW_RULES = {
    "REP009": "shared state written on a path holding no lock (dataflow)",
    "REP010": "cross-function lock-acquisition-order cycle (potential deadlock)",
    "REP011": "public entry point leaks an undeclared non-ReproError exception",
    "REP012": "allocation inside a per-query descent loop",
}


@dataclass(frozen=True)
class FlowFinding:
    """One flow-analysis finding at one source location.

    ``symbol`` is the enclosing function's qualified name (for example
    ``ShardedEngine.range_sum``); the baseline/suppression file matches
    on ``(path, rule, symbol)`` so committed suppressions survive line
    drift from unrelated edits.
    """

    path: str
    line: int
    rule: str
    symbol: str
    message: str

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.symbol)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"
