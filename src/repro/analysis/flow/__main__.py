"""``python -m repro.analysis.flow`` — run the dataflow analyses."""

import sys

from .driver import main

if __name__ == "__main__":
    sys.exit(main())
