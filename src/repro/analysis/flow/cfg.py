"""Basic-block control-flow graphs over Python function ASTs.

The flow analyses (:mod:`repro.analysis.flow.locks`,
:mod:`repro.analysis.flow.raises`, :mod:`repro.analysis.flow.hotpath`)
need to reason about *paths* through a function — which locks are held
when a statement executes, which handlers an exception can reach — and a
statement-at-a-time AST walk cannot answer that.  :func:`build_cfg`
lowers one function body into basic blocks connected by control edges:

* straight-line statements accumulate into one block;
* ``if`` / ``while`` / ``for`` fork and join (loops get a back edge,
  ``break`` / ``continue`` jump to the loop exit / header);
* ``try`` bodies get a conservative *exception edge* from every block in
  the protected region to every handler entry, and both the normal and
  the handler exits funnel through the ``finally`` blocks;
* ``with`` / ``async with`` items are desugared into explicit
  :class:`WithEnter` / :class:`WithExit` pseudo-statements, emitted on
  the normal exit *and* on every early exit (``return`` / ``break`` /
  ``continue``) that unwinds the context — this is what makes the
  lock-state analysis see ``with self._lock:`` release points exactly
  where the interpreter releases them;
* ``return`` / ``raise`` terminate their block (``raise`` additionally
  edges into the enclosing handlers, if any).

Nested ``def`` / ``class`` statements are opaque single statements here;
:mod:`repro.analysis.flow.locks` analyses nested functions separately
with the lock state captured at their definition point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "WithEnter",
    "WithExit",
    "Statement",
    "build_cfg",
]


@dataclass(frozen=True)
class WithEnter:
    """Pseudo-statement: a ``with`` item's context is being entered."""

    item: ast.withitem
    lineno: int


@dataclass(frozen=True)
class WithExit:
    """Pseudo-statement: a ``with`` item's context is being exited."""

    item: ast.withitem
    lineno: int


#: One entry in a basic block: a real statement, an ``except`` clause
#: header, or a with-item marker.
Statement = Union[ast.stmt, ast.ExceptHandler, WithEnter, WithExit]


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    index: int
    statements: list[Statement] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)

    def add_successor(self, index: int) -> None:
        if index not in self.successors:
            self.successors.append(index)


@dataclass
class ControlFlowGraph:
    """Blocks plus entry index; predecessors derived on demand."""

    function: ast.FunctionDef | ast.AsyncFunctionDef
    blocks: list[BasicBlock]
    entry: int

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {block.index: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds

    def __len__(self) -> int:
        return len(self.blocks)


@dataclass
class _Loop:
    """Break/continue targets plus the with-depth at loop entry."""

    header: int
    after: int
    with_depth: int


class _Builder:
    def __init__(self, function: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.function = function
        self.blocks: list[BasicBlock] = []
        self.loops: list[_Loop] = []
        #: Entry blocks of the handlers protecting the region being built.
        self.handlers: list[list[int]] = []
        #: With items currently open, innermost last.
        self.with_stack: list[ast.withitem] = []

    # -- plumbing ------------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, source: BasicBlock, target: BasicBlock) -> None:
        source.add_successor(target.index)

    def _raise_edges(self, block: BasicBlock) -> None:
        """Conservative may-raise edges into the enclosing handlers."""
        for handler_entries in self.handlers:
            for entry in handler_entries:
                block.add_successor(entry)

    def _unwind_withs(self, block: BasicBlock, down_to: int, lineno: int) -> None:
        """Emit WithExit markers for contexts above depth ``down_to``."""
        for item in reversed(self.with_stack[down_to:]):
            block.statements.append(WithExit(item, lineno))

    # -- statement dispatch --------------------------------------------

    def visit_body(
        self, body: list[ast.stmt], current: BasicBlock | None
    ) -> BasicBlock | None:
        """Lower ``body`` starting in ``current``; returns the live block
        at the end, or ``None`` when every path terminated."""
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break: give it its
                # own island so line numbers still resolve, but no edges.
                current = self.new_block()
            current = self.visit_statement(stmt, current)
        return current

    def visit_statement(
        self, stmt: ast.stmt, current: BasicBlock
    ) -> BasicBlock | None:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if isinstance(stmt, ast.Return):
            current.statements.append(stmt)
            self._unwind_withs(current, 0, stmt.lineno)
            return None
        if isinstance(stmt, ast.Raise):
            current.statements.append(stmt)
            self._raise_edges(current)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                loop = self.loops[-1]
                self._unwind_withs(current, loop.with_depth, stmt.lineno)
                current.add_successor(loop.after)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                loop = self.loops[-1]
                self._unwind_withs(current, loop.with_depth, stmt.lineno)
                current.add_successor(loop.header)
            return None
        # Plain statement (including nested def/class, kept opaque).
        current.statements.append(stmt)
        if self.handlers and not isinstance(
            stmt, (ast.Pass, ast.Global, ast.Nonlocal)
        ):
            self._raise_edges(current)
        return current

    # -- compound statements -------------------------------------------

    def _visit_if(self, stmt: ast.If, current: BasicBlock) -> BasicBlock | None:
        current.statements.append(stmt)  # the test, visible to transfers
        then_entry = self.new_block()
        self.edge(current, then_entry)
        then_exit = self.visit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(current, else_entry)
            else_exit = self.visit_body(stmt.orelse, else_entry)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self.new_block()
        if then_exit is not None:
            self.edge(then_exit, join)
        if else_exit is not None:
            self.edge(else_exit, join)
        return join

    def _visit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: BasicBlock
    ) -> BasicBlock:
        header = self.new_block()
        header.statements.append(stmt)  # test / iteration target
        self.edge(current, header)
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(header, body_entry)
        self.loops.append(_Loop(header.index, after.index, len(self.with_stack)))
        body_exit = self.visit_body(stmt.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            self.edge(body_exit, header)  # back edge
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(header, else_entry)
            else_exit = self.visit_body(stmt.orelse, else_entry)
            if else_exit is not None:
                self.edge(else_exit, after)
        else:
            self.edge(header, after)
        return after

    def _visit_with(
        self, stmt: ast.With | ast.AsyncWith, current: BasicBlock
    ) -> BasicBlock | None:
        depth = len(self.with_stack)
        for item in stmt.items:
            current.statements.append(WithEnter(item, stmt.lineno))
            self.with_stack.append(item)
        exit_block = self.visit_body(stmt.body, current)
        if exit_block is not None:
            end_line = getattr(stmt.body[-1], "lineno", stmt.lineno)
            self._unwind_withs(exit_block, depth, end_line)
        del self.with_stack[depth:]
        return exit_block

    def _visit_try(self, stmt: ast.Try, current: BasicBlock) -> BasicBlock | None:
        # Handler entry blocks first, so body blocks can edge into them.
        handler_entries: list[BasicBlock] = []
        for handler in stmt.handlers:
            entry = self.new_block()
            entry.statements.append(handler)  # the `except X as e:` clause
            handler_entries.append(entry)
        self.handlers.append([entry.index for entry in handler_entries])
        body_entry = self.new_block()
        self.edge(current, body_entry)
        body_exit = self.visit_body(stmt.body, body_entry)
        self.handlers.pop()

        if stmt.orelse and body_exit is not None:
            body_exit = self.visit_body(stmt.orelse, body_exit)

        handler_exits: list[BasicBlock] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_exit = self.visit_body(handler.body, entry)
            if handler_exit is not None:
                handler_exits.append(handler_exit)

        exits = [block for block in [body_exit, *handler_exits] if block is not None]
        if stmt.finalbody:
            final_entry = self.new_block()
            for block in exits:
                self.edge(block, final_entry)
            if not exits:
                # Reached only on the exceptional path; keep it wired to
                # the body entry so the finally code is not orphaned.
                self.edge(body_entry, final_entry)
            return self.visit_body(stmt.finalbody, final_entry)
        if not exits:
            return None
        join = self.new_block()
        for block in exits:
            self.edge(block, join)
        return join


def build_cfg(function: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Lower one function body into a :class:`ControlFlowGraph`."""
    builder = _Builder(function)
    entry = builder.new_block()
    builder.visit_body(function.body, entry)
    return ControlFlowGraph(function=function, blocks=builder.blocks, entry=entry.index)
