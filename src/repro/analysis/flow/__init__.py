"""CFG/dataflow analyses over the repro source tree (REP009–REP012).

The package splits along classic static-analysis lines:

* :mod:`~repro.analysis.flow.cfg` — basic-block control-flow graphs
  over function ASTs, with ``with`` desugaring and exception edges;
* :mod:`~repro.analysis.flow.dataflow` — generic forward/backward
  fixed-point solvers plus a call-graph summary fixpoint;
* :mod:`~repro.analysis.flow.locks` — held-lock-set analysis (REP009
  unguarded shared-state writes, REP010 lock-order cycles);
* :mod:`~repro.analysis.flow.raises` — escaping-exception analysis
  (REP011 undeclared non-ReproError escapes);
* :mod:`~repro.analysis.flow.hotpath` — descent-loop allocation checks
  (REP012);
* :mod:`~repro.analysis.flow.driver` — orchestration, baselines, and
  the ``python -m repro.analysis.flow`` / ``repro analyze`` entry.

Run ``repro analyze src/ --baseline benchmarks/baselines/analyze.json``
to reproduce the CI hygiene gate locally.
"""

from .cfg import BasicBlock, ControlFlowGraph, WithEnter, WithExit, build_cfg
from .dataflow import UNREACHED, fixpoint, solve_backward, solve_forward
from .driver import (
    analyze_paths,
    analyze_sources,
    baseline_document,
    filter_baseline,
    findings_document,
    load_baseline,
    main,
    render_markdown_table,
)
from .findings import FLOW_RULES, FlowFinding
from .hotpath import HOT_FUNCTIONS, allocation_findings
from .locks import GUARDED_ATTRS, LockAnalyzer, LockState
from .raises import EscapeAnalyzer, exception_hierarchy

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "UNREACHED",
    "fixpoint",
    "solve_backward",
    "solve_forward",
    "analyze_paths",
    "analyze_sources",
    "baseline_document",
    "filter_baseline",
    "findings_document",
    "load_baseline",
    "main",
    "render_markdown_table",
    "FLOW_RULES",
    "FlowFinding",
    "HOT_FUNCTIONS",
    "allocation_findings",
    "GUARDED_ATTRS",
    "LockAnalyzer",
    "LockState",
    "EscapeAnalyzer",
    "exception_hierarchy",
]
