"""Reproduction of "The Dynamic Data Cube" (Geffner, Agrawal, El Abbadi, EDBT 2000).

Public API highlights:

* :class:`~repro.core.ddc.DynamicDataCube` — the paper's contribution:
  O(log^d n) range-sum queries *and* point updates.
* :class:`~repro.core.growth.GrowableCube` — Section 5's dynamically
  growing, sparse-friendly cube over unbounded integer coordinates.
* :mod:`repro.methods` — the baselines the paper compares against
  (naive array, prefix sum, relative prefix sum) plus a d-dimensional
  Fenwick tree comparator, all behind one interface.
* :mod:`repro.olap` — the data-cube front-end from the paper's
  motivating examples (named dimensions, SUM/COUNT/AVERAGE).
* :mod:`repro.model` — the paper's analytic cost and storage model
  (Tables 1-2, Figure 1).
* :class:`~repro.engine.ShardedEngine` — the serving layer: K shards,
  thread-pool query fan-out, epoch-invalidated result cache.
* :class:`~repro.obs.Observability` — opt-in serving observability:
  span tracing, latency/op histograms with Prometheus-style exposition,
  and a slow-query log (free when disabled).
"""

from .core.basic_ddc import BasicDynamicDataCube
from .core.bc_tree import BcTree
from .core.ddc import DynamicDataCube
from .core.growth import GrowableCube
from .counters import OpCounter
from .engine import ShardedEngine
from .exceptions import ReproError
from .methods import (
    FenwickCube,
    NaiveArray,
    PrefixSumCube,
    RangeSumMethod,
    RelativePrefixSumCube,
    build_method,
    create_method,
    method_names,
)
from .obs import Observability

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BcTree",
    "BasicDynamicDataCube",
    "DynamicDataCube",
    "GrowableCube",
    "OpCounter",
    "ReproError",
    "ShardedEngine",
    "Observability",
    "RangeSumMethod",
    "NaiveArray",
    "PrefixSumCube",
    "RelativePrefixSumCube",
    "FenwickCube",
    "create_method",
    "build_method",
    "method_names",
]
