"""Conversion between range-sum structures.

A cube's workload changes over its life: a write-heavy ingest phase may
settle into a read-only analysis phase (where a prefix-sum array is
unbeatable), or a batch-loaded cube may need to go interactive (where
the Dynamic Data Cube is the only viable host).  These helpers rebuild
any structure as any other while preserving the logical array exactly.

Conversions between sparse tree structures go block-to-block so a
clustered cube never materialises its empty space; conversions into the
dense family materialise once, which is unavoidable (those structures
*are* dense).
"""

from __future__ import annotations

from .core.ddc import DynamicDataCube
from .methods.base import RangeSumMethod
from .methods.registry import method_class

__all__ = ["convert", "rebuild"]


def convert(method: RangeSumMethod, target: str, **target_options) -> RangeSumMethod:
    """Rebuild ``method``'s logical array under the ``target`` method.

    ``target_options`` are forwarded to the target's constructor
    (``leaf_side``, ``block_side``, ``bc_fanout``, ...).  The source is
    left untouched.
    """
    target_class = method_class(target)
    sparse_source = isinstance(method, DynamicDataCube)
    sparse_target = issubclass(target_class, DynamicDataCube)
    if sparse_source and sparse_target:
        converted = target_class(
            method.shape, dtype=method.dtype, **target_options
        )
        converted.add_many(list(method.iter_nonzero()))
        return converted
    dense = method.to_dense()
    return target_class.from_array(dense, dtype=method.dtype, **target_options)


def rebuild(cube: DynamicDataCube, **new_options) -> DynamicDataCube:
    """Re-parameterise a (Basic) Dynamic Data Cube in place of options.

    Unspecified options are carried over from the source, so
    ``rebuild(cube, leaf_side=8)`` re-levels a cube without touching its
    fanout or secondary kind.  Returns a new cube of the same class.
    """
    options = {
        "leaf_side": cube.leaf_side,
        "secondary_kind": cube.secondary_kind,
        "bc_fanout": cube.bc_fanout,
    }
    options.update(new_options)
    return convert(cube, type(cube).name, **options)
