"""Shared-memory segment hygiene helpers used by every shm owner/attacher.

Two subsystems map ``multiprocessing.shared_memory`` segments across the
worker-pool boundary: the shard slab store (:mod:`repro.engine.shm`) and
the per-worker telemetry shards (:mod:`repro.obs.remote`).  Both need
the same attach discipline — map an existing segment by name *without*
registering it with the attaching process's resource tracker, because
the segment has exactly one owner (the parent) who unlinks it
deterministically.  Letting every attacher's tracker also claim the
name would double-unlink and warn at interpreter exit, or worse, unlink
a live segment when a spawned worker is killed.

This module is deliberately dependency-free (no engine or obs imports)
so both sides can share it without an import cycle.
"""

from __future__ import annotations

from multiprocessing import shared_memory

__all__ = ["attach_segment"]


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name, untracked.

    The attach is untracked: the owner process unlinks segments
    deterministically, and letting each attacher's resource tracker
    also claim the name would double-unlink and warn at interpreter
    exit (``track=`` exists only from Python 3.13, hence the fallback
    unregister).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        # Pre-3.13 attach always registers with a resource tracker.  A
        # *forked* worker shares the owner's tracker, so the extra
        # registration is a harmless duplicate and unregistering would
        # strip the owner's own entry (double-unregister noise at
        # destroy time).  A *spawned* worker starts its own tracker —
        # there the registration must go, or the tracker unlinks the
        # live segment when the worker is killed.
        fresh_tracker = not _tracker_running()
        segment = shared_memory.SharedMemory(name=name)
        if fresh_tracker:
            _untrack(segment)
        return segment


def _tracker_running() -> bool:
    """True when this process already has a live resource tracker."""
    try:  # pragma: no cover - interpreter-internals dependent
        from multiprocessing import resource_tracker

        return getattr(resource_tracker._resource_tracker, "_fd", None) is not None  # noqa: SLF001
    except Exception:  # noqa: BLE001 - conservative default
        return True


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Remove an attached segment from this process's resource tracker."""
    try:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 - best-effort hygiene only
        pass
