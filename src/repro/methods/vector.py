"""Vectorised b-ary descent method over contiguous level slabs.

:class:`VectorSlabCube` wraps :class:`~repro.core.slab_tree.SlabTree`
in the standard :class:`~repro.methods.base.RangeSumMethod` contract:
the pure-python :class:`~repro.core.ddc.DynamicDataCube` stays the
*reference* implementation of the paper's algorithm, and this backend
is the production descent core — the same b-ary recursion stored as
flat numpy slabs and walked branch-free, one fancy-index gather per
level for a whole query batch at once.

Cost accounting matches the reference's model: every prefix sum charges
one ``node_visit`` and one ``cell_read`` per level slab (the descent
touches exactly one cell per level), and updates charge the cells their
sibling-suffix rectangles actually write — identical totals whether a
batch runs the vectorised path or the adaptive scalar fallback, so the
benchmark counters stay deterministic across crossover decisions.
"""

from __future__ import annotations

from typing import Any, ClassVar, Sequence

import numpy as np

from .. import geometry
from ..core.slab_tree import SlabTree, kernel_backend
from .base import RangeSumMethod

__all__ = ["VectorSlabCube"]

Array = np.ndarray[Any, np.dtype[Any]]


class VectorSlabCube(RangeSumMethod):
    """b-ary level-slab cube with branch-free batched traversal.

    Args:
        shape: logical cube shape.
        dtype: stored value dtype.
        branching: slab-tree branching factor (power of two, default 16
            — one node's children span two cache lines of int64).
    """

    name: ClassVar[str] = "vector"
    #: Crossover resolved by the one-shot calibration probe (the batch
    #: path's setup is a handful of small array ops, so the probe lands
    #: low — but the decision is measured, not asserted).
    batch_crossover: ClassVar[int | str] = "auto"
    #: Process-mode engines serve shards from shared-memory prefix
    #: slabs; this marker selects the vectorised read kernel for them
    #: (see ``repro.engine.shm.get_read_kernel``).
    slab_kernel: ClassVar[str] = "vector"

    def __init__(
        self,
        shape: Sequence[int],
        dtype: Any = np.int64,
        branching: int = 16,
    ) -> None:
        super().__init__(shape, dtype=dtype)
        self.tree = SlabTree(self.shape, dtype=self.dtype, branching=branching)

    @classmethod
    def from_array(cls, array: Array, **kwargs: Any) -> "VectorSlabCube":
        """Vectorised bulk build: one blockwise projection per slab."""
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        method.tree.load_dense(array.astype(method.dtype, copy=False))
        method.stats.cell_writes += method.tree.memory_cells()
        return method

    @property
    def kernel(self) -> str:
        """Live gather backend: ``"numba"`` or ``"numpy"``."""
        return kernel_backend()

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------

    def prefix_sum(self, cell: Sequence[int] | int) -> Any:
        cell = geometry.normalize_cell(cell, self.shape)
        levels = self.tree.level_count
        self.stats.node_visits += levels
        self.stats.cell_reads += levels
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="slab-tree", op="prefix").observe(
                levels
            )
        return self.tree.prefix_one(cell)

    def add(self, cell: Sequence[int] | int, delta: Any) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        written = self.tree.add_one(cell, self._native(delta))
        self.stats.node_visits += self.tree.level_count
        self.stats.cell_writes += written
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="slab-tree", op="add").observe(
                self.tree.level_count
            )

    # ------------------------------------------------------------------
    # Batch paths
    # ------------------------------------------------------------------

    def prefix_sum_many(self, cells: Sequence[Any]) -> list[Any]:
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if not self._use_batch_path(len(normalized)):
            return [self.prefix_sum(cell) for cell in normalized]
        coords = np.asarray(normalized, dtype=np.int64).reshape(
            len(normalized), self.dims
        )
        levels = self.tree.level_count
        self.stats.node_visits += levels * len(normalized)
        self.stats.cell_reads += levels * len(normalized)
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="slab-tree", op="prefix").observe(
                levels
            )
        return list(self.tree.prefix_many(coords))

    def range_sum_many(self, ranges: Sequence[Any]) -> list[Any]:
        bounds = [self._query_bounds(item) for item in ranges]
        if not self._use_batch_path(len(bounds)):
            return [self.range_sum(low, high) for low, high in bounds]
        lows = np.asarray([low for low, _ in bounds], dtype=np.int64).reshape(
            len(bounds), self.dims
        )
        highs = np.asarray([high for _, high in bounds], dtype=np.int64).reshape(
            len(bounds), self.dims
        )
        levels = self.tree.level_count
        corners = self.tree.valid_corner_count(lows)
        self.stats.node_visits += levels * corners
        self.stats.cell_reads += levels * corners
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="slab-tree", op="prefix").observe(
                levels
            )
        return list(self.tree.range_many(lows, highs))

    def add_many(self, updates: Sequence[tuple[Any, Any]]) -> None:
        combined = self._combined_updates(updates)
        if not combined:
            return
        if not self._use_batch_path(len(combined)):
            for cell, delta in combined:
                self.add(cell, delta)
            return
        cells = np.asarray([cell for cell, _ in combined], dtype=np.int64)
        deltas = np.asarray(
            [self._native(delta) for _, delta in combined], dtype=self.dtype
        )
        written = self.tree.add_batch(cells, deltas)
        self.stats.node_visits += self.tree.level_count * len(combined)
        self.stats.cell_writes += written
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="slab-tree", op="add").observe(
                self.tree.level_count
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def memory_cells(self) -> int:
        return self.tree.memory_cells()

    def validate(self) -> None:
        """Audit hook: re-derive every level slab from the implied cube.

        Raises :class:`~repro.exceptions.StructureError` on any
        inconsistent slab cell (see :meth:`SlabTree.validate`).
        """
        self.tree.validate()

    def _native(self, delta: Any) -> Any:
        """Coerce a delta into the slab dtype's scalar domain."""
        return self.dtype.type(delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorSlabCube(shape={self.shape}, dtype={self.dtype}, "
            f"branching={self.tree.branching}, kernel={self.kernel!r})"
        )
