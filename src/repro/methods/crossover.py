"""One-shot batch-crossover calibration probe.

Every method has a batch size below which its shared-work batch path
(vectorised gathers, path-sharing descents) loses to the plain scalar
loop — the per-call setup never amortises.  Earlier revisions pinned
that threshold per class with hand-tuned constants measured on one
machine; this module replaces them with a measured decision: the first
time a method with ``batch_crossover = "auto"`` dispatches a batch, a
small probe cube is built, both paths are timed at a few geometric
batch sizes, and the smallest size where the batch path wins becomes
the class's crossover on this machine.  The result is cached per
``(class, dims)``, so the probe runs once per process — a few
milliseconds, paid on the first batch call, never on the hot path.

The probe is observable and overridable:

* ``REPRO_BATCH_CROSSOVER=<int>`` pins every auto-calibrated method to
  one threshold (deterministic CI runs, A/B experiments);
* :func:`calibration_report` returns the measured table so benchmarks
  can record *why* a crossover landed where it did;
* per-instance ``batch_crossover_override`` bypasses the probe
  entirely (the benchmarks use it to audit the batch path below the
  crossover).

Timing uses the observability clock wrapper, never ``time.*`` directly
(project rule REP008).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs.clock import MonotonicClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import RangeSumMethod

__all__ = [
    "PROBE_BATCH_SIZES",
    "calibrated_crossover",
    "calibration_report",
    "reset_calibration",
]

#: Geometric ladder of batch sizes the probe times both paths at.
PROBE_BATCH_SIZES = (4, 16, 64, 256)

#: Probe cube side per axis — big enough that tree descents have real
#: depth, small enough that the probe costs milliseconds.
_PROBE_SIDE = 32

_REPS = 2

_CACHE: dict[tuple[type, int], int] = {}
_REPORT: dict[tuple[str, int], list[dict[str, Any]]] = {}

_CLOCK = MonotonicClock()


def reset_calibration() -> None:
    """Drop every cached probe result (tests re-calibrate after this)."""
    _CACHE.clear()
    _REPORT.clear()


def calibration_report() -> dict[str, list[dict[str, Any]]]:
    """Measured probe rows per calibrated ``"<method>/<dims>d"`` key."""
    return {
        f"{name}/{dims}d": rows for (name, dims), rows in sorted(_REPORT.items())
    }


def calibrated_crossover(cls: "type[RangeSumMethod]", dims: int) -> int:
    """The measured batch/scalar threshold for ``cls`` at ``dims`` axes.

    Returns the smallest probed batch size whose batch path beat the
    scalar loop (and every larger probed size also did); if the batch
    path never won, one past the largest probed size — i.e. batches up
    to 256 stay scalar, larger ones are trusted to amortise.
    """
    pinned = os.environ.get("REPRO_BATCH_CROSSOVER")
    if pinned:
        return max(1, int(pinned))
    key = (cls, dims)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    # Publish a provisional threshold before probing: the probe itself
    # issues *_many calls, and the instance-level override it sets must
    # not recurse into calibration.
    _CACHE[key] = PROBE_BATCH_SIZES[-1]
    try:
        crossover, rows = _probe(cls, dims)
    except Exception:  # pragma: no cover - probe must never break serving
        del _CACHE[key]
        raise
    _CACHE[key] = crossover
    _REPORT[(cls.name, dims)] = rows
    return crossover


def _probe(cls: "type[RangeSumMethod]", dims: int) -> tuple[int, list[dict[str, Any]]]:
    """Time both paths on a probe cube; returns (crossover, rows)."""
    rng = np.random.default_rng(1729)
    shape = (_PROBE_SIDE,) * dims
    data = rng.integers(0, 10, size=shape)
    method = cls.from_array(data)
    rows: list[dict[str, Any]] = []
    crossover = PROBE_BATCH_SIZES[-1] + 1
    for size in reversed(PROBE_BATCH_SIZES):
        cells = [
            tuple(int(value) for value in row)
            for row in rng.integers(0, _PROBE_SIDE, size=(size, dims))
        ]
        batch_seconds = _time_path(method, cells, force_batch=True)
        scalar_seconds = _time_path(method, cells, force_batch=False)
        rows.append(
            {
                "batch": size,
                "batch_seconds": batch_seconds,
                "scalar_seconds": scalar_seconds,
                "batch_wins": batch_seconds <= scalar_seconds,
            }
        )
        if batch_seconds <= scalar_seconds:
            crossover = size
        else:
            # Sizes below a loss would only be noisier; stop descending.
            break
    rows.reverse()
    return crossover, rows


def _time_path(
    method: "RangeSumMethod", cells: list[tuple[int, ...]], force_batch: bool
) -> float:
    """Best-of-reps wall time for one path over one probe batch."""
    best = float("inf")
    if force_batch:
        method.batch_crossover_override = 1
        try:
            method.prefix_sum_many(cells)  # warm-up: first-touch setup
            for _ in range(_REPS):
                start = _CLOCK.now()
                method.prefix_sum_many(cells)
                best = min(best, _CLOCK.now() - start)
        finally:
            method.batch_crossover_override = None
        return best
    for cell in cells:
        method.prefix_sum(cell)
    for _ in range(_REPS):
        start = _CLOCK.now()
        for cell in cells:
            method.prefix_sum(cell)
        best = min(best, _CLOCK.now() - start)
    return best
