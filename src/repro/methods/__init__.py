"""Range-sum methods: the paper's baselines plus the Fenwick comparator."""

from .base import RangeSumMethod
from .fenwick import FenwickCube
from .naive import NaiveArray
from .prefix_sum import PrefixSumCube
from .relative_prefix_sum import RelativePrefixSumCube
from .segment_tree import SegmentTreeCube
from .vector import VectorSlabCube
from .registry import (
    METHODS,
    build_method,
    create_method,
    make_factory,
    method_class,
    method_names,
    register_method,
)

__all__ = [
    "RangeSumMethod",
    "NaiveArray",
    "PrefixSumCube",
    "RelativePrefixSumCube",
    "SegmentTreeCube",
    "FenwickCube",
    "VectorSlabCube",
    "METHODS",
    "method_class",
    "create_method",
    "build_method",
    "register_method",
    "method_names",
    "make_factory",
]
