"""d-dimensional segment tree baseline.

The second textbook O(log^d n) comparator (alongside the Fenwick tree):
a nested segment tree answers *arbitrary* range sums directly — no
prefix-sum inclusion-exclusion — by decomposing each dimension's range
into O(log n) canonical nodes and summing the cross product of node
cells.  The price is storage: every dimension doubles the array, so the
structure holds ``(2 n_pad)^d`` cells, ~2^d times the cube.

Like the Fenwick tree, it is dense and fixed-size: no growth, no
sparsity — which is precisely the gap the Dynamic Data Cube fills.
Included for the novelty ablation (experiment A1 in DESIGN.md).
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from .. import geometry
from .base import RangeSumMethod, masked_path_gather

__all__ = ["SegmentTreeCube"]


def _update_path(index: int, size: int) -> list[int]:
    """Tree cells covering leaf ``index`` (leaf-to-root), 0-based array."""
    path = []
    position = index + size
    while position >= 1:
        path.append(position)
        position //= 2
    return path


def _cover_nodes(low: int, high: int, size: int) -> list[int]:
    """Canonical nodes exactly covering the inclusive leaf range."""
    nodes = []
    left = low + size
    right = high + size + 1  # exclusive
    while left < right:
        if left & 1:
            nodes.append(left)
            left += 1
        if right & 1:
            right -= 1
            nodes.append(right)
        left //= 2
        right //= 2
    return nodes


class SegmentTreeCube(RangeSumMethod):
    """Nested segment trees: O(log^d n) queries and updates, dense storage."""

    name = "segtree"
    #: Like the Fenwick gather, the padded canonical-cover gather visits
    #: every level combination regardless of batch size; calibrated.
    batch_crossover = "auto"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        super().__init__(shape, dtype)
        self._sizes = tuple(geometry.next_power_of_two(n) for n in self.shape)
        self._tree = np.zeros(tuple(2 * s for s in self._sizes), dtype=self.dtype)

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "SegmentTreeCube":
        """Bulk build: seed the leaves, then sum each level, axis by axis."""
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        tree = method._tree
        leaf_region = tuple(
            slice(size, size + n) for size, n in zip(method._sizes, array.shape)
        )
        tree[leaf_region] = array
        for axis, size in enumerate(method._sizes):
            moved = np.moveaxis(tree, axis, 0)
            for position in range(size - 1, 0, -1):
                moved[position] = moved[2 * position] + moved[2 * position + 1]
        method.stats.cell_writes += tree.size
        return method

    def add(self, cell: Sequence[int] | int, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        delta = self.dtype.type(delta)
        paths = [
            _update_path(coordinate, size)
            for coordinate, size in zip(cell, self._sizes)
        ]
        for index in product(*paths):
            self._tree[index] += delta
            self.stats.cell_writes += 1

    def get(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        leaf = tuple(c + s for c, s in zip(cell, self._sizes))
        self.stats.cell_reads += 1
        return self.dtype.type(self._tree[leaf])

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        """Direct canonical-node decomposition — no prefix subtraction."""
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        covers = [
            _cover_nodes(lo, hi, size)
            for lo, hi, size in zip(low_cell, high_cell, self._sizes)
        ]
        result = self._zero()
        for index in product(*covers):
            result += self._tree[index]
            self.stats.cell_reads += 1
        return self.dtype.type(result)

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        return self.range_sum((0,) * self.dims, cell)

    def range_sum_many(self, ranges: Sequence) -> list:
        """Batch ranges via padded canonical-node gathers.

        The per-query canonical covers along each axis are padded to the
        batch-wide maximum width, so the whole batch is answered with one
        vectorised gather per *level combination* instead of one scalar
        read per (query, node cross product) pair.
        """
        queries = [self._query_bounds(item) for item in ranges]
        if not queries:
            return []
        if not self._use_batch_path(len(queries)):
            return [self.range_sum(low, high) for low, high in queries]  # noqa: REP006 — adaptive crossover: below batch_crossover the scalar cover walks beat the padded gather
        count = len(queries)
        axis_paths: list[tuple[np.ndarray, np.ndarray]] = []
        lengths = np.ones(count, dtype=np.int64)
        for axis, size in enumerate(self._sizes):
            covers = [
                _cover_nodes(low[axis], high[axis], size) for low, high in queries
            ]
            width = max(len(nodes) for nodes in covers)
            indices = np.zeros((count, width), dtype=np.intp)
            mask = np.zeros((count, width), dtype=bool)
            for row, nodes in enumerate(covers):
                indices[row, : len(nodes)] = nodes
                mask[row, : len(nodes)] = True
            axis_paths.append((indices, mask))
            lengths *= mask.sum(axis=1)
        self.stats.cell_reads += int(lengths.sum())
        result = masked_path_gather(self._tree, axis_paths, count, self.dtype)
        return list(result)

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch prefix queries as origin-anchored batch range queries."""
        origin = (0,) * self.dims
        return self.range_sum_many(
            [(origin, geometry.normalize_cell(cell, self.shape)) for cell in cells]
        )

    def memory_cells(self) -> int:
        return self._tree.size
