"""d-dimensional Fenwick (binary indexed) tree baseline.

Not part of the paper, but the natural point of comparison for its
novelty claim: a d-dimensional Fenwick tree also answers prefix sums and
point updates in O(log^d n) using exactly ``n^d`` stored cells.  The
ablation benchmarks (experiment A1 in DESIGN.md) measure the Dynamic
Data Cube against it to quantify what the DDC's extra machinery buys —
dynamic growth and graceful sparsity — and what it costs in constants.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

import numpy as np

from .. import geometry
from .base import RangeSumMethod, masked_path_gather

__all__ = ["FenwickCube"]


def _update_path(index: int, size: int) -> Iterator[int]:
    """0-based cells whose partial sums cover ``index`` (ascending walk)."""
    position = index + 1
    while position <= size:
        yield position - 1
        position += position & (-position)


def _query_path(index: int) -> Iterator[int]:
    """0-based cells whose partial sums compose ``prefix(index)``."""
    position = index + 1
    while position > 0:
        yield position - 1
        position -= position & (-position)


class FenwickCube(RangeSumMethod):
    """d-dimensional binary indexed tree: O(log^d n) queries and updates."""

    name = "fenwick"
    #: The per-level gather visits every level *combination* regardless
    #: of batch size — prod_i log2(n_i) vectorised reads — so small
    #: batches are much cheaper as plain path walks; the probe measures
    #: where the gather starts to win.
    batch_crossover = "auto"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        super().__init__(shape, dtype)
        self._tree = np.zeros(self.shape, dtype=self.dtype)

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "FenwickCube":
        """Bulk build in O(n^d) via the in-place parent-propagation trick.

        Along each axis independently, every position donates its partial
        sum to its Fenwick parent — the standard linear-time construction,
        applied axis by axis.
        """
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        tree = array.astype(method.dtype, copy=True)
        for axis, size in enumerate(method.shape):
            moved = np.moveaxis(tree, axis, 0)
            for position in range(1, size + 1):
                parent = position + (position & (-position))
                if parent <= size:
                    moved[parent - 1] += moved[position - 1]
        method._tree = tree
        method.stats.cell_writes += tree.size
        return method

    def add(self, cell: Sequence[int] | int, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        delta = self.dtype.type(delta)
        paths = [list(_update_path(c, n)) for c, n in zip(cell, self.shape)]
        for index in product(*paths):
            self._tree[index] += delta
            self.stats.cell_writes += 1

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        result = self._zero()
        paths = [list(_query_path(c)) for c in cell]
        for index in product(*paths):
            result += self._tree[index]
            self.stats.cell_reads += 1
        return self.dtype.type(result)

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch queries via a loop-free per-level gather.

        The per-axis query paths for the whole batch are derived
        together: start at ``cell + 1`` for every query at once and
        repeatedly clear the lowest set bit (a vectorised
        ``p -= p & -p``), recording one padded index column per level.
        The tree is then gathered once per level *combination* — at most
        ``prod_i ceil(log2 n_i + 1)`` vectorised reads regardless of the
        batch size.
        """
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if not normalized:
            return []
        if not self._use_batch_path(len(normalized)):
            return [self.prefix_sum(cell) for cell in normalized]  # noqa: REP006 — adaptive crossover: below batch_crossover the scalar path walks beat the full level-combination gather
        count = len(normalized)
        coords = np.array(normalized, dtype=np.int64)
        axis_paths: list[tuple[np.ndarray, np.ndarray]] = []
        lengths = np.ones(count, dtype=np.int64)
        for axis in range(self.dims):
            position = coords[:, axis] + 1
            level_indices = []
            level_masks = []
            while np.any(position > 0):
                active = position > 0
                level_indices.append(np.where(active, position - 1, 0))
                level_masks.append(active)
                position = position - (position & -position)
            indices = np.stack(level_indices, axis=1)
            masks = np.stack(level_masks, axis=1)
            axis_paths.append((indices, masks))
            lengths *= masks.sum(axis=1)
        self.stats.cell_reads += int(lengths.sum())
        result = masked_path_gather(self._tree, axis_paths, count, self.dtype)
        return list(result)

    def add_many(self, updates) -> None:
        """Adaptive batch update.

        Point updates cost O(log^d n) each, a full rebuild pass costs
        O(n^d); the batch takes whichever is cheaper for its size.
        """
        combined = self._combined_updates(updates)
        if not combined:
            return
        per_update = 1
        for size in self.shape:
            per_update *= max(size.bit_length(), 1)
        if len(combined) * per_update < self._tree.size:
            for cell, delta in combined:
                self.add(cell, delta)  # noqa: REP006 — below the crossover, polylog point updates beat the rebuild pass
            return
        deltas = self._delta_array(combined)
        other = type(self).from_array(deltas, dtype=self.dtype)
        self._tree += other._tree
        self.stats.cell_writes += self._tree.size

    def memory_cells(self) -> int:
        return self._tree.size
