"""Name-based registry of every range-sum method.

The OLAP layer, the examples, and the benchmark harness all select
methods by short name, so the paper's comparisons ("PS vs RPS vs DDC")
read the same in code as they do in Table 1.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..exceptions import UnknownMethodError
from .base import RangeSumMethod
from .fenwick import FenwickCube
from .naive import NaiveArray
from .prefix_sum import PrefixSumCube
from .relative_prefix_sum import RelativePrefixSumCube
from .segment_tree import SegmentTreeCube
from .vector import VectorSlabCube

__all__ = [
    "METHODS",
    "method_class",
    "create_method",
    "build_method",
    "register_method",
    "method_names",
    "make_factory",
]

METHODS: dict[str, type[RangeSumMethod]] = {
    NaiveArray.name: NaiveArray,
    PrefixSumCube.name: PrefixSumCube,
    RelativePrefixSumCube.name: RelativePrefixSumCube,
    FenwickCube.name: FenwickCube,
    SegmentTreeCube.name: SegmentTreeCube,
    VectorSlabCube.name: VectorSlabCube,
}


def _ensure_core_registered() -> None:
    """Register the DDC classes on first use.

    The core package imports :mod:`repro.methods.base`, so importing the
    core classes here at module load time would create an import cycle;
    instead they join the registry lazily.
    """
    if "ddc" in METHODS:
        return
    from ..core.basic_ddc import BasicDynamicDataCube
    from ..core.ddc import DynamicDataCube

    METHODS[BasicDynamicDataCube.name] = BasicDynamicDataCube
    METHODS[DynamicDataCube.name] = DynamicDataCube


def method_class(name: str) -> type[RangeSumMethod]:
    """Look up a method class by registry name."""
    _ensure_core_registered()
    try:
        return METHODS[name]
    except KeyError:
        known = ", ".join(sorted(METHODS))
        raise UnknownMethodError(f"unknown method {name!r}; known methods: {known}") from None


def create_method(name: str, shape: Sequence[int], **kwargs) -> RangeSumMethod:
    """Instantiate an empty method of the given name over ``shape``."""
    return method_class(name)(shape, **kwargs)


def build_method(name: str, array, **kwargs) -> RangeSumMethod:
    """Bulk-build a method of the given name from a dense array."""
    return method_class(name).from_array(array, **kwargs)


def register_method(cls: type[RangeSumMethod]) -> type[RangeSumMethod]:
    """Register a user-provided method class (usable as a decorator)."""
    METHODS[cls.name] = cls
    return cls


def method_names() -> list[str]:
    """All registered method names, sorted."""
    _ensure_core_registered()
    return sorted(METHODS)


def make_factory(name: str, **kwargs) -> Callable[[Sequence[int]], RangeSumMethod]:
    """A shape -> instance factory with options pre-bound (for benches)."""

    def factory(shape: Sequence[int]) -> RangeSumMethod:
        return create_method(name, shape, **kwargs)

    factory.__name__ = f"make_{name}"
    return factory
