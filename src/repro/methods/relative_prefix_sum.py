"""The relative prefix sum method of Geffner, Agrawal, El Abbadi, Smith (GAES99).

RPS keeps the prefix-sum method's O(1) queries while cutting the
worst-case update from O(n^d) to O(n^(d/2)).  The cube is partitioned
into blocks of side ``k ~ sqrt(n)``; prefix information is split into a
*local* component (prefix sums relative to each block's anchor) plus
*boundary* components describing everything before the block, so an
update never cascades past block boundaries in any single component.

Decomposition.  For a cell ``x`` in the block anchored at ``a``, the
global prefix region ``[0, x]`` factors per dimension into
``[0, a_i - 1] ∪ [a_i, x_i]``; expanding the product gives ``2^d``
disjoint sub-regions, indexed by the subset ``S`` of dimensions taking
the within-block part:

* ``S = all dims`` → the local relative prefix ``RP[x]`` (one array);
* every proper subset ``S`` → a *boundary family* ``F_S`` holding, for
  each block and each within-block offset along the dims in ``S``, the
  sum of the region that is block-cumulative in ``S`` and
  complete-before-block elsewhere.

A query reads one cell from each of the ``2^d`` components.  An update to
``A[x]`` touches, in each component, only cells that are in ``x``'s block
along the ``S`` dimensions and in strictly later blocks elsewhere —
``O(k^|S| * (n/k)^(d-|S|)) = O(n^(d/2))`` cells with ``k = sqrt(n)``.

Layout note (documented substitution): GAES99 packs the boundary
families into the zero-faces of each block of a single overlay array; we
store them as separate dense arrays.  Storage, query accesses, and update
complexity are identical up to constants, and the explicit layout makes
the structure independently verifiable.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .. import geometry
from ..exceptions import DimensionMismatchError, InvalidShapeError
from .base import RangeSumMethod

__all__ = ["RelativePrefixSumCube"]


class RelativePrefixSumCube(RangeSumMethod):
    """GAES99 relative prefix sums: O(1) queries, O(n^(d/2)) updates.

    Args:
        shape: logical cube shape.
        dtype: stored value dtype.
        block_side: within-block side length per dimension; defaults to
            ``round(sqrt(n_i))`` per dimension, the paper's optimum.
    """

    name = "rps"
    #: Each query needs 2^d component reads, so the gathers amortise
    #: sooner than for the plain prefix-sum cube (the probe lands low).
    batch_crossover = "auto"

    def __init__(
        self,
        shape: Sequence[int],
        dtype=np.int64,
        block_side: int | Sequence[int] | None = None,
    ) -> None:
        super().__init__(shape, dtype)
        self.block_side = self._resolve_block_side(block_side)
        self.block_counts = tuple(
            -(-n // k) for n, k in zip(self.shape, self.block_side)
        )
        padded = tuple(m * k for m, k in zip(self.block_counts, self.block_side))
        self._padded = padded
        self._local = np.zeros(padded, dtype=self.dtype)
        self._families: dict[int, np.ndarray] = {}
        full_mask = (1 << self.dims) - 1
        for mask in range(full_mask):
            family_shape = tuple(
                padded[axis] if mask >> axis & 1 else self.block_counts[axis]
                for axis in range(self.dims)
            )
            self._families[mask] = np.zeros(family_shape, dtype=self.dtype)

    def _resolve_block_side(
        self, block_side: int | Sequence[int] | None
    ) -> tuple[int, ...]:
        if block_side is None:
            return tuple(max(1, round(math.sqrt(n))) for n in self.shape)
        if isinstance(block_side, int):
            block_side = (block_side,) * self.dims
        block_side = tuple(int(k) for k in block_side)
        if len(block_side) != self.dims:
            raise DimensionMismatchError(
                f"block_side has {len(block_side)} entries for {self.dims} dimensions"
            )
        if any(k < 1 for k in block_side):
            raise InvalidShapeError(f"block sides must be positive, got {block_side}")
        return block_side

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "RelativePrefixSumCube":
        """Vectorised bulk build from a dense array."""
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        padded = np.zeros(method._padded, dtype=method.dtype)
        padded[tuple(slice(0, n) for n in array.shape)] = array

        method._local = _blockwise_prefix(padded, method.block_side)
        border = _bordered_prefix(padded)
        for mask, family in method._families.items():
            method._families[mask] = method._build_family(mask, family.shape, border)
        method.stats.cell_writes += method.memory_cells()
        return method

    def _build_family(
        self, mask: int, family_shape: tuple[int, ...], border: np.ndarray
    ) -> np.ndarray:
        """Evaluate one boundary family from the zero-bordered global prefix.

        Inclusion-exclusion runs only over subsets of ``mask``: the
        before-block dimensions start at 0, so their low-corner terms hit
        the zero border and vanish.
        """
        in_mask = [axis for axis in range(self.dims) if mask >> axis & 1]
        base_vectors: list[np.ndarray] = []
        anchor_vectors: dict[int, np.ndarray] = {}
        for axis in range(self.dims):
            k = self.block_side[axis]
            if mask >> axis & 1:
                positions = np.arange(self._padded[axis])
                base_vectors.append(positions + 1)  # high corner, exclusive border index
                anchor_vectors[axis] = (positions // k) * k  # low corner
            else:
                blocks = np.arange(self.block_counts[axis])
                base_vectors.append(blocks * k)  # (anchor - 1) + 1 in border index space
        family = np.zeros(family_shape, dtype=self.dtype)
        for submask_bits in range(1 << len(in_mask)):
            vectors = list(base_vectors)
            sign = 1
            for position, axis in enumerate(in_mask):
                if submask_bits >> position & 1:
                    sign = -sign
                    vectors[axis] = anchor_vectors[axis]
            term = border[np.ix_(*vectors)]
            family = family + sign * term
        return family

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def prefix_sum(self, cell: Sequence[int] | int):
        """One read per component: ``2^d`` cell accesses total."""
        cell = geometry.normalize_cell(cell, self.shape)
        blocks = tuple(c // k for c, k in zip(cell, self.block_side))
        result = self.dtype.type(self._local[cell])
        self.stats.cell_reads += 1
        for mask, family in self._families.items():
            index = tuple(
                cell[axis] if mask >> axis & 1 else blocks[axis]
                for axis in range(self.dims)
            )
            result += family[index]
            self.stats.cell_reads += 1
        return self.dtype.type(result)

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch queries as ``2^d`` fancy-index gathers — O(1) per query.

        Each component contributes one vectorised gather over the whole
        batch: the local array indexed by the cells themselves, each
        boundary family indexed by cell coordinates on its within-block
        dimensions and block numbers elsewhere.
        """
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if not normalized:
            return []
        if not self._use_batch_path(len(normalized)):
            return [self.prefix_sum(cell) for cell in normalized]  # noqa: REP006 — adaptive crossover: below batch_crossover the 2^d scalar reads beat the gather setup
        coords = np.array(normalized, dtype=np.intp)
        blocks = coords // np.array(self.block_side, dtype=np.intp)
        gathered = self._local[tuple(coords.T)].astype(self.dtype, copy=True)
        self.stats.cell_reads += len(normalized)
        for mask, family in self._families.items():
            index = tuple(
                coords[:, axis] if mask >> axis & 1 else blocks[:, axis]
                for axis in range(self.dims)
            )
            gathered += family[index]
            self.stats.cell_reads += len(normalized)
        return [self.dtype.type(value) for value in gathered]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, cell: Sequence[int] | int, delta) -> None:
        """Update every component cell whose region contains ``cell``.

        Per component the touched cells form one rectangular slice:
        within-block tail positions along the ``S`` dimensions, strictly
        later blocks elsewhere — never more than O(n^(d/2)) cells.
        """
        cell = geometry.normalize_cell(cell, self.shape)
        delta = self.dtype.type(delta)
        blocks = tuple(c // k for c, k in zip(cell, self.block_side))

        local_slices = tuple(
            slice(c, (b + 1) * k)
            for c, b, k in zip(cell, blocks, self.block_side)
        )
        self._local[local_slices] += delta
        self.stats.cell_writes += _slice_volume(local_slices, self._padded)

        for mask, family in self._families.items():
            slices = []
            for axis in range(self.dims):
                if mask >> axis & 1:
                    k = self.block_side[axis]
                    slices.append(slice(cell[axis], (blocks[axis] + 1) * k))
                else:
                    slices.append(slice(blocks[axis] + 1, self.block_counts[axis]))
            slices = tuple(slices)
            volume = _slice_volume(slices, family.shape)
            if volume == 0:
                continue
            family[slices] += delta
            self.stats.cell_writes += volume

    def add_many(self, updates) -> None:
        """Batch update by absorbing a same-layout delta structure.

        A second RPS structure is bulk-built over the combined delta
        array (vectorised) and its components are folded in element-wise
        — O(n^d) for the whole batch.  Small batches fall back to the
        per-update path, which is cheaper while
        ``m * n^(d/2) < n^d``.
        """
        combined = self._combined_updates(updates)
        if not combined:
            return
        side = max(self.shape)
        sequential_cost = len(combined) * max(int(side ** (self.dims / 2)), 1)
        if sequential_cost < self._local.size:
            for cell, delta in combined:
                self.add(cell, delta)  # noqa: REP006 — below the crossover, per-update slices beat the full-cube pass
            return
        deltas = self._delta_array(combined)
        other = type(self).from_array(
            deltas, dtype=self.dtype, block_side=self.block_side
        )
        self._local += other._local
        for mask, family in self._families.items():
            family += other._families[mask]
        self.stats.cell_writes += self.memory_cells()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def memory_cells(self) -> int:
        return self._local.size + sum(f.size for f in self._families.values())


def _blockwise_prefix(padded: np.ndarray, block_side: Sequence[int]) -> np.ndarray:
    """Prefix sums computed independently inside each block (the RP array)."""
    result = padded.copy()
    for axis, k in enumerate(block_side):
        blocks = result.shape[axis] // k
        shape = (
            result.shape[:axis] + (blocks, k) + result.shape[axis + 1 :]
        )
        reshaped = result.reshape(shape)
        np.cumsum(reshaped, axis=axis + 1, out=reshaped)
        result = reshaped.reshape(padded.shape)
    return result


def _bordered_prefix(padded: np.ndarray) -> np.ndarray:
    """Global inclusive prefix array with a zero border on the low side.

    ``border[i_1, ..., i_d] = SUM(A[0 : i_1 - 1, ..., 0 : i_d - 1])`` so
    that index 0 along any axis denotes an empty prefix.
    """
    border = np.zeros(tuple(s + 1 for s in padded.shape), dtype=padded.dtype)
    border[tuple(slice(1, None) for _ in padded.shape)] = padded
    for axis in range(padded.ndim):
        np.cumsum(border, axis=axis, out=border)
    return border


def _slice_volume(slices: tuple[slice, ...], shape: tuple[int, ...]) -> int:
    """Number of cells addressed by ``array[slices]`` for ``array`` of ``shape``."""
    volume = 1
    for one_slice, size in zip(slices, shape):
        start, stop, _ = one_slice.indices(size)
        extent = max(0, stop - start)
        if extent == 0:
            return 0
        volume *= extent
    return volume
