"""Common interface for every range-sum method in the library.

The paper compares four ways of answering range-sum queries over the same
logical d-dimensional array ``A``: the naive array, the prefix sum array
(HAMS97), the relative prefix sum structure (GAES99), and the (Basic)
Dynamic Data Cube.  All of them expose the same small contract, defined
here, so that the OLAP layer, the benchmarks, and the cross-equivalence
property tests can treat them interchangeably:

* ``prefix_sum(cell)`` — ``SUM(A[0,...,0] : A[cell])``, both ends
  inclusive (the "target region" of Section 3.2);
* ``range_sum(low, high)`` — an arbitrary inclusive range, derived from
  prefix sums via the inclusion-exclusion identity of Figure 4;
* ``prefix_sum_many`` / ``range_sum_many`` — batch forms of the two
  queries.  A production OLAP front end issues queries in batches, and
  real-world throughput is dominated by how much work those batches can
  share; every method therefore gets a batch entry point it can
  specialise (vectorised gathers for the flat arrays, path-sharing
  traversal for the trees).  The default ``range_sum_many`` decomposes
  the whole batch into one *deduplicated* ``prefix_sum_many`` call over
  the queries' 2^d corner cells, so overlapping ranges share corner
  evaluations even under the scalar fallback;
* ``get`` / ``set`` / ``add`` / ``add_many`` — point reads and updates
  of ``A``, singly or batched;
* ``memory_cells()`` and ``stats`` — the storage and operation-count
  metrics the paper's evaluation is stated in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Sequence

import numpy as np

from .. import geometry
from ..counters import OpCounter
from ..geometry import Cell, Shape
from ..obs import NULL_OBS

__all__ = ["RangeSumMethod", "masked_path_gather"]


def masked_path_gather(
    tree: np.ndarray,
    axis_paths: Sequence[tuple[np.ndarray, np.ndarray]],
    count: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Sum ``tree`` cells over the cross product of per-axis index paths.

    ``axis_paths`` holds, per axis, an ``(indices, mask)`` pair of
    ``(count, width)`` arrays: row ``q`` of ``indices`` lists the tree
    coordinates query ``q`` must visit along that axis, padded to
    ``width`` with zeros, and ``mask`` marks the valid slots.  The
    per-axis paths are folded into one flat index tensor of shape
    ``(count, prod(widths))`` — every (query, level-combination) pair at
    once — so the whole batch costs a single fancy-index gather plus a
    masked row reduction, with no Python-level loop over level
    combinations at all.  (An earlier revision looped over the
    ``O(log^d n)`` combinations with one small gather each; the loop's
    constant dominated at moderate batch sizes.)
    """
    strides = []
    stride = 1
    for size in reversed(tree.shape):
        strides.append(stride)
        stride *= size
    strides.reverse()
    flat_index: np.ndarray | None = None
    valid: np.ndarray | None = None
    for axis, (indices, mask) in enumerate(axis_paths):
        scaled = indices.astype(np.intp, copy=False) * strides[axis]
        if flat_index is None or valid is None:
            flat_index = scaled
            valid = mask
        else:
            flat_index = (
                flat_index[:, :, None] + scaled[:, None, :]
            ).reshape(count, -1)
            valid = (valid[:, :, None] & mask[:, None, :]).reshape(count, -1)
    if flat_index is None or valid is None:
        return np.zeros(count, dtype=dtype)
    gathered = tree.reshape(-1)[flat_index]
    return np.where(valid, gathered, 0).sum(axis=1, dtype=dtype)


class RangeSumMethod(ABC):
    """Abstract base for range-sum structures over a logical array ``A``.

    Args:
        shape: logical size of each dimension (``n_1, ..., n_d``).
        dtype: numpy dtype for stored values; must support exact addition
            and subtraction (the paper requires an invertible operator).
    """

    #: Registry name of the method (e.g. ``"ps"``); set by subclasses.
    name: ClassVar[str] = "abstract"

    #: Batches strictly smaller than this take the scalar path.  The
    #: shared-work machinery (vectorised gathers, path-sharing descents)
    #: has per-call setup costs that a tiny batch never amortises — the
    #: small-batch regression the throughput benchmark exposed.  1 means
    #: "always batch"; the sentinel ``"auto"`` resolves the threshold
    #: through the one-shot calibration probe in
    #: :mod:`repro.methods.crossover` (measured on this machine, cached
    #: per class), replacing the old hand-tuned per-class constants.
    #: Instances can pin a value via :attr:`batch_crossover_override`
    #: (the benchmarks use it to time the batch path regardless of the
    #: adaptive decision).
    batch_crossover: ClassVar[int | str] = 1

    #: Observability wiring (see :mod:`repro.obs`).  The class-level
    #: default is the shared disabled facade, so an unwired structure
    #: pays one predicate check per instrumented operation; callers (the
    #: serving engine, the CLI) assign a live facade per instance.
    obs = NULL_OBS

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        self.shape: Shape = geometry.normalize_shape(shape)
        self.dims = len(self.shape)
        self.dtype = np.dtype(dtype)
        self.stats = OpCounter()
        #: Which path the most recent ``*_many`` call took: ``"batch"``
        #: (shared-work machinery) or ``"scalar"`` (per-query fallback,
        #: chosen below :attr:`batch_crossover`).  Benchmarks record it.
        self.last_batch_path: str = "batch"
        #: Per-instance crossover pin.  ``None`` defers to the class
        #: policy (a literal threshold or the calibrated ``"auto"``
        #: probe); an int forces that threshold — set it to 1 to force
        #: the batch path, e.g. when auditing what the batch kernel
        #: *would* do below the adaptive crossover.
        self.batch_crossover_override: int | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "RangeSumMethod":
        """Build a structure holding the contents of ``array``.

        The default implementation performs a point update per non-zero
        cell; subclasses override it with vectorised bulk builds.
        """
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        for cell in np.argwhere(array != 0):
            method.add(tuple(int(c) for c in cell), array[tuple(cell)])
        return method

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------

    def get(self, cell: Sequence[int] | int):
        """Current value of ``A[cell]``.

        Default implementation: a degenerate one-cell range sum (methods
        that store ``A`` directly override this with an O(1) read).
        """
        cell = geometry.normalize_cell(cell, self.shape)
        return self.range_sum(cell, cell)

    def set(self, cell: Sequence[int] | int, value) -> None:
        """Replace ``A[cell]`` with ``value`` (read-modify-write)."""
        cell = geometry.normalize_cell(cell, self.shape)
        old = self.get(cell)
        delta = value - old
        if delta != 0:
            self.add(cell, delta)

    @abstractmethod
    def add(self, cell: Sequence[int] | int, delta) -> None:
        """Add ``delta`` to ``A[cell]`` — the paper's point update."""

    def add_many(self, updates: Sequence[tuple]) -> None:
        """Apply a batch of ``(cell, delta)`` updates.

        The paper observes that "most analysis systems are oriented
        towards batch updates"; this entry point lets each method apply
        a batch the cheapest way it can.  The default combines deltas
        that hit the same cell (one structural update per distinct cell)
        and applies them sequentially; the prefix-sum family overrides
        it with a single vectorised pass whose cost is independent of
        the batch size.
        """
        for cell, delta in self._combined_updates(updates):
            self.add(cell, delta)

    def _combined_updates(self, updates: Sequence[tuple]) -> list[tuple[Cell, object]]:
        """Normalise a batch: validate cells, merge duplicates, drop zeros."""
        combined: dict[Cell, object] = {}
        for cell, delta in updates:
            cell = geometry.normalize_cell(cell, self.shape)
            if cell in combined:
                combined[cell] = combined[cell] + delta
            else:
                combined[cell] = delta
        return [(cell, delta) for cell, delta in combined.items() if delta != 0]

    def _delta_array(self, updates: Sequence[tuple]) -> np.ndarray:
        """A dense array holding the combined deltas of a batch."""
        deltas = np.zeros(self.shape, dtype=self.dtype)
        for cell, delta in self._combined_updates(updates):
            deltas[cell] += delta
        return deltas

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abstractmethod
    def prefix_sum(self, cell: Sequence[int] | int):
        """``SUM(A[0,...,0] : A[cell])`` with ``cell`` included."""

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        """``SUM(A[low] : A[high])``, all bounds inclusive.

        Uses the inclusion-exclusion identity of Figure 4: the sum of the
        region is an alternating combination of at most ``2^d`` prefix
        sums anchored at ``A[0,...,0]``.

        This is the library's method-dispatch point for range queries,
        so it is where per-method observability lives: with a live
        :mod:`repro.obs` facade wired in, each call opens a
        ``method.range_sum`` span and feeds the per-method latency and
        op-count histograms.  Disabled (the default), the cost is one
        predicate check.
        """
        obs = self.obs
        if not obs.enabled:
            return self._range_sum_corners(low, high)
        before = self.stats.snapshot()
        start = obs.clock.now()
        with obs.span("method.range_sum", method=self.name) as span:
            result = self._range_sum_corners(low, high)
            delta = self.stats.diff(before)
            span.set(
                node_visits=delta.node_visits,
                cell_reads=delta.cell_reads,
                cell_writes=delta.cell_writes,
            )
        elapsed = obs.clock.now() - start
        obs.method_query_seconds.labels(method=self.name).observe(elapsed)
        obs.method_query_ops.labels(method=self.name).observe(delta.total_cell_ops)
        return result

    def _range_sum_corners(
        self, low: Sequence[int] | int, high: Sequence[int] | int
    ):
        """The uninstrumented Figure 4 corner combination."""
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        result = self._zero()
        for sign, corner in geometry.inclusion_exclusion_corners(low_cell, high_cell):
            if corner is None:
                continue
            term = self.prefix_sum(corner)
            result = result + term if sign > 0 else result - term
        return result

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------

    def _use_batch_path(self, count: int) -> bool:
        """Decide batch vs scalar for a ``count``-query batch.

        Records the decision in :attr:`last_batch_path` so benchmark rows
        can report which path actually ran, and — with observability
        wired — counts it in ``repro_method_batch_path_total`` so a
        serving run shows live how often batches fall below the
        crossover.  Overrides call this first and fall back to the
        scalar loop (with an explanatory ``noqa: REP006``) when it
        returns False.
        """
        use_batch = count >= self._effective_crossover()
        self.last_batch_path = "batch" if use_batch else "scalar"
        obs = self.obs
        if obs.enabled:
            obs.batch_path_total.labels(
                method=self.name, path=self.last_batch_path
            ).inc()
        return use_batch

    def _effective_crossover(self) -> int:
        """The batch/scalar threshold in force for this instance.

        Resolution order: the per-instance
        :attr:`batch_crossover_override` pin, then the class policy —
        a literal int, or ``"auto"``, which defers to the one-shot
        timing probe in :mod:`repro.methods.crossover` (measured once
        per class and dimensionality, then cached).
        """
        override = self.batch_crossover_override
        if override is not None:
            return override
        configured = type(self).batch_crossover
        if configured == "auto":
            from .crossover import calibrated_crossover

            return calibrated_crossover(type(self), self.dims)
        return int(configured)

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch form of :meth:`prefix_sum`: one result per input cell.

        The default is the sanctioned scalar loop; flat methods override
        it with vectorised gathers whose per-query cost is O(1), and the
        tree methods override it with a path-sharing traversal that
        descends each distinct root-to-leaf path once for the whole
        batch.
        """
        self.last_batch_path = "scalar"
        return [self.prefix_sum(cell) for cell in cells]

    def range_sum_many(self, ranges: Sequence) -> list:
        """Batch form of :meth:`range_sum`: one result per input range.

        Accepts ``(low, high)`` pairs or objects with ``low`` / ``high``
        attributes (e.g. :class:`~repro.workloads.RangeQuery`).  The
        default decomposes every range into its inclusion-exclusion
        corner cells (Figure 4), deduplicates corners across the whole
        batch, answers them with a single :meth:`prefix_sum_many` call,
        and recombines with signs — so every method inherits corner
        sharing for free, on top of whatever batching its
        ``prefix_sum_many`` provides.
        """
        queries = [self._query_bounds(item) for item in ranges]
        corner_order: dict[Cell, int] = {}
        per_query_terms: list[list[tuple[int, int]]] = []
        for low_cell, high_cell in queries:
            terms: list[tuple[int, int]] = []
            for sign, corner in geometry.inclusion_exclusion_corners(
                low_cell, high_cell
            ):
                if corner is None:
                    continue
                position = corner_order.setdefault(corner, len(corner_order))
                terms.append((sign, position))
            per_query_terms.append(terms)
        values = self.prefix_sum_many(list(corner_order)) if corner_order else []
        results = []
        for terms in per_query_terms:
            acc = self._zero()
            for sign, position in terms:
                term = values[position]
                acc = acc + term if sign > 0 else acc - term
            results.append(acc)
        return results

    def _query_bounds(self, item) -> tuple[Cell, Cell]:
        """Normalise one batch-query item: a pair or a RangeQuery-alike."""
        low = getattr(item, "low", None)
        high = getattr(item, "high", None)
        if low is None or high is None:
            low, high = item
        return geometry.normalize_range(low, high, self.shape)

    def total(self):
        """Sum of the entire cube."""
        return self.prefix_sum(tuple(s - 1 for s in self.shape))

    def _zero(self):
        """Additive identity in this structure's value domain."""
        return self.dtype.type(0)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @abstractmethod
    def memory_cells(self) -> int:
        """Number of value cells the structure currently stores."""

    def to_dense(self) -> np.ndarray:
        """Materialise the logical array ``A`` (testing / small cubes only)."""
        dense = np.zeros(self.shape, dtype=self.dtype)
        origin = (0,) * self.dims
        top = tuple(s - 1 for s in self.shape)
        for cell in geometry.iter_cells(origin, top):
            dense[cell] = self.get(cell)
        return dense

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={self.shape}, dtype={self.dtype})"
