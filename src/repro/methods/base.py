"""Common interface for every range-sum method in the library.

The paper compares four ways of answering range-sum queries over the same
logical d-dimensional array ``A``: the naive array, the prefix sum array
(HAMS97), the relative prefix sum structure (GAES99), and the (Basic)
Dynamic Data Cube.  All of them expose the same small contract, defined
here, so that the OLAP layer, the benchmarks, and the cross-equivalence
property tests can treat them interchangeably:

* ``prefix_sum(cell)`` — ``SUM(A[0,...,0] : A[cell])``, both ends
  inclusive (the "target region" of Section 3.2);
* ``range_sum(low, high)`` — an arbitrary inclusive range, derived from
  prefix sums via the inclusion-exclusion identity of Figure 4;
* ``get`` / ``set`` / ``add`` — point reads and updates of ``A``;
* ``memory_cells()`` and ``stats`` — the storage and operation-count
  metrics the paper's evaluation is stated in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Sequence

import numpy as np

from .. import geometry
from ..counters import OpCounter
from ..geometry import Cell, Shape

__all__ = ["RangeSumMethod"]


class RangeSumMethod(ABC):
    """Abstract base for range-sum structures over a logical array ``A``.

    Args:
        shape: logical size of each dimension (``n_1, ..., n_d``).
        dtype: numpy dtype for stored values; must support exact addition
            and subtraction (the paper requires an invertible operator).
    """

    #: Registry name of the method (e.g. ``"ps"``); set by subclasses.
    name: ClassVar[str] = "abstract"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        self.shape: Shape = geometry.normalize_shape(shape)
        self.dims = len(self.shape)
        self.dtype = np.dtype(dtype)
        self.stats = OpCounter()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "RangeSumMethod":
        """Build a structure holding the contents of ``array``.

        The default implementation performs a point update per non-zero
        cell; subclasses override it with vectorised bulk builds.
        """
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        for cell in np.argwhere(array != 0):
            method.add(tuple(int(c) for c in cell), array[tuple(cell)])
        return method

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------

    def get(self, cell: Sequence[int] | int):
        """Current value of ``A[cell]``.

        Default implementation: a degenerate one-cell range sum (methods
        that store ``A`` directly override this with an O(1) read).
        """
        cell = geometry.normalize_cell(cell, self.shape)
        return self.range_sum(cell, cell)

    def set(self, cell: Sequence[int] | int, value) -> None:
        """Replace ``A[cell]`` with ``value`` (read-modify-write)."""
        cell = geometry.normalize_cell(cell, self.shape)
        old = self.get(cell)
        delta = value - old
        if delta != 0:
            self.add(cell, delta)

    @abstractmethod
    def add(self, cell: Sequence[int] | int, delta) -> None:
        """Add ``delta`` to ``A[cell]`` — the paper's point update."""

    def add_many(self, updates: Sequence[tuple]) -> None:
        """Apply a batch of ``(cell, delta)`` updates.

        The paper observes that "most analysis systems are oriented
        towards batch updates"; this entry point lets each method apply
        a batch the cheapest way it can.  The default combines deltas
        that hit the same cell (one structural update per distinct cell)
        and applies them sequentially; the prefix-sum family overrides
        it with a single vectorised pass whose cost is independent of
        the batch size.
        """
        for cell, delta in self._combined_updates(updates):
            self.add(cell, delta)

    def _combined_updates(self, updates: Sequence[tuple]) -> list[tuple[Cell, object]]:
        """Normalise a batch: validate cells, merge duplicates, drop zeros."""
        combined: dict[Cell, object] = {}
        for cell, delta in updates:
            cell = geometry.normalize_cell(cell, self.shape)
            if cell in combined:
                combined[cell] = combined[cell] + delta
            else:
                combined[cell] = delta
        return [(cell, delta) for cell, delta in combined.items() if delta != 0]

    def _delta_array(self, updates: Sequence[tuple]) -> np.ndarray:
        """A dense array holding the combined deltas of a batch."""
        deltas = np.zeros(self.shape, dtype=self.dtype)
        for cell, delta in self._combined_updates(updates):
            deltas[cell] += delta
        return deltas

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abstractmethod
    def prefix_sum(self, cell: Sequence[int] | int):
        """``SUM(A[0,...,0] : A[cell])`` with ``cell`` included."""

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        """``SUM(A[low] : A[high])``, all bounds inclusive.

        Uses the inclusion-exclusion identity of Figure 4: the sum of the
        region is an alternating combination of at most ``2^d`` prefix
        sums anchored at ``A[0,...,0]``.
        """
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        result = self._zero()
        for sign, corner in geometry.inclusion_exclusion_corners(low_cell, high_cell):
            if corner is None:
                continue
            term = self.prefix_sum(corner)
            result = result + term if sign > 0 else result - term
        return result

    def total(self):
        """Sum of the entire cube."""
        return self.prefix_sum(tuple(s - 1 for s in self.shape))

    def _zero(self):
        """Additive identity in this structure's value domain."""
        return self.dtype.type(0)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @abstractmethod
    def memory_cells(self) -> int:
        """Number of value cells the structure currently stores."""

    def to_dense(self) -> np.ndarray:
        """Materialise the logical array ``A`` (testing / small cubes only)."""
        dense = np.zeros(self.shape, dtype=self.dtype)
        origin = (0,) * self.dims
        top = tuple(s - 1 for s in self.shape)
        for cell in geometry.iter_cells(origin, top):
            dense[cell] = self.get(cell)
        return dense

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shape={self.shape}, dtype={self.dtype})"
