"""The naive method: the raw array ``A`` itself (Section 2).

Queries sum every cell in the requested region — O(n^d) in the worst
case — while updates write a single cell in O(1).  This is one end of the
query/update trade-off spectrum the paper maps out, and it doubles as the
reference oracle for the cross-method equivalence tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import geometry
from .base import RangeSumMethod

__all__ = ["NaiveArray"]


class NaiveArray(RangeSumMethod):
    """Dense array ``A`` with O(1) updates and O(n^d) range queries."""

    name = "naive"
    # The cumulative-pass batch path only amortizes its cube-wide cumsum
    # once the batch is big enough, regardless of what the logical cell
    # cost model says — the probe measures where that happens here.
    batch_crossover = "auto"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        super().__init__(shape, dtype)
        self._array = np.zeros(self.shape, dtype=self.dtype)

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "NaiveArray":
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        method._array[...] = array
        method.stats.cell_writes += array.size
        return method

    def get(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        self.stats.cell_reads += 1
        return self.dtype.type(self._array[cell])

    def add(self, cell: Sequence[int] | int, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        self._array[cell] += delta
        self.stats.cell_writes += 1

    def set(self, cell: Sequence[int] | int, value) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        self._array[cell] = value
        self.stats.cell_writes += 1

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        region = tuple(slice(0, c + 1) for c in cell)
        self.stats.cell_reads += geometry.range_cell_count((0,) * self.dims, cell)
        return self.dtype.type(self._array[region].sum())

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        # Summing the region directly beats inclusion-exclusion here: the
        # naive method has no precomputed prefixes to exploit.
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        region = tuple(slice(lo, hi + 1) for lo, hi in zip(low_cell, high_cell))
        self.stats.cell_reads += geometry.range_cell_count(low_cell, high_cell)
        return self.dtype.type(self._array[region].sum())

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Adaptive batch: one full prefix pass once it beats region sums.

        A batch of k prefix queries costs the sum of its k prefix-region
        sizes sequentially, but a single cube-wide cumulative pass plus k
        O(1) gathers answers them all — the batch regime that makes even
        the naive array competitive for read-mostly bursts.
        """
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if not normalized:
            return []
        origin = (0,) * self.dims
        sequential_cost = sum(
            geometry.range_cell_count(origin, cell) for cell in normalized
        )
        if (
            not self._use_batch_path(len(normalized))
            or sequential_cost <= self._array.size
        ):
            self.last_batch_path = "scalar"
            return [self.prefix_sum(cell) for cell in normalized]  # noqa: REP006 — below the crossover, direct region sums win
        self.last_batch_path = "batch"
        prefix = self._array.astype(self.dtype, copy=True)
        for axis in range(prefix.ndim):
            np.cumsum(prefix, axis=axis, out=prefix)
        self.stats.cell_reads += self._array.size
        index = tuple(
            np.array([cell[axis] for cell in normalized], dtype=np.intp)
            for axis in range(self.dims)
        )
        return [self.dtype.type(value) for value in prefix[index]]

    def range_sum_many(self, ranges: Sequence) -> list:
        """Adaptive batch: direct region sums until the prefix pass wins."""
        queries = [self._query_bounds(item) for item in ranges]
        direct_cost = sum(
            geometry.range_cell_count(low, high) for low, high in queries
        )
        if (
            not self._use_batch_path(len(queries))
            or direct_cost <= self._array.size
        ):
            self.last_batch_path = "scalar"
            return [self.range_sum(low, high) for low, high in queries]  # noqa: REP006 — below the crossover, direct region sums win
        return super().range_sum_many(queries)

    def memory_cells(self) -> int:
        return self._array.size

    def to_dense(self) -> np.ndarray:
        return self._array.copy()
