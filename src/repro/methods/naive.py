"""The naive method: the raw array ``A`` itself (Section 2).

Queries sum every cell in the requested region — O(n^d) in the worst
case — while updates write a single cell in O(1).  This is one end of the
query/update trade-off spectrum the paper maps out, and it doubles as the
reference oracle for the cross-method equivalence tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import geometry
from .base import RangeSumMethod

__all__ = ["NaiveArray"]


class NaiveArray(RangeSumMethod):
    """Dense array ``A`` with O(1) updates and O(n^d) range queries."""

    name = "naive"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        super().__init__(shape, dtype)
        self._array = np.zeros(self.shape, dtype=self.dtype)

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "NaiveArray":
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        method._array[...] = array
        method.stats.cell_writes += array.size
        return method

    def get(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        self.stats.cell_reads += 1
        return self.dtype.type(self._array[cell])

    def add(self, cell: Sequence[int] | int, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        self._array[cell] += delta
        self.stats.cell_writes += 1

    def set(self, cell: Sequence[int] | int, value) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        self._array[cell] = value
        self.stats.cell_writes += 1

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        region = tuple(slice(0, c + 1) for c in cell)
        self.stats.cell_reads += geometry.range_cell_count((0,) * self.dims, cell)
        return self.dtype.type(self._array[region].sum())

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        # Summing the region directly beats inclusion-exclusion here: the
        # naive method has no precomputed prefixes to exploit.
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        region = tuple(slice(lo, hi + 1) for lo, hi in zip(low_cell, high_cell))
        self.stats.cell_reads += geometry.range_cell_count(low_cell, high_cell)
        return self.dtype.type(self._array[region].sum())

    def memory_cells(self) -> int:
        return self._array.size

    def to_dense(self) -> np.ndarray:
        return self._array.copy()
