"""The prefix sum method of Ho, Agrawal, Megiddo and Srikant (HAMS97).

Section 2 of the paper: an array ``P`` of the same shape as ``A`` stores,
at every cell, ``SUM(A[0,...,0] : A[cell])``.  Any range sum is then an
alternating combination of at most ``2^d`` cells of ``P`` — constant-time
queries.  The price is the cascading update of Figure 5: changing
``A[cell]`` changes every ``P`` cell dominating it, which in the worst
case (updating ``A[0,...,0]``) rewrites the entire cube — O(n^d).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import geometry
from .base import RangeSumMethod

__all__ = ["PrefixSumCube"]


class PrefixSumCube(RangeSumMethod):
    """HAMS97 prefix-sum array: O(1) queries, O(n^d) updates."""

    name = "ps"
    #: A scalar prefix query is one indexed read; the vectorised gather
    #: only wins once its numpy setup is spread over enough queries (a
    #: scalar read is already near-free, so the measured bar is high).
    batch_crossover = "auto"

    def __init__(self, shape: Sequence[int], dtype=np.int64) -> None:
        super().__init__(shape, dtype)
        self._prefix = np.zeros(self.shape, dtype=self.dtype)

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "PrefixSumCube":
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        prefix = array.astype(method.dtype, copy=True)
        for axis in range(prefix.ndim):
            np.cumsum(prefix, axis=axis, out=prefix)
        method._prefix = prefix
        method.stats.cell_writes += prefix.size
        return method

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        self.stats.cell_reads += 1
        return self.dtype.type(self._prefix[cell])

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch queries as one numpy fancy-index gather — O(1) per query."""
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if not normalized:
            return []
        if not self._use_batch_path(len(normalized)):
            return [self.prefix_sum(cell) for cell in normalized]  # noqa: REP006 — adaptive crossover: a tiny batch of O(1) scalar reads beats the gather setup
        coords = np.array(normalized, dtype=np.intp)
        self.stats.cell_reads += len(normalized)
        # Iterating the gathered vector yields numpy scalars of the
        # prefix dtype already — no per-value reconversion loop.
        return list(self._prefix[tuple(coords.T)])

    def add(self, cell: Sequence[int] | int, delta) -> None:
        """The cascading update of Figure 5.

        Every ``P`` cell at or beyond ``cell`` in all dimensions includes
        ``A[cell]`` as a component, so all of them receive the delta.  The
        touched region has ``prod_i (n_i - cell_i)`` cells — the full cube
        when ``cell`` is the origin.
        """
        cell = geometry.normalize_cell(cell, self.shape)
        region = tuple(slice(c, None) for c in cell)
        self._prefix[region] += self.dtype.type(delta)
        touched = 1
        for coordinate, size in zip(cell, self.shape):
            touched *= size - coordinate
        self.stats.cell_writes += touched

    def add_many(self, updates) -> None:
        """Batch update in one cube-sized pass, regardless of batch size.

        This is the batch regime the paper says current systems are
        built for: the combined deltas are prefix-transformed once and
        folded into ``P`` — O(n^d) for the *whole batch* instead of
        O(n^d) per update.  (It is also why batch systems break down
        when updates must be visible immediately: the batch pass costs
        a full cube rewrite no matter how few updates it carries.)
        """
        combined = self._combined_updates(updates)
        if not combined:
            return
        if len(combined) == 1:
            cell, delta = combined[0]
            self.add(cell, delta)
            return
        deltas = self._delta_array(combined)
        for axis in range(deltas.ndim):
            np.cumsum(deltas, axis=axis, out=deltas)
        self._prefix += deltas
        self.stats.cell_writes += self._prefix.size

    def memory_cells(self) -> int:
        return self._prefix.size

    def to_dense(self) -> np.ndarray:
        """Invert the prefix transform (differencing along every axis)."""
        dense = self._prefix.copy()
        for axis in range(dense.ndim):
            dense = np.diff(dense, axis=axis, prepend=self.dtype.type(0))
        return dense
