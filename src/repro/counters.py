"""Operation counters: the measurement substrate for the paper's cost model.

Table 1 and Figure 1 of the paper compare methods by *number of
operations* — how many stored cells an update or query must touch — not by
wall-clock time on any particular machine.  Every structure in this
library therefore carries an :class:`OpCounter` that tallies logical cell
reads and writes (plus tree-node visits), so the benchmarks can measure
the very quantity the paper models.

Bulk numpy operations report their true logical size: e.g. the prefix-sum
method's cascading update adds a delta to an entire sub-array with one
vectorised statement, but it still counts one write per touched cell,
because that is the cost the paper charges it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpCounter", "CostSample", "MeasurementSession"]


@dataclass
class OpCounter:
    """Tally of logical operations performed by a structure.

    Attributes:
        cell_reads: stored values read (leaf cells, overlay values,
            subtree sums, prefix cells, ...).
        cell_writes: stored values written.
        node_visits: tree nodes visited during navigation (primary-tree
            nodes, B-tree nodes); zero for flat array methods.
        cache_hits: queries answered from a result cache without touching
            the structure (see :mod:`repro.engine`); zero for bare
            structures.
        cache_misses: cache lookups that fell through to a structure
            traversal.
    """

    cell_reads: int = 0
    cell_writes: int = 0
    node_visits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Optional page-access tracker (see repro.storage.buffer).  When a
    #: BufferPool is attached, every structure node touched by a real
    #: traversal is reported to it; None keeps the hook free.
    tracker: object = None

    def touch(self, obj: object) -> None:
        """Report a structure-node touch to the attached tracker, if any."""
        if self.tracker is not None:
            self.tracker.access(obj)

    def reset(self) -> None:
        """Zero all tallies (the tracker attachment is preserved)."""
        self.cell_reads = 0
        self.cell_writes = 0
        self.node_visits = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def total_cell_ops(self) -> int:
        """Reads plus writes — the paper's 'number of operations' axis."""
        return self.cell_reads + self.cell_writes

    def snapshot(self) -> "OpCounter":
        """An independent copy of the current tallies.

        The copy is *tallies only*: the ``tracker`` attachment is
        deliberately dropped (it stays ``None`` on the copy).  A snapshot
        exists to be compared or merged later — if it kept the tracker, a
        stray ``touch()`` on the copy would double-report page accesses
        to the live :class:`~repro.storage.buffer` pool.  The live
        counter keeps its tracker untouched.
        """
        return OpCounter(
            self.cell_reads,
            self.cell_writes,
            self.node_visits,
            self.cache_hits,
            self.cache_misses,
        )

    def diff(self, earlier: "OpCounter") -> "OpCounter":
        """Tallies accumulated since ``earlier`` (a prior snapshot).

        Like :meth:`snapshot`, the result is a detached tallies-only
        counter with no ``tracker``; it is safe to hand to reporting
        code (span attributes, the slow-query log) without leaking the
        live tracker attachment.
        """
        return OpCounter(
            self.cell_reads - earlier.cell_reads,
            self.cell_writes - earlier.cell_writes,
            self.node_visits - earlier.node_visits,
            self.cache_hits - earlier.cache_hits,
            self.cache_misses - earlier.cache_misses,
        )

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.cell_reads += other.cell_reads
        self.cell_writes += other.cell_writes
        self.node_visits += other.node_visits
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total cache lookups (0.0 when nothing was looked up)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OpCounter(reads={self.cell_reads}, writes={self.cell_writes}, "
            f"nodes={self.node_visits}, cache={self.cache_hits}/"
            f"{self.cache_hits + self.cache_misses})"
        )


@dataclass
class CostSample:
    """One measured data point for the empirical benchmark tables.

    Attributes:
        method: registry name of the measured method.
        n: per-dimension size of the cube.
        d: number of dimensions.
        operation: ``"update"``, ``"query"``, or ``"build"``.
        cell_ops: mean logical cell operations per call.
        seconds: mean wall-clock seconds per call (optional; 0 when the
            benchmark only counted operations).
        samples: how many calls the means were taken over.
    """

    method: str
    n: int
    d: int
    operation: str
    cell_ops: float
    seconds: float = 0.0
    samples: int = 1

    def as_row(self) -> tuple:
        """Row tuple for table rendering."""
        return (
            self.method,
            self.n,
            self.d,
            self.operation,
            round(self.cell_ops, 2),
            self.seconds,
            self.samples,
        )


class MeasurementSession:
    """Collects :class:`CostSample` rows and renders them as a text table.

    Used by the benchmark harness to print paper-style tables alongside
    the pytest-benchmark timings.
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self.samples: list[CostSample] = []

    def record(self, sample: CostSample) -> None:
        """Append one measured data point."""
        self.samples.append(sample)

    def rows_for(self, operation: str) -> list[CostSample]:
        """All samples matching ``operation``, in insertion order."""
        return [s for s in self.samples if s.operation == operation]

    def render(self) -> str:
        """Fixed-width text table of every recorded sample."""
        header = ("method", "n", "d", "op", "cell_ops", "seconds", "samples")
        rows = [header] + [tuple(str(v) for v in s.as_row()) for s in self.samples]
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [self.title, "-" * len(self.title)]
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)
