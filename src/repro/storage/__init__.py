"""Secondary-storage substrates: simulated buffer pool and real page files."""

from .buffer import BufferPool, BufferStats, attach_pool, detach_pool
from .disk_bc_tree import DiskBcTree
from .disk_ddc import DiskDynamicDataCube
from .pagefile import PageFile, PageFileError, PageStats

__all__ = [
    "BufferPool",
    "BufferStats",
    "attach_pool",
    "detach_pool",
    "PageFile",
    "PageFileError",
    "PageStats",
    "DiskBcTree",
    "DiskDynamicDataCube",
]
