"""Simulated buffer pool: secondary-storage accesses during traversal.

Section 4.4 of the paper justifies level elision partly by I/O: "the
number of levels in the tree affects the number of accesses to secondary
storage during traversal".  The paper has no disk substrate of its own
(its cost model counts cell operations), so we build the closest
meaningful simulation: every structure node touched by a real traversal
is mapped to a *page*, and a bounded LRU buffer pool decides which of
those touches would have been physical reads.

The simulation is wired into the live data structures through the
:class:`~repro.counters.OpCounter` tracker hook — the primary tree, the
B^c trees, and the leaf blocks all report the objects they visit, so the
measured page-access counts come from genuine query/update paths, not
from a formula.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = [
    "BufferStats",
    "BufferPool",
    "attach_pool",
    "detach_pool",
]


@dataclass
class BufferStats:
    """Tally of simulated page traffic."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the pool (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """An LRU buffer pool over simulated pages.

    Args:
        capacity: number of pages the pool holds; accesses beyond it
            evict the least-recently-used page.
        objects_per_page: how many structure nodes share one page.  One
            node per page models the paper's "each node is a disk page"
            reading; larger values model packed on-disk layouts.
    """

    def __init__(self, capacity: int, objects_per_page: int = 1) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if objects_per_page < 1:
            raise ConfigurationError(
                f"objects_per_page must be >= 1, got {objects_per_page}"
            )
        self.capacity = capacity
        self.objects_per_page = objects_per_page
        self.stats = BufferStats()
        self._pages: OrderedDict[int, None] = OrderedDict()
        self._page_of_object: dict[int, int] = {}
        self._next_page = 0

    def _page_for(self, obj: object) -> int:
        """Stable page id for a structure object (assigned on first touch)."""
        key = id(obj)
        page = self._page_of_object.get(key)
        if page is None:
            page = self._next_page // self.objects_per_page
            self._next_page += 1
            self._page_of_object[key] = page
        return page

    def access(self, obj: object) -> bool:
        """Record a touch of ``obj``; returns True on a buffer hit."""
        page = self._page_for(obj)
        self.stats.accesses += 1
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return False

    @property
    def resident_pages(self) -> int:
        """Pages currently held in the pool."""
        return len(self._pages)

    def clear(self) -> None:
        """Empty the pool (a cold restart) without clearing page ids."""
        self._pages.clear()

    def validate(self) -> None:
        """Check pool invariants; raise :class:`StructureError` on failure.

        Verifies the pin accounting: resident pages within capacity,
        hits + misses == accesses, and every resident page drawn from
        the assigned page ids.
        """
        from ..analysis.audit import audit

        audit(self)


def attach_pool(structure, pool: BufferPool) -> BufferPool:
    """Attach a buffer pool to a structure's operation counter.

    Subsequent queries and updates on ``structure`` (and on every
    secondary structure sharing its counter) report node touches to the
    pool.  Returns the pool for chaining.
    """
    structure.stats.tracker = pool
    return pool


def detach_pool(structure) -> None:
    """Stop tracking page accesses for ``structure``."""
    structure.stats.tracker = None
