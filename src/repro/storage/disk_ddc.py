"""A disk-resident Dynamic Data Cube.

The paper's motivating scale ("What if the size of the data cube were a
terabyte?") puts the structure on disk; this engine hosts the complete
Section 4 design inside a :class:`~repro.storage.pagefile.PageFile`:

* primary-tree nodes are fixed-size pages holding, per child box, the
  child's page id, the overlay subtotal, and the page ids of the
  overlay's row-sum group trees;
* row-sum groups are :class:`~repro.storage.disk_bc_tree.DiskBcTree`
  instances sharing the same file (the Section 4.1 base case on disk);
* leaf blocks are pages of raw cell values;
* everything is reached through bounded write-back caches, so physical
  I/O — counted by the page file — matches what a buffer-managed DBMS
  would issue.

Supported dimensionality is 1 and 2: with ``d = 2`` every overlay group
is one-dimensional and lives in a B^c tree, exactly the paper's base
case.  Higher dimensions nest (d-1)-dimensional cubes inside overlays
(Section 4.2); on disk that recursion multiplies bookkeeping without
adding measurement value, so ``d >= 3`` uses the in-memory engine.

The cube is a full :class:`~repro.methods.base.RangeSumMethod`, so every
test oracle and benchmark in the suite can run against it unchanged.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Sequence

import numpy as np

from .. import geometry
from ..exceptions import ConfigurationError, InvalidShapeError
from ..methods.base import RangeSumMethod
from .disk_bc_tree import DiskBcTree
from .pagefile import PageFile, PageFileError

__all__ = ["DiskDynamicDataCube"]

_NO_PAGE = 0xFFFFFFFFFFFFFFFF
_META = struct.Struct("<QQQIIdc")  # root, capacity, size_hint, dims, leaf_side, total, fmt


class _DiskNode:
    """Decoded primary node: per child, page / subtotal / group pages."""

    __slots__ = ("page_id", "children", "subtotals", "groups")

    def __init__(self, page_id: int, fan: int, dims: int) -> None:
        self.page_id = page_id
        self.children = [_NO_PAGE] * fan
        self.subtotals = [0] * fan
        self.groups = [[_NO_PAGE] * dims for _ in range(fan)]


class _DiskBlock:
    """Decoded leaf block: raw cell values."""

    __slots__ = ("page_id", "values")

    def __init__(self, page_id: int, values: list) -> None:
        self.page_id = page_id
        self.values = values


class DiskDynamicDataCube(RangeSumMethod):
    """Dynamic Data Cube stored entirely in a page file (d <= 2).

    Args:
        shape: logical cube shape (1 or 2 dimensions).
        pages: backing page file (shared; the cube flushes but never
            closes it).
        dtype: ``int64`` or ``float64``.
        leaf_side: leaf block side; ``leaf_side^d`` values must fit a page.
        node_cache: decoded primary nodes/blocks kept in memory.
        tree_cache: open group B^c trees kept in memory.
        meta_page: re-open an existing cube by its metadata page.
    """

    name = "disk-ddc"

    def __init__(
        self,
        shape: Sequence[int],
        pages: PageFile,
        dtype=np.int64,
        leaf_side: int = 2,
        node_cache: int = 128,
        tree_cache: int = 64,
        meta_page: int | None = None,
    ) -> None:
        super().__init__(shape, dtype)
        if self.dims > 2:
            raise PageFileError(
                "DiskDynamicDataCube supports 1 or 2 dimensions; use the "
                "in-memory DynamicDataCube for higher dimensionality"
            )
        if self.dtype == np.dtype(np.int64):
            self._format = "q"
        elif self.dtype == np.dtype(np.float64):
            self._format = "d"
        else:
            raise ConfigurationError(f"unsupported dtype {self.dtype}; use int64 or float64")
        if not geometry.is_power_of_two(leaf_side):
            raise InvalidShapeError(f"leaf_side must be a power of two, got {leaf_side}")
        self._pages = pages
        self._fan = 1 << self.dims
        self._full_mask = self._fan - 1
        self.leaf_side = leaf_side
        self._node_cache_capacity = node_cache
        self._node_cache: OrderedDict[int, tuple[object, bool]] = OrderedDict()
        self._tree_cache_capacity = tree_cache
        self._tree_cache: OrderedDict[int, DiskBcTree] = OrderedDict()

        block_bytes = 8 * leaf_side**self.dims
        node_bytes = self._fan * (8 + 8 + 8 * self.dims)
        usable = pages.page_size - 8
        if block_bytes > usable or node_bytes > usable:
            raise PageFileError(
                f"page size {pages.page_size} too small for leaf_side "
                f"{leaf_side} in {self.dims} dimensions"
            )

        if meta_page is None:
            self._capacity = max(geometry.padded_side(self.shape), leaf_side)
            self._root_page = _NO_PAGE
            self._total = 0.0 if self._format == "d" else 0
            self._meta_page = pages.allocate()
            self._write_meta()
        else:
            self._meta_page = meta_page
            self._read_meta()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def meta_page(self) -> int:
        """Page id to re-open this cube with."""
        return self._meta_page

    def _write_meta(self) -> None:
        payload = _META.pack(
            self._root_page,
            self._capacity,
            max(self.shape),
            self.dims,
            self.leaf_side,
            float(self._total),
            self._format.encode(),
        )
        self._pages.write(self._meta_page, payload)

    def _read_meta(self) -> None:
        payload = self._pages.read(self._meta_page)
        root, capacity, _, dims, leaf_side, total, fmt = _META.unpack(
            payload[: _META.size]
        )
        if dims != self.dims:
            raise PageFileError(
                f"stored cube has {dims} dimensions, requested shape has {self.dims}"
            )
        self._root_page = root
        self._capacity = capacity
        self.leaf_side = leaf_side
        self._format = fmt.decode()
        self._total = total if self._format == "d" else int(total)

    # ------------------------------------------------------------------
    # Node / block cache
    # ------------------------------------------------------------------

    def _encode_node(self, node: _DiskNode) -> bytes:
        parts = []
        for index in range(self._fan):
            parts.append(
                struct.pack(
                    f"<Q{self._format}{self.dims}Q",
                    node.children[index],
                    node.subtotals[index],
                    *node.groups[index],
                )
            )
        return b"N" + b"".join(parts)

    def _encode_block(self, block: _DiskBlock) -> bytes:
        count = len(block.values)
        return b"B" + struct.pack(f"<{count}{self._format}", *block.values)

    def _decode(self, page_id: int, payload: bytes):
        tag, body = payload[:1], payload[1:]
        if tag == b"N":
            node = _DiskNode(page_id, self._fan, self.dims)
            entry = struct.Struct(f"<Q{self._format}{self.dims}Q")
            for index in range(self._fan):
                fields = entry.unpack_from(body, index * entry.size)
                node.children[index] = fields[0]
                node.subtotals[index] = fields[1]
                node.groups[index] = list(fields[2:])
            return node
        if tag == b"B":
            count = self.leaf_side**self.dims
            values = list(struct.unpack_from(f"<{count}{self._format}", body, 0))
            return _DiskBlock(page_id, values)
        raise PageFileError(f"page {page_id}: unknown node tag {tag!r}")

    def _cache_put(self, item, dirty: bool) -> None:
        page_id = item.page_id
        if page_id in self._node_cache:
            _, was_dirty = self._node_cache.pop(page_id)
            dirty = dirty or was_dirty
        self._node_cache[page_id] = (item, dirty)
        while len(self._node_cache) > self._node_cache_capacity:
            evicted_id, (evicted, evicted_dirty) = self._node_cache.popitem(last=False)
            if evicted_dirty:
                self._write_back(evicted)

    def _write_back_bytes(self, item) -> bytes:
        if isinstance(item, _DiskNode):
            return self._encode_node(item)
        return self._encode_block(item)

    def _write_back(self, item) -> None:
        self._pages.write(item.page_id, self._write_back_bytes(item))

    def _load(self, page_id: int):
        entry = self._node_cache.get(page_id)
        if entry is not None:
            self._node_cache.move_to_end(page_id)
            return entry[0]
        item = self._decode(page_id, self._pages.read(page_id))
        self._cache_put(item, dirty=False)
        return item

    def _new_node(self) -> _DiskNode:
        node = _DiskNode(self._pages.allocate(), self._fan, self.dims)
        zero = 0.0 if self._format == "d" else 0
        node.subtotals = [zero] * self._fan
        self._cache_put(node, dirty=True)
        return node

    def _new_block(self) -> _DiskBlock:
        zero = 0.0 if self._format == "d" else 0
        block = _DiskBlock(
            self._pages.allocate(), [zero] * (self.leaf_side**self.dims)
        )
        self._cache_put(block, dirty=True)
        return block

    # ------------------------------------------------------------------
    # Group trees
    # ------------------------------------------------------------------

    def _open_group(self, meta_page: int) -> DiskBcTree:
        tree = self._tree_cache.get(meta_page)
        if tree is not None:
            self._tree_cache.move_to_end(meta_page)
            return tree
        tree = DiskBcTree(
            self._pages, cache_pages=8, meta_page=meta_page
        )
        self._tree_cache[meta_page] = tree
        while len(self._tree_cache) > self._tree_cache_capacity:
            _, evicted = self._tree_cache.popitem(last=False)
            evicted.flush()
        return tree

    def _new_group(self) -> DiskBcTree:
        tree = DiskBcTree(
            self._pages, cache_pages=8, value_format=self._format
        )
        self._tree_cache[tree.meta_page] = tree
        while len(self._tree_cache) > self._tree_cache_capacity:
            _, evicted = self._tree_cache.popitem(last=False)
            evicted.flush()
        return tree

    # ------------------------------------------------------------------
    # Geometry helpers (mirrors the in-memory engine)
    # ------------------------------------------------------------------

    def _covering_mask(self, cell, anchor, half: int) -> int:
        mask = 0
        for axis in range(self.dims):
            if cell[axis] >= anchor[axis] + half:
                mask |= 1 << axis
        return mask

    def _child_anchor(self, anchor, mask: int, half: int):
        return tuple(
            anchor[axis] + (half if mask >> axis & 1 else 0)
            for axis in range(self.dims)
        )

    def _block_offset(self, offsets) -> int:
        position = 0
        for offset in offsets:
            position = position * self.leaf_side + offset
        return position

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def prefix_sum(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        if self._root_page == _NO_PAGE:
            return self._zero()
        page = self._root_page
        side = self._capacity
        anchor = (0,) * self.dims
        acc = 0.0 if self._format == "d" else 0
        while side > self.leaf_side:
            node = self._load(page)
            self.stats.node_visits += 1
            half = side // 2
            cover = self._covering_mask(cell, anchor, half)
            submask = (cover - 1) & cover
            while cover:
                acc += self._box_contribution(node, submask, cover, cell, anchor, half)
                if submask == 0:
                    break
                submask = (submask - 1) & cover
            anchor = self._child_anchor(anchor, cover, half)
            page = node.children[cover]
            side = half
            if page == _NO_PAGE:
                return self.dtype.type(acc)
        block = self._load(page)
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        for position in self._block_prefix_positions(offsets):
            acc += block.values[position]
            self.stats.cell_reads += 1
        return self.dtype.type(acc)

    def _block_prefix_positions(self, offsets):
        top = tuple(o + 1 for o in offsets)
        for index in np.ndindex(*top):
            yield self._block_offset(index)

    def _box_contribution(self, node, mask, cover, cell, anchor, half):
        complete = cover & ~mask
        if complete == self._full_mask:
            self.stats.cell_reads += 1
            return node.subtotals[mask]
        box_anchor = self._child_anchor(anchor, mask, half)
        offsets = tuple(
            min(cell[axis] - box_anchor[axis], half - 1) for axis in range(self.dims)
        )
        group_axis = (complete & -complete).bit_length() - 1
        cross = offsets[:group_axis] + offsets[group_axis + 1 :]
        group_page = node.groups[mask][group_axis]
        if group_page == _NO_PAGE:
            return 0
        return self._open_group(group_page).prefix_sum(cross[0])

    def get(self, cell: Sequence[int] | int):
        cell = geometry.normalize_cell(cell, self.shape)
        if self._root_page == _NO_PAGE:
            return self._zero()
        page = self._root_page
        side = self._capacity
        anchor = (0,) * self.dims
        while side > self.leaf_side:
            node = self._load(page)
            self.stats.node_visits += 1
            half = side // 2
            mask = self._covering_mask(cell, anchor, half)
            anchor = self._child_anchor(anchor, mask, half)
            page = node.children[mask]
            side = half
            if page == _NO_PAGE:
                return self._zero()
        block = self._load(page)
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        self.stats.cell_reads += 1
        return self.dtype.type(block.values[self._block_offset(offsets)])

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, cell: Sequence[int] | int, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        delta = self.dtype.type(delta).item()
        if delta == 0:
            return
        if self._root_page == _NO_PAGE:
            if self._capacity <= self.leaf_side:
                self._root_page = self._new_block().page_id
            else:
                self._root_page = self._new_node().page_id
        page = self._root_page
        side = self._capacity
        anchor = (0,) * self.dims
        while side > self.leaf_side:
            node = self._load(page)
            self.stats.node_visits += 1
            half = side // 2
            mask = self._covering_mask(cell, anchor, half)
            anchor = self._child_anchor(anchor, mask, half)
            node.subtotals[mask] += delta
            self.stats.cell_writes += 1
            offsets = tuple(c - a for c, a in zip(cell, anchor))
            for axis in range(self.dims if self.dims > 1 else 0):
                group_page = node.groups[mask][axis]
                if group_page == _NO_PAGE:
                    tree = self._new_group()
                    node.groups[mask][axis] = tree.meta_page
                else:
                    tree = self._open_group(group_page)
                cross = offsets[:axis] + offsets[axis + 1 :]
                tree.add(cross[0], delta)
            if node.children[mask] == _NO_PAGE:
                child = (
                    self._new_block()
                    if half <= self.leaf_side
                    else self._new_node()
                )
                node.children[mask] = child.page_id
            self._cache_put(node, dirty=True)
            page = node.children[mask]
            side = half
        block = self._load(page)
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        block.values[self._block_offset(offsets)] += delta
        self._cache_put(block, dirty=True)
        self.stats.cell_writes += 1
        self._total += delta

    def set(self, cell: Sequence[int] | int, value) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        old = self.get(cell)
        delta = value - old
        if delta != 0:
            self.add(cell, delta)

    # ------------------------------------------------------------------
    # Diagnostics / lifecycle
    # ------------------------------------------------------------------

    def total(self):
        return self.dtype.type(self._total)

    def memory_cells(self) -> int:
        """Allocated page payload capacity, in 8-byte value slots."""
        return self._pages.page_count * (self._pages.page_size // 8)

    def flush(self) -> None:
        """Write back every dirty node, block, and group tree."""
        for page_id, (item, dirty) in list(self._node_cache.items()):
            if dirty:
                self._write_back(item)
                self._node_cache[page_id] = (item, False)
        for tree in self._tree_cache.values():
            tree.flush()
        self._write_meta()
        self._pages.flush()

    def validate(self) -> None:
        """Check disk invariants; raise :class:`StructureError` on failure.

        Flushes, then walks every page from the root: each node and leaf
        block must round-trip through the codec, every cached subtotal
        must equal its child's recomputed subtree sum, and every group
        tree's total must match its box subtotal.
        """
        from ..analysis.audit import audit

        audit(self)
