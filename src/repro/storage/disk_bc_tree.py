"""A disk-resident B^c tree over a page file.

The in-memory :class:`~repro.core.keyed_bc_tree.KeyedBcTree` shows the
algorithm; this class shows the *deployment* the paper has in mind — a
cumulative B-tree whose nodes live in fixed-size disk pages, read and
written through a bounded write-back node cache, with physical I/O
counted by the underlying :class:`~repro.storage.pagefile.PageFile`.

Nodes are encoded with ``struct`` (no pickling):

* leaf:      ``tag=0, count, count * (key: int64, value: int64/float64)``
* internal:  ``tag=1, count, count * (max_key: int64, sum, child: uint64)``

A metadata page (page 0 of the file's data area) records the root page,
entry count, running total, fanout, and value format, so a tree can be
closed and re-opened losslessly.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from collections import OrderedDict

from ..exceptions import ConfigurationError, StructureError
from .pagefile import PageFile, PageFileError

__all__ = ["DiskBcTree"]

_META = struct.Struct("<QQdIc")  # root_page, size, total, fanout, value_format
_NODE_HEADER = struct.Struct("<BI")  # tag, entry count
_LEAF_TAG = 0
_INTERNAL_TAG = 1


class _Node:
    """Decoded node held in the cache."""

    __slots__ = ("page_id", "leaf", "keys", "values", "children", "sums")

    def __init__(self, page_id: int, leaf: bool) -> None:
        self.page_id = page_id
        self.leaf = leaf
        self.keys: list[int] = []  # row keys (leaf) or child max-keys (internal)
        self.values: list = []  # row values (leaf only)
        self.children: list[int] = []  # child page ids (internal only)
        self.sums: list = []  # per-child subtree sums (internal only)

    def entry_count(self) -> int:
        return len(self.keys)


class DiskBcTree:
    """Key-addressed cumulative B-tree stored in a :class:`PageFile`.

    Args:
        pages: the backing page file (shared ownership; closing the tree
            flushes but does not close the file).
        cache_pages: decoded nodes held in memory; evictions write dirty
            nodes back to disk.  1 models a bufferless scan; a few dozen
            pages keep the hot upper levels resident.
        value_format: ``"q"`` for int64 rows, ``"d"`` for float64.
        meta_page: page id of the tree's metadata page; ``None`` creates
            a fresh tree, an integer re-opens an existing one.
    """

    def __init__(
        self,
        pages: PageFile,
        cache_pages: int = 64,
        value_format: str = "q",
        meta_page: int | None = None,
    ) -> None:
        if cache_pages < 1:
            raise ConfigurationError("cache_pages must be >= 1")
        self._pages = pages
        self._cache_capacity = cache_pages
        self._cache: OrderedDict[int, tuple[_Node, bool]] = OrderedDict()
        usable = pages.page_size - 8  # length prefix + slack
        if meta_page is None:
            if value_format not in ("q", "d"):
                raise ConfigurationError(f"value_format must be 'q' or 'd', got {value_format}")
            self.value_format = value_format
            self.fanout = self._max_fanout(usable)
            if self.fanout < 3:
                raise PageFileError(
                    f"page size {pages.page_size} too small for a B-tree node"
                )
            self._meta_page = pages.allocate()
            root = _Node(pages.allocate(), leaf=True)
            self._root_page = root.page_id
            self._size = 0
            self._total = 0.0 if value_format == "d" else 0
            self._cache_put(root, dirty=True)
            self._write_meta()
        else:
            self._meta_page = meta_page
            self._read_meta()

    @staticmethod
    def _max_fanout(usable: int) -> int:
        leaf_entry = 16  # int64 key + 8-byte value
        internal_entry = 24  # max_key + sum + child page
        room = usable - _NODE_HEADER.size
        return min(room // leaf_entry, room // internal_entry)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def meta_page(self) -> int:
        """Page id to pass back when re-opening this tree."""
        return self._meta_page

    def _write_meta(self) -> None:
        payload = _META.pack(
            self._root_page,
            self._size,
            float(self._total),
            self.fanout,
            self.value_format.encode(),
        )
        self._pages.write(self._meta_page, payload)

    def _read_meta(self) -> None:
        payload = self._pages.read(self._meta_page)
        root_page, size, total, fanout, value_format = _META.unpack(
            payload[: _META.size]
        )
        self._root_page = root_page
        self._size = size
        self.fanout = fanout
        self.value_format = value_format.decode()
        self._total = total if self.value_format == "d" else int(total)

    # ------------------------------------------------------------------
    # Node cache and serialisation
    # ------------------------------------------------------------------

    def _encode(self, node: _Node) -> bytes:
        if node.leaf:
            body = struct.pack(
                f"<{len(node.keys)}q{len(node.values)}{self.value_format}",
                *node.keys,
                *node.values,
            )
            return _NODE_HEADER.pack(_LEAF_TAG, len(node.keys)) + body
        body = struct.pack(
            f"<{len(node.keys)}q{len(node.sums)}{self.value_format}"
            f"{len(node.children)}Q",
            *node.keys,
            *node.sums,
            *node.children,
        )
        return _NODE_HEADER.pack(_INTERNAL_TAG, len(node.keys)) + body

    def _decode(self, page_id: int, payload: bytes) -> _Node:
        tag, count = _NODE_HEADER.unpack_from(payload, 0)
        offset = _NODE_HEADER.size
        keys = list(struct.unpack_from(f"<{count}q", payload, offset))
        offset += 8 * count
        if tag == _LEAF_TAG:
            node = _Node(page_id, leaf=True)
            node.keys = keys
            node.values = list(
                struct.unpack_from(f"<{count}{self.value_format}", payload, offset)
            )
            return node
        node = _Node(page_id, leaf=False)
        node.keys = keys
        node.sums = list(
            struct.unpack_from(f"<{count}{self.value_format}", payload, offset)
        )
        offset += 8 * count
        node.children = list(struct.unpack_from(f"<{count}Q", payload, offset))
        return node

    def _cache_put(self, node: _Node, dirty: bool) -> None:
        if node.page_id in self._cache:
            _, was_dirty = self._cache.pop(node.page_id)
            dirty = dirty or was_dirty
        self._cache[node.page_id] = (node, dirty)
        self._cache.move_to_end(node.page_id)
        while len(self._cache) > self._cache_capacity:
            evicted_id, (evicted, evicted_dirty) = self._cache.popitem(last=False)
            if evicted_dirty:
                self._pages.write(evicted_id, self._encode(evicted))

    def _load(self, page_id: int) -> _Node:
        entry = self._cache.get(page_id)
        if entry is not None:
            self._cache.move_to_end(page_id)
            return entry[0]
        node = self._decode(page_id, self._pages.read(page_id))
        self._cache_put(node, dirty=False)
        return node

    def _mark_dirty(self, node: _Node) -> None:
        self._cache_put(node, dirty=True)

    def flush(self) -> None:
        """Write every dirty cached node and the metadata back to disk."""
        for page_id, (node, dirty) in list(self._cache.items()):
            if dirty:
                self._pages.write(page_id, self._encode(node))
                self._cache[page_id] = (node, False)
        self._write_meta()
        self._pages.flush()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def total(self):
        return self._total

    def prefix_sum(self, key: int):
        """Sum of rows with key <= ``key`` — one node load per level."""
        node = self._load(self._root_page)
        acc = 0.0 if self.value_format == "d" else 0
        while not node.leaf:
            descend = None
            for index, max_key in enumerate(node.keys):
                if max_key <= key:
                    acc += node.sums[index]
                else:
                    descend = node.children[index]
                    break
            if descend is None:
                return acc
            node = self._load(descend)
        stop = bisect_right(node.keys, key)
        for position in range(stop):
            acc += node.values[position]
        return acc

    def get(self, key: int):
        node = self._load(self._root_page)
        while not node.leaf:
            descend = None
            for index, max_key in enumerate(node.keys):
                if key <= max_key:
                    descend = node.children[index]
                    break
            if descend is None:
                return 0
            node = self._load(descend)
        position = bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            return node.values[position]
        return 0

    def items(self):
        """Every stored (key, value) pair in key order."""
        yield from self._iter(self._root_page)

    def _iter(self, page_id: int):
        node = self._load(page_id)
        if node.leaf:
            yield from zip(list(node.keys), list(node.values))
        else:
            for child in list(node.children):
                yield from self._iter(child)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: int, delta) -> None:
        """Upsert ``delta`` into the row at ``key``.

        Metadata (root page, totals) is checkpointed by :meth:`flush`,
        not per update; call ``flush()`` before closing the file.
        """
        if delta == 0:
            return
        split = self._add(self._root_page, key, delta)
        if split is not None:
            (left_max, left_sum), right_page, (right_max, right_sum) = split
            root = _Node(self._pages.allocate(), leaf=False)
            root.keys = [left_max, right_max]
            root.sums = [left_sum, right_sum]
            root.children = [self._root_page, right_page]
            self._root_page = root.page_id
            self._mark_dirty(root)
        self._total += delta

    def set(self, key: int, value) -> None:
        self.add(key, value - self.get(key))

    def _add(self, page_id: int, key: int, delta):
        node = self._load(page_id)
        if node.leaf:
            position = bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position] += delta
            else:
                node.keys.insert(position, key)
                node.values.insert(position, delta)
                self._size += 1
            self._mark_dirty(node)
            if len(node.keys) <= self.fanout:
                return None
            middle = len(node.keys) // 2
            right = _Node(self._pages.allocate(), leaf=True)
            right.keys = node.keys[middle:]
            right.values = node.values[middle:]
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            self._mark_dirty(node)
            self._mark_dirty(right)
            return (
                (node.keys[-1], sum(node.values)),
                right.page_id,
                (right.keys[-1], sum(right.values)),
            )

        child_index = len(node.children) - 1
        for index, max_key in enumerate(node.keys):
            if key <= max_key:
                child_index = index
                break
        split = self._add(node.children[child_index], key, delta)
        node.sums[child_index] += delta
        node.keys[child_index] = max(node.keys[child_index], key)
        self._mark_dirty(node)
        if split is None:
            return None
        (left_max, left_sum), right_page, (right_max, right_sum) = split
        node.keys[child_index] = left_max
        node.sums[child_index] = left_sum
        node.children.insert(child_index + 1, right_page)
        node.keys.insert(child_index + 1, right_max)
        node.sums.insert(child_index + 1, right_sum)
        self._mark_dirty(node)
        if len(node.children) <= self.fanout:
            return None
        middle = len(node.children) // 2
        right = _Node(self._pages.allocate(), leaf=False)
        right.keys = node.keys[middle:]
        right.sums = node.sums[middle:]
        right.children = node.children[middle:]
        node.keys = node.keys[:middle]
        node.sums = node.sums[:middle]
        node.children = node.children[:middle]
        self._mark_dirty(node)
        self._mark_dirty(right)
        return (
            (node.keys[-1], sum(node.sums)),
            right.page_id,
            (right.keys[-1], sum(right.sums)),
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Re-check sums, key order, and fill from the pages themselves."""
        self.flush()
        size, total, _, _ = self._validate(self._root_page, is_root=True)
        if size != self._size:
            raise StructureError(f"size cache {self._size} != actual {size}")
        if abs(total - self._total) > 1e-9:
            raise StructureError(f"total cache {self._total} != actual {total}")

    def _validate(self, page_id: int, is_root: bool):
        node = self._decode(page_id, self._pages.read(page_id))
        minimum = (self.fanout + 1) // 2
        if node.leaf:
            if not is_root and len(node.keys) < minimum:
                raise StructureError("leaf underfull")
            if sorted(node.keys) != node.keys or len(set(node.keys)) != len(node.keys):
                raise StructureError("leaf keys unsorted or duplicated")
            max_key = node.keys[-1] if node.keys else None
            return len(node.keys), sum(node.values), 1, max_key
        if not is_root and len(node.children) < minimum:
            raise StructureError("internal node underfull")
        total_size = 0
        total_sum = 0
        depths = set()
        for child, cached_max, cached_sum in zip(node.children, node.keys, node.sums):
            size, child_sum, depth, child_max = self._validate(child, is_root=False)
            if child_max != cached_max:
                raise StructureError("max-key cache mismatch")
            if abs(child_sum - cached_sum) > 1e-9:
                raise StructureError("subtree sum cache mismatch")
            total_size += size
            total_sum += child_sum
            depths.add(depth)
        if len(depths) != 1:
            raise StructureError("leaves at differing depths")
        return total_size, total_sum, depths.pop() + 1, node.keys[-1]

    def height(self) -> int:
        height = 1
        node = self._load(self._root_page)
        while not node.leaf:
            height += 1
            node = self._load(node.children[0])
        return height
