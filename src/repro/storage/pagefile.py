"""A fixed-size page file: the disk substrate under the disk-backed B^c tree.

The paper treats the B^c tree as a disk-resident structure ("the number
of levels in the tree affects the number of accesses to secondary
storage").  This module provides the minimal storage-manager machinery a
real deployment needs, built from scratch:

* :class:`PageFile` — a file of fixed-size pages with allocate / read /
  write / free, a free-list threaded through freed pages, and a typed
  header guarding size and version;
* page-level access statistics (physical reads and writes), which the
  disk-backed structures combine with an in-memory page cache to show
  real I/O counts rather than simulated ones.

The format is deliberately simple: page 0 is the header; each page is
``page_size`` bytes; payloads carry a 4-byte length prefix.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass

from ..exceptions import ReproError

__all__ = [
    "MIN_PAGE_SIZE",
    "PageFileError",
    "PageStats",
    "PageFile",
]

_MAGIC = b"DDCPGF01"
_HEADER = struct.Struct("<8sIQQ")  # magic, page_size, page_count, free_head
_LENGTH = struct.Struct("<I")
#: Sentinel for "no next free page".
_NO_PAGE = 0xFFFFFFFFFFFFFFFF

MIN_PAGE_SIZE = 64


class PageFileError(ReproError):
    """The page file is corrupt, mis-sized, or misused."""


@dataclass
class PageStats:
    """Physical page traffic."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0


class PageFile:
    """Fixed-size pages in a single file.

    Args:
        path: backing file; created when absent, re-opened when present.
        page_size: bytes per page.  ``None`` means "4096 at creation,
            whatever the header says on re-open"; an explicit value must
            match the stored header when re-opening.
    """

    DEFAULT_PAGE_SIZE = 4096

    def __init__(self, path, page_size: int | None = None) -> None:
        if page_size is not None and page_size < MIN_PAGE_SIZE:
            raise PageFileError(f"page_size must be >= {MIN_PAGE_SIZE}")
        self.path = os.fspath(path)
        self.stats = PageStats()
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._handle = open(self.path, "r+b" if exists else "w+b")
        if exists:
            self._load_header(page_size)
        else:
            self.page_size = page_size if page_size is not None else self.DEFAULT_PAGE_SIZE
            self._page_count = 0
            self._free_head = _NO_PAGE
            self._write_header()

    # -- header ---------------------------------------------------------

    def _write_header(self) -> None:
        header = _HEADER.pack(
            _MAGIC, self.page_size, self._page_count, self._free_head
        )
        self._handle.seek(0)
        self._handle.write(header.ljust(self.page_size, b"\0"))
        self._handle.flush()

    def _load_header(self, requested_page_size: int | None) -> None:
        self._handle.seek(0)
        raw = self._handle.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise PageFileError(f"{self.path}: truncated header")
        magic, page_size, page_count, free_head = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise PageFileError(f"{self.path}: not a page file")
        if requested_page_size is not None and requested_page_size != page_size:
            raise PageFileError(
                f"{self.path}: page size is {page_size}, not {requested_page_size}"
            )
        self.page_size = page_size
        self._page_count = page_count
        self._free_head = free_head

    # -- page lifecycle ---------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages ever allocated (including freed ones awaiting reuse)."""
        return self._page_count

    def _offset(self, page_id: int) -> int:
        if not 0 <= page_id < self._page_count:
            raise PageFileError(f"page {page_id} out of range")
        return (page_id + 1) * self.page_size  # page 0 of the file = header

    def allocate(self) -> int:
        """Return a fresh (or recycled) page id."""
        self.stats.allocations += 1
        if self._free_head != _NO_PAGE:
            page_id = self._free_head
            raw = self._read_raw(page_id)
            (self._free_head,) = struct.unpack_from("<Q", raw, 0)
            self._write_header()
            return page_id
        page_id = self._page_count
        self._page_count += 1
        self._handle.seek(self._offset(page_id))
        self._handle.write(b"\0" * self.page_size)
        self._write_header()
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self.stats.frees += 1
        link = struct.pack("<Q", self._free_head)
        self._write_raw(page_id, link)
        self._free_head = page_id
        self._write_header()

    # -- payload I/O -----------------------------------------------------

    def _read_raw(self, page_id: int) -> bytes:
        self._handle.seek(self._offset(page_id))
        return self._handle.read(self.page_size)

    def _write_raw(self, page_id: int, payload: bytes) -> None:
        if len(payload) > self.page_size:
            raise PageFileError(
                f"payload of {len(payload)} bytes exceeds page size {self.page_size}"
            )
        self._handle.seek(self._offset(page_id))
        self._handle.write(payload.ljust(self.page_size, b"\0"))

    def read(self, page_id: int) -> bytes:
        """Read a page's payload (the bytes previously written)."""
        self.stats.reads += 1
        raw = self._read_raw(page_id)
        (length,) = _LENGTH.unpack_from(raw, 0)
        if length > self.page_size - _LENGTH.size:
            raise PageFileError(f"page {page_id}: corrupt length {length}")
        return raw[_LENGTH.size : _LENGTH.size + length]

    def write(self, page_id: int, payload: bytes) -> None:
        """Write a payload (length-prefixed) into a page."""
        if len(payload) > self.page_size - _LENGTH.size:
            raise PageFileError(
                f"payload of {len(payload)} bytes exceeds usable page size "
                f"{self.page_size - _LENGTH.size}"
            )
        self.stats.writes += 1
        self._write_raw(page_id, _LENGTH.pack(len(payload)) + payload)

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Push buffered writes to the operating system."""
        self._handle.flush()

    def validate(self) -> None:
        """Check file invariants; raise :class:`StructureError` on failure.

        Re-reads the header from disk, compares it with the live state,
        and walks the free list checking for out-of-range entries and
        cycles.
        """
        from ..analysis.audit import audit

        audit(self)

    def close(self) -> None:
        """Flush and close the backing file."""
        if not self._handle.closed:
            self._write_header()
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *_) -> None:
        self.close()
