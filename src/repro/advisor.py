"""Workload advisor: pick a range-sum method from the paper's cost model.

The paper's contribution is a point on a trade-off surface, not a
universal winner: read-only dense cubes still belong to the prefix sum,
tiny cubes to the naive array, growing or sparse cubes to the Dynamic
Data Cube.  The advisor encodes that surface — the Table 1 / Figure 1
cost model plus the Section 5 qualitative requirements — and recommends
a method for a described workload, with the reasoning attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .exceptions import ConfigurationError
from .model import costs

__all__ = [
    "WorkloadProfile",
    "Recommendation",
    "expected_operation_cost",
    "recommend",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """A description of the intended workload.

    Attributes:
        n: per-dimension size of the cube.
        d: number of dimensions.
        query_fraction: fraction of operations that are range queries
            (the rest are point updates), in [0, 1].
        updates_per_batch: how many updates arrive together; 1 means
            fully interactive updates.
        density: fraction of cells expected to hold data, in (0, 1].
        needs_growth: whether the domain must grow after creation
            (in any direction — Section 5).
    """

    n: int
    d: int
    query_fraction: float = 0.5
    updates_per_batch: int = 1
    density: float = 1.0
    needs_growth: bool = False

    def __post_init__(self) -> None:
        if self.n < 2 or self.d < 1:
            raise ConfigurationError("need n >= 2 and d >= 1")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ConfigurationError("query_fraction must be in [0, 1]")
        if self.updates_per_batch < 1:
            raise ConfigurationError("updates_per_batch must be >= 1")
        if not 0.0 < self.density <= 1.0:
            raise ConfigurationError("density must be in (0, 1]")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict."""

    method: str
    expected_op_cost: float
    reasons: tuple[str, ...]
    per_method_costs: dict = field(repr=False, default_factory=dict)


#: Methods the cost model can price.
_CANDIDATES = ("naive", "ps", "rps", "basic-ddc", "ddc")

#: Methods that allocate lazily and can grow (the Section 5 family).
_SPARSE_CAPABLE = ("basic-ddc", "ddc")


def expected_operation_cost(profile: WorkloadProfile, method: str) -> float:
    """Modelled mean cost of one workload operation under ``method``.

    Updates amortise over the batch where the method has a batch path
    whose cost is one structure pass (PS, RPS).
    """
    query = costs.query_cost(method, profile.n, profile.d)
    update = costs.update_cost(method, profile.n, profile.d)
    if method in ("ps", "rps"):
        # A batch costs one worst-case pass regardless of its size.
        update = update / profile.updates_per_batch
    return (
        profile.query_fraction * query
        + (1.0 - profile.query_fraction) * update
    )


def recommend(profile: WorkloadProfile) -> Recommendation:
    """Choose a method for ``profile`` and explain the choice."""
    reasons: list[str] = []
    candidates = list(_CANDIDATES)

    if profile.needs_growth:
        candidates = [c for c in candidates if c in _SPARSE_CAPABLE]
        reasons.append(
            "domain must grow dynamically: only the Dynamic Data Cube family "
            "supports growth in any direction (Section 5)"
        )
    if profile.density < 0.05:
        candidates = [c for c in candidates if c in _SPARSE_CAPABLE]
        reasons.append(
            f"data is sparse (density {profile.density:.3g}): dense prefix "
            "structures would materialise the whole domain"
        )

    per_method = {
        method: expected_operation_cost(profile, method) for method in candidates
    }
    best = min(per_method, key=per_method.get)
    best_cost = per_method[best]

    if profile.query_fraction >= 0.999 and best in ("ps", "rps"):
        reasons.append("workload is read-only: constant-time queries dominate")
    elif profile.query_fraction <= 0.001 and best == "naive":
        reasons.append("workload is write-only: O(1) array writes dominate")
    else:
        reasons.append(
            f"lowest modelled cost per operation "
            f"({best_cost:.3g} ops) for a "
            f"{profile.query_fraction:.0%}-query mix at "
            f"n={profile.n}, d={profile.d}"
        )
    if best in _SPARSE_CAPABLE and profile.updates_per_batch == 1:
        reasons.append(
            "updates are interactive (no batching): balanced polylog "
            "updates avoid the Table 1 update cliff"
        )

    return Recommendation(
        method=best,
        expected_op_cost=best_cost,
        reasons=tuple(reasons),
        per_method_costs=per_method,
    )
