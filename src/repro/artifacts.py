"""One schema for every benchmark JSON artifact.

Three headline artifacts live at the repository root —
``BENCH_batch_queries.json``, ``BENCH_engine.json``, and
``BENCH_obs_overhead.json`` — and each is written by two producers: the
benchmark suite regenerates it wholesale, the CLI upserts single rows
into it.  This module is the single definition of the document shape
both sides use::

    {
      "schema_version": 1,
      "experiment": "<name>",
      "rows": [ {...}, ... ]
    }

``schema_version`` lets a downstream consumer (CI assertions, plotting
scripts, the next PR) detect layout changes instead of mis-parsing;
pre-versioned documents load fine and are stamped on the next write.
"""

from __future__ import annotations

import json
from pathlib import Path

from .exceptions import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "make_document",
    "load_document",
    "write_document",
    "upsert_row",
]

#: Current artifact layout version.  Bump when the document shape (not
#: the per-experiment row fields) changes incompatibly.
SCHEMA_VERSION = 1


def make_document(experiment: str, rows: list | None = None, **extra) -> dict:
    """A fresh artifact document for ``experiment``.

    ``extra`` key/values land at the top level next to ``rows`` — use it
    for experiment-wide context (workload shape, assertion outcomes).
    """
    if not experiment:
        raise ConfigurationError("artifact experiment name must be non-empty")
    document = {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "rows": list(rows) if rows is not None else [],
    }
    document.update(extra)
    return document


def load_document(path: str | Path, experiment: str) -> dict:
    """Load an artifact, tolerating absent, corrupt, or legacy files.

    Anything unreadable or shapeless degrades to a fresh empty document
    (a CLI upsert must never crash on a hand-edited file); a legacy
    document without ``schema_version`` is accepted as-is and stamped by
    the next :func:`write_document`.
    """
    path = Path(path)
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (ValueError, OSError):
            loaded = None
        if isinstance(loaded, dict) and isinstance(loaded.get("rows"), list):
            loaded.setdefault("experiment", experiment)
            return loaded
    return make_document(experiment)


def write_document(path: str | Path, document: dict) -> Path:
    """Validate, stamp the current schema version, and write ``document``."""
    if not isinstance(document, dict) or not isinstance(
        document.get("rows"), list
    ):
        raise ConfigurationError(
            "artifact document must be a dict with a list under 'rows'"
        )
    if not document.get("experiment"):
        raise ConfigurationError("artifact document must name its experiment")
    document["schema_version"] = SCHEMA_VERSION
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def upsert_row(document: dict, row: dict, key_fields: tuple[str, ...]) -> dict:
    """Replace-or-append ``row`` keyed by its ``key_fields`` values.

    Rows agreeing with ``row`` on every key field are dropped before the
    append, so repeated runs refresh a configuration's row instead of
    duplicating it.  Returns ``document`` for chaining.
    """
    key = tuple(row[field] for field in key_fields)
    document["rows"] = [
        existing
        for existing in document["rows"]
        if tuple(existing.get(field) for field in key_fields) != key
    ] + [row]
    return document
