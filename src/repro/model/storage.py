"""The paper's storage model (Table 2 and the Section 4.4 optimization).

An overlay box of side ``k`` in ``d`` dimensions stores exactly
``k^d - (k-1)^d`` values (the subtotal plus the row-sum faces), covering
a region of ``k^d`` cells of ``A``.  Table 2 tabulates that ratio for
``d = 2``: the overhead falls from 75% at ``k = 2`` to ~6% at ``k = 32``,
which is why the *lowest* tree levels dominate the structure's storage —
and why deleting ``h`` of them (level elision) recovers almost all of
the overhead while costing at most ``2^((h+1)d)`` leaf-cell additions
per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "overlay_cells",
    "overlay_region",
    "overlay_fraction",
    "Table2Row",
    "table2",
    "render_table2",
    "level_overlay_cells",
    "tree_storage_cells",
    "elision_storage_series",
    "elision_query_leaf_cost",
    "elision_levels",
]


def overlay_cells(k: int, d: int) -> int:
    """Values stored by one overlay box of side ``k``: ``k^d - (k-1)^d``."""
    return k**d - (k - 1) ** d


def overlay_region(k: int, d: int) -> int:
    """Cells of ``A`` covered by one overlay box: ``k^d``."""
    return k**d


def overlay_fraction(k: int, d: int) -> float:
    """Overlay storage as a fraction of the region it covers."""
    return overlay_cells(k, d) / overlay_region(k, d)


@dataclass
class Table2Row:
    """One row of Table 2."""

    k: int
    overlay_box: int
    region: int
    percentage: float


def table2(ks: tuple[int, ...] = (2, 4, 8, 16, 32), d: int = 2) -> list[Table2Row]:
    """Regenerate Table 2: required storage, overlay boxes vs array A."""
    return [
        Table2Row(
            k=k,
            overlay_box=overlay_cells(k, d),
            region=overlay_region(k, d),
            percentage=100.0 * overlay_fraction(k, d),
        )
        for k in ks
    ]


def render_table2(rows: list[Table2Row]) -> str:
    """Text rendering of Table 2 in the paper's layout."""
    lines = [
        "Table 2. Required storage, overlay boxes versus array A.",
        f"{'k':>4}  {'overlay box':>12}  {'region in A':>12}  {'O.B./A':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.k:>4}  {row.overlay_box:>12}  {row.region:>12}  "
            f"{row.percentage:>7.2f}%"
        )
    return "\n".join(lines)


def level_overlay_cells(n: int, k: int, d: int) -> int:
    """Total overlay storage of one tree level with boxes of side ``k``.

    A cube of side ``n`` has ``(n / k)^d`` boxes of side ``k``.
    """
    boxes = (n // k) ** d
    return boxes * overlay_cells(k, d)


def tree_storage_cells(n: int, d: int, leaf_side: int = 2) -> int:
    """Modelled total storage of a (Basic) DDC over a dense cube.

    Leaf blocks store the ``n^d`` cells of ``A`` themselves; every
    internal level with box side ``k`` (``k = leaf_side, 2*leaf_side,
    ..., n/2``) adds its overlay cells.  This models the dense
    (array-overlay) layout; the tree-overlay layout adds a constant
    factor of B-tree bookkeeping measured separately by
    ``memory_cells()``.
    """
    if n < leaf_side:
        return n**d
    cells = n**d
    k = leaf_side
    while k <= n // 2:
        cells += level_overlay_cells(n, k, d)
        k *= 2
    return cells


def elision_storage_series(
    n: int, d: int, leaf_sides: tuple[int, ...] = (2, 4, 8, 16)
) -> list[tuple[int, int, float]]:
    """Storage vs level-elision parameter (Section 4.4).

    Returns ``(leaf_side, modelled_cells, overhead_vs_A)`` tuples: as
    ``leaf_side`` grows, the modelled storage tends to ``|A| = n^d``
    ("within epsilon of the size of array A").
    """
    base = n**d
    series = []
    for leaf_side in leaf_sides:
        cells = tree_storage_cells(n, d, leaf_side)
        series.append((leaf_side, cells, (cells - base) / base))
    return series


def elision_query_leaf_cost(leaf_side: int, d: int) -> int:
    """Worst-case raw leaf cells summed at the bottom of a query.

    The paper bounds the union of deleted regions by ``2^((h+1)d)`` leaf
    cells for ``h`` elided levels; with our ``leaf_side = 2^(h+1)``
    parametrisation this is ``leaf_side^d``.
    """
    return leaf_side**d


def elision_levels(leaf_side: int) -> int:
    """The paper's ``h`` for a given ``leaf_side`` (``h = log2(leaf_side) - 1``)."""
    return int(math.log2(leaf_side)) - 1
