"""The paper's analytic cost model (Table 1, Figure 1, Sections 3.3 & 4.3).

Every function returns the *number of operations* an update or query
costs under the paper's model, as a float (counts overflow 64-bit
integers long before the paper's n = 10^9, d = 8 data points).  The
table/figure builders below regenerate the published artifacts exactly:

* :func:`table1` — "Update cost functions by method, d=8", values rounded
  to the nearest power of 10;
* :func:`figure1_series` — the three log-log update curves of Figure 1;
* :func:`mips_seconds` — the narrative's "hypothetical 500 MIPS
  processor" translation (6+ months for PS at n=10^2 vs fractions of a
  second for the DDC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TABLE1_METHODS",
    "full_cube_size",
    "naive_update_cost",
    "naive_query_cost",
    "ps_update_cost",
    "ps_query_cost",
    "rps_update_cost",
    "rps_query_cost",
    "basic_ddc_update_cost",
    "basic_ddc_query_cost",
    "ddc_update_cost",
    "ddc_query_cost",
    "bc_tree_op_cost",
    "UPDATE_COSTS",
    "QUERY_COSTS",
    "update_cost",
    "query_cost",
    "mips_seconds",
    "round_to_power_of_ten",
    "Table1Row",
    "table1",
    "render_table1",
    "figure1_series",
    "render_figure1",
]

#: Methods appearing in Table 1, in the paper's column order.
TABLE1_METHODS = ("ps", "rps", "ddc")


def full_cube_size(n: float, d: int) -> float:
    """Total number of cells in the data cube: ``n^d``."""
    return float(n) ** d


def naive_update_cost(n: float, d: int) -> float:
    """Naive array update: one cell write."""
    return 1.0


def naive_query_cost(n: float, d: int) -> float:
    """Naive array worst-case range query: every cell — ``n^d``."""
    return float(n) ** d


def ps_update_cost(n: float, d: int) -> float:
    """Prefix sum worst-case update: the whole cube — ``n^d`` (Table 1)."""
    return float(n) ** d


def ps_query_cost(n: float, d: int) -> float:
    """Prefix sum query: one prefix cell per range corner — ``2^d``."""
    return float(2**d)


def rps_update_cost(n: float, d: int) -> float:
    """Relative prefix sum worst-case update: ``n^(d/2)`` (Table 1)."""
    return float(n) ** (d / 2)


def rps_query_cost(n: float, d: int) -> float:
    """Relative prefix sum query: constant accesses per corner."""
    return float(2**d) * float(2**d)


def basic_ddc_update_cost(n: float, d: int) -> float:
    """Basic DDC worst-case update — the Section 3.3 geometric series.

    ``d * (n^(d-1) - 1) / (2^(d-1) - 1)`` for ``d >= 2``; in one
    dimension the Basic tree degenerates to one subtotal per level,
    i.e. ``log2 n``.
    """
    if d == 1:
        return math.log2(n) if n > 1 else 1.0
    return d * (float(n) ** (d - 1) - 1) / (2 ** (d - 1) - 1)


def basic_ddc_query_cost(n: float, d: int) -> float:
    """Basic DDC query: ``(2^d - 1)`` O(1) overlay reads per level."""
    levels = math.log2(n) if n > 1 else 1.0
    return (2**d - 1) * levels


def ddc_update_cost(n: float, d: int) -> float:
    """Dynamic Data Cube update: ``(log2 n)^d`` (Table 1, Theorem 2)."""
    if n <= 1:
        return 1.0
    return math.log2(n) ** d


def ddc_query_cost(n: float, d: int) -> float:
    """Dynamic Data Cube query: ``O(log^d n)`` (Theorem 2)."""
    return ddc_update_cost(n, d)


def bc_tree_op_cost(k: float, fanout: int = 16) -> float:
    """B^c tree query/update: ``f * log_f k`` (Section 4.1)."""
    if k <= 1:
        return 1.0
    return fanout * math.log(k, fanout)


UPDATE_COSTS = {
    "naive": naive_update_cost,
    "ps": ps_update_cost,
    "rps": rps_update_cost,
    "basic-ddc": basic_ddc_update_cost,
    "ddc": ddc_update_cost,
}

QUERY_COSTS = {
    "naive": naive_query_cost,
    "ps": ps_query_cost,
    "rps": rps_query_cost,
    "basic-ddc": basic_ddc_query_cost,
    "ddc": ddc_query_cost,
}


def update_cost(method: str, n: float, d: int) -> float:
    """Modelled worst-case update cost for a registered method."""
    return UPDATE_COSTS[method](n, d)


def query_cost(method: str, n: float, d: int) -> float:
    """Modelled worst-case query cost for a registered method."""
    return QUERY_COSTS[method](n, d)


def mips_seconds(operations: float, mips: float = 500.0) -> float:
    """Seconds a ``mips``-MIPS processor needs for ``operations`` ops.

    Reproduces the paper's narrative translation of Table 1 ("on a
    hypothetical 500MIPS processor ... the prefix sum method may require
    more than 6 months of processing to update a single cell").
    """
    return operations / (mips * 1e6)


def round_to_power_of_ten(value: float) -> int:
    """Nearest-power-of-10 exponent, as used by Table 1's caption."""
    if value <= 0:
        return 0
    return round(math.log10(value))


@dataclass
class Table1Row:
    """One row of Table 1 (a given dimension size ``n``, with d fixed)."""

    n: float
    cube_size: float
    ps: float
    rps: float
    ddc: float

    def exponents(self) -> tuple[int, int, int, int]:
        """The row as the paper prints it: powers of 10."""
        return (
            round_to_power_of_ten(self.cube_size),
            round_to_power_of_ten(self.ps),
            round_to_power_of_ten(self.rps),
            round_to_power_of_ten(self.ddc),
        )


def table1(
    d: int = 8, ns: tuple[float, ...] = (1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)
) -> list[Table1Row]:
    """Regenerate Table 1: update cost functions by method, d = 8."""
    return [
        Table1Row(
            n=n,
            cube_size=full_cube_size(n, d),
            ps=ps_update_cost(n, d),
            rps=rps_update_cost(n, d),
            ddc=ddc_update_cost(n, d),
        )
        for n in ns
    ]


def render_table1(rows: list[Table1Row], d: int = 8) -> str:
    """Text rendering of Table 1 in the paper's layout."""
    lines = [
        f"Table 1. Update cost functions by method, d={d}.",
        "Values are rounded to the nearest power of 10.",
        f"{'n':>8}  {'cube=n^d':>9}  {'PS=n^d':>9}  {'RPS=n^(d/2)':>11}  {'DDC=(log2 n)^d':>14}",
    ]
    for row in rows:
        cube, ps, rps, ddc = row.exponents()
        lines.append(
            f"{row.n:>8.0e}  {'1E+%02d' % cube:>9}  {'1E+%02d' % ps:>9}  "
            f"{'1E+%02d' % rps:>11}  {'1E+%02d' % ddc:>14}"
        )
    return "\n".join(lines)


def figure1_series(
    d: int = 8,
    ns: tuple[float, ...] = tuple(10.0**e for e in range(1, 10)),
) -> dict[str, list[tuple[float, float]]]:
    """The three update-cost curves of Figure 1 as (n, cost) points."""
    return {
        "ps": [(n, ps_update_cost(n, d)) for n in ns],
        "rps": [(n, rps_update_cost(n, d)) for n in ns],
        "ddc": [(n, ddc_update_cost(n, d)) for n in ns],
    }


def render_figure1(series: dict[str, list[tuple[float, float]]]) -> str:
    """Text rendering of Figure 1's data (log10 of each curve)."""
    ns = [point[0] for point in next(iter(series.values()))]
    lines = [
        "Figure 1. Comparison of update functions, d=8 (log10 of cost).",
        "   n      " + "".join(f"{name:>10}" for name in series),
    ]
    for index, n in enumerate(ns):
        row = f"{n:>8.0e}  "
        for name in series:
            cost = series[name][index][1]
            row += f"{math.log10(cost):>10.1f}"
        lines.append(row)
    return "\n".join(lines)
