"""Calibration: fit measured cost series to the paper's model shapes.

The paper states each method's cost as a *shape* — ``n^d``, ``n^(d/2)``,
``(log2 n)^d`` — and the reproduction claim is that measured costs follow
those shapes up to implementation constants.  This module makes that
claim quantitative: given a measured ``(n, cost)`` series it

* fits a power law ``c * n^a`` (log-log least squares) and reports the
  empirical exponent ``a``,
* fits a polylog curve ``c * (log2 n)^b``,
* classifies which family fits better, with the residuals to prove it.

Used by the benchmark harness to print fitted exponents next to the
paper's theoretical ones, and available to users profiling their own
workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from ..exceptions import ConfigurationError, DimensionMismatchError

__all__ = [
    "PowerLawFit",
    "PolylogFit",
    "fit_power_law",
    "fit_polylog",
    "GrowthClassification",
    "classify_growth",
    "constant_factor",
]


@dataclass(frozen=True)
class PowerLawFit:
    """``cost ~ coefficient * n^exponent``."""

    coefficient: float
    exponent: float
    residual: float  # RMS error in log space

    def predict(self, n: float) -> float:
        return self.coefficient * n**self.exponent


@dataclass(frozen=True)
class PolylogFit:
    """``cost ~ coefficient * (log2 n)^exponent``."""

    coefficient: float
    exponent: float
    residual: float

    def predict(self, n: float) -> float:
        return self.coefficient * math.log2(n) ** self.exponent


def _validate_series(ns: Sequence[float], costs: Sequence[float]) -> tuple:
    ns = np.asarray(ns, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if ns.shape != costs.shape:
        raise DimensionMismatchError("ns and costs must have the same length")
    if len(ns) < 3:
        raise ConfigurationError("need at least 3 points to fit a growth curve")
    if np.any(ns <= 1) or np.any(costs <= 0):
        raise ConfigurationError("ns must be > 1 and costs > 0 for log-space fits")
    return ns, costs


def fit_power_law(ns: Sequence[float], costs: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``c * n^a`` in log-log space."""
    ns, costs = _validate_series(ns, costs)
    log_n = np.log(ns)
    log_cost = np.log(costs)
    exponent, intercept = np.polyfit(log_n, log_cost, 1)
    predicted = exponent * log_n + intercept
    residual = float(np.sqrt(np.mean((log_cost - predicted) ** 2)))
    return PowerLawFit(
        coefficient=float(np.exp(intercept)),
        exponent=float(exponent),
        residual=residual,
    )


def fit_polylog(ns: Sequence[float], costs: Sequence[float]) -> PolylogFit:
    """Least-squares fit of ``c * (log2 n)^b`` via scipy curve fitting."""
    ns, costs = _validate_series(ns, costs)

    def curve(n, coefficient, exponent):
        return coefficient * np.log2(n) ** exponent

    (coefficient, exponent), _ = optimize.curve_fit(
        curve, ns, costs, p0=(1.0, 1.0), maxfev=20_000
    )
    predicted = curve(ns, coefficient, exponent)
    residual = float(
        np.sqrt(np.mean((np.log(costs) - np.log(np.maximum(predicted, 1e-300))) ** 2))
    )
    return PolylogFit(
        coefficient=float(coefficient), exponent=float(exponent), residual=residual
    )


@dataclass(frozen=True)
class GrowthClassification:
    """Which growth family a measured series belongs to."""

    family: str  # "polynomial" or "polylogarithmic"
    power_law: PowerLawFit
    polylog: PolylogFit

    @property
    def fitted_exponent(self) -> float:
        """Exponent of the winning family's fit."""
        if self.family == "polynomial":
            return self.power_law.exponent
        return self.polylog.exponent


def classify_growth(
    ns: Sequence[float], costs: Sequence[float], polynomial_threshold: float = 0.5
) -> GrowthClassification:
    """Decide whether a cost series grows polynomially or polylogarithmically.

    A series whose best power-law exponent falls below
    ``polynomial_threshold`` is sublinear enough to be polylog at the
    measured scales (a true polynomial keeps a stable exponent; a polylog
    series masquerading as ``n^a`` shows a small, shrinking ``a``);
    otherwise the better-fitting family (by log-space residual) wins.
    """
    power_law = fit_power_law(ns, costs)
    polylog = fit_polylog(ns, costs)
    if power_law.exponent < polynomial_threshold:
        family = "polylogarithmic"
    elif power_law.residual <= polylog.residual:
        family = "polynomial"
    else:
        family = "polylogarithmic"
    return GrowthClassification(family=family, power_law=power_law, polylog=polylog)


def constant_factor(
    measured: Sequence[float], modelled: Sequence[float]
) -> tuple[float, float]:
    """Geometric-mean ratio of measured to modelled costs, with spread.

    Returns ``(factor, log_spread)``: the implementation constant that
    separates a measured series from the paper's model, and the RMS of
    the log-ratios around it (0 means the series is an exact rescaling).
    """
    measured = np.asarray(measured, dtype=np.float64)
    modelled = np.asarray(modelled, dtype=np.float64)
    if measured.shape != modelled.shape or len(measured) == 0:
        raise DimensionMismatchError("series must be equal-length and non-empty")
    if np.any(measured <= 0) or np.any(modelled <= 0):
        raise ConfigurationError("series must be positive")
    log_ratio = np.log(measured / modelled)
    factor = float(np.exp(np.mean(log_ratio)))
    spread = float(np.sqrt(np.mean((log_ratio - np.mean(log_ratio)) ** 2)))
    return factor, spread
