"""Persistence for whole OLAP cubes: schema + every companion structure.

:func:`repro.persist.save_cube` handles a single range-sum structure;
analysts work with :class:`~repro.olap.cube.DataCube`, which bundles a
schema and up to three companion structures (SUM, COUNT, sum-of-squares).
This module serialises the whole bundle into one ``.npz``: the schema as
JSON metadata (every built-in dimension type round-trips, dates and
hierarchies included), each companion via the same sparse-aware payload
the single-cube path uses.
"""

from __future__ import annotations

import datetime
import json
import pathlib

import numpy as np

from .olap.cube import DataCube
from .olap.hierarchy import HierarchyDimension, _Node
from .olap.schema import (
    BinnedDimension,
    CategoricalDimension,
    CubeSchema,
    Dimension,
    IntegerDimension,
)
from .olap.time import DateDimension
from .persist import PersistError, _FORMAT_VERSION, _load_method, _method_payload

__all__ = ["save_datacube", "load_datacube"]


def _hierarchy_spec(node: _Node):
    """Reconstruct the nested-dict hierarchy spec from the node tree."""
    if all(not child.children for child in node.children):
        return [child.label for child in node.children]
    return {child.label: _hierarchy_spec(child) for child in node.children}


def _dimension_spec(dimension: Dimension) -> dict:
    if isinstance(dimension, IntegerDimension):
        return {
            "type": "integer",
            "name": dimension.name,
            "low": dimension.low,
            "high": dimension.high,
        }
    if isinstance(dimension, CategoricalDimension):
        return {
            "type": "categorical",
            "name": dimension.name,
            "values": list(dimension.values),
        }
    if isinstance(dimension, BinnedDimension):
        return {
            "type": "binned",
            "name": dimension.name,
            "origin": dimension.origin,
            "width": dimension.width,
            "bins": dimension.bins,
        }
    if isinstance(dimension, DateDimension):
        return {
            "type": "date",
            "name": dimension.name,
            "start": dimension.start.isoformat(),
            "days": dimension.days,
        }
    if isinstance(dimension, HierarchyDimension):
        return {
            "type": "hierarchy",
            "name": dimension.name,
            "hierarchy": _hierarchy_spec(dimension._root),
        }
    raise PersistError(
        f"cannot persist dimension of type {type(dimension).__name__}; "
        "only the built-in dimension types round-trip"
    )


def _dimension_from_spec(spec: dict) -> Dimension:
    kind = spec.get("type")
    if kind == "integer":
        return IntegerDimension(spec["name"], spec["low"], spec["high"])
    if kind == "categorical":
        return CategoricalDimension(spec["name"], spec["values"])
    if kind == "binned":
        return BinnedDimension(spec["name"], spec["origin"], spec["width"], spec["bins"])
    if kind == "date":
        return DateDimension(
            spec["name"], datetime.date.fromisoformat(spec["start"]), spec["days"]
        )
    if kind == "hierarchy":
        return HierarchyDimension(spec["name"], spec["hierarchy"])
    raise PersistError(f"unknown dimension type {kind!r} in cube file")


_COMPANIONS = ("sums", "counts", "sum_squares")


def save_datacube(cube: DataCube, path) -> None:
    """Serialise a :class:`DataCube` (schema + companions) to ``path``."""
    meta = {
        "kind": "datacube",
        "format_version": _FORMAT_VERSION,
        "measure": cube.schema.measure,
        "method": cube.method_name,
        "dimensions": [_dimension_spec(d) for d in cube.schema.dimensions],
        "companions": {},
    }
    arrays: dict[str, np.ndarray] = {}
    for companion in _COMPANIONS:
        structure = getattr(cube, f"_{companion}")
        if structure is None:
            continue
        companion_meta, companion_arrays = _method_payload(structure)
        meta["companions"][companion] = companion_meta
        for key, value in companion_arrays.items():
            arrays[f"{companion}__{key}"] = value
    payload = {"__meta__": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    payload.update(arrays)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)


class _Prefixed:
    """View of an npz file restricted to one companion's arrays."""

    def __init__(self, data, prefix: str) -> None:
        self._data = data
        self._prefix = prefix

    def __getitem__(self, key: str):
        return self._data[f"{self._prefix}__{key}"]


def load_datacube(path) -> DataCube:
    """Restore a :class:`DataCube` saved by :func:`save_datacube`."""
    path = pathlib.Path(path)
    try:
        with np.load(path) as data:
            if "__meta__" not in data:
                raise PersistError(f"{path} is not a cube file (no metadata)")
            meta = json.loads(bytes(data["__meta__"]).decode())
            if meta.get("kind") != "datacube":
                raise PersistError(f"{path} does not hold a DataCube")
            if meta.get("format_version") != _FORMAT_VERSION:
                raise PersistError(f"unsupported format version in {path}")
            schema = CubeSchema(
                [_dimension_from_spec(spec) for spec in meta["dimensions"]],
                measure=meta["measure"],
            )
            companions = meta["companions"]
            cube = DataCube(
                schema,
                method=meta["method"],
                track_count="counts" in companions,
                track_sum_squares="sum_squares" in companions,
            )
            for companion, companion_meta in companions.items():
                restored = _load_method(companion_meta, _Prefixed(data, companion))
                setattr(cube, f"_{companion}", restored)
            return cube
    except PersistError:
        raise
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        raise PersistError(f"failed to load DataCube from {path}: {error}") from error
