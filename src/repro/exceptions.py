"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without also catching unrelated Python
errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidShapeError",
    "ConfigurationError",
    "OutOfBoundsError",
    "InvalidRangeError",
    "DimensionMismatchError",
    "UnknownMethodError",
    "SchemaError",
    "StructureError",
    "ResilienceError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ShardFailedError",
    "WorkerCrashedError",
    "InjectedFaultError",
    "ServeError",
    "BadRequestError",
    "UnsupportedMediaTypeError",
    "RaceGuardError",
    "LockOrderViolationError",
    "UnguardedMutationError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidShapeError(ReproError, ValueError):
    """A cube shape is empty, non-positive, or otherwise malformed."""


class ConfigurationError(ReproError, ValueError):
    """A constructor or function argument has an invalid value.

    Subclasses :class:`ValueError` so callers that predate the hierarchy
    (``except ValueError``) keep working.
    """


class OutOfBoundsError(ReproError, IndexError):
    """A cell or range falls outside the logical shape of a cube."""


class InvalidRangeError(ReproError, ValueError):
    """A query range is malformed (e.g. low corner above high corner)."""


class DimensionMismatchError(ReproError, ValueError):
    """A cell, range, or array has the wrong number of dimensions."""


class UnknownMethodError(ReproError, KeyError):
    """A range-sum method name is not present in the registry."""


class SchemaError(ReproError, ValueError):
    """An OLAP schema definition or lookup is invalid."""


class StructureError(ReproError, AssertionError):
    """An internal structural invariant was violated.

    Raised by the ``validate()`` methods of the core data structures; a
    user should never see this unless the library has a bug.
    """


class ResilienceError(ReproError, RuntimeError):
    """Base class for serving-resilience failures (see ``repro.engine``)."""


class DeadlineExceededError(ResilienceError, TimeoutError):
    """A request's deadline budget ran out before every shard answered.

    Subclasses :class:`TimeoutError` so generic timeout handling in
    callers keeps working.
    """


class CircuitOpenError(ResilienceError):
    """A shard's circuit breaker is open and the call was not attempted."""


class ShardFailedError(ResilienceError):
    """A shard sub-operation failed after exhausting its retry budget."""


class WorkerCrashedError(ResilienceError):
    """A shard-pool worker process died during (or before) a sub-operation.

    Raised parent-side by :class:`~repro.engine.process.ProcessExecutor`
    when the owning worker's pipe breaks mid-call.  The shard's state
    lives in the shared-memory slab store, so the failure is transient:
    the next attempt respawns the worker, which reattaches and answers
    exactly — which is why the resilient fan-out treats this like any
    other retryable shard failure.
    """


class InjectedFaultError(ResilienceError):
    """A deterministic fault raised by the test/chaos FaultInjector.

    Never raised by production code paths; exists so resilience tests
    can distinguish injected faults from genuine shard failures.
    """


class ServeError(ReproError, RuntimeError):
    """Base class for serving front-end failures (see ``repro.serve``)."""


class BadRequestError(ServeError, ValueError):
    """A serving request is malformed: bad wire payload, unknown
    operation, or cube-shape mismatch.  Maps to HTTP 400."""


class UnsupportedMediaTypeError(ServeError, ValueError):
    """A request asked for a wire codec the server does not have (e.g.
    msgpack when the optional dependency is absent).  Maps to HTTP 415."""


class RaceGuardError(ReproError, RuntimeError):
    """Base class for runtime lock-sanitizer violations.

    Raised only when a :class:`repro.analysis.raceguard.LockSanitizer`
    is attached (tests, ``repro chaos --sanitize``); production paths
    never construct one.
    """


class LockOrderViolationError(RaceGuardError):
    """Two locks were acquired in an order that inverts a recorded order.

    The sanitizer records every nested acquisition as a directed edge;
    taking ``b`` while holding ``a`` after some thread took ``a`` while
    holding ``b`` is a latent ABBA deadlock even if this run got lucky.
    """


class UnguardedMutationError(RaceGuardError):
    """A registered shared object was mutated with no guarding lock held."""
