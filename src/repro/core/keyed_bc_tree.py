"""Key-addressed B^c tree: the sparse form of the cumulative B-tree.

Section 4.1 of the paper describes B^c tree leaves as carrying explicit
keys — "the key for each leaf ... is equal to the index of the cell in
the one-dimensional array of row sum values".  Taken literally, a key-
addressed tree only needs leaves for rows that actually hold data, which
is exactly what Section 5's sparse/clustered cubes require: an overlay
group over a mostly-empty region must not materialise every empty row.

:class:`KeyedBcTree` is that structure — a B-tree mapping integer keys
to row values, with per-child subtree sums (STS) in the interior nodes:

* ``prefix_sum(key)`` — sum of every stored row with key <= ``key``,
  O(log m) for m stored rows;
* ``add(key, delta)`` — upsert, O(log m);
* ``from_items`` — O(m) bulk build from sorted (key, value) pairs.

The rank-addressed sibling :class:`~repro.core.bc_tree.BcTree` remains
the right tool when rows must be inserted *between* existing ones
(dynamic growth re-indexing); this keyed form is the right tool inside
overlay boxes, where row indexes are fixed but mostly empty.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

from ..counters import OpCounter
from ..exceptions import ConfigurationError, StructureError

__all__ = ["DEFAULT_FANOUT", "KeyedBcTree"]

DEFAULT_FANOUT = 16
_MIN_FANOUT = 3


class _Leaf:
    """Sorted run of (key, value) rows."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: list[int], values: list) -> None:
        self.keys = keys
        self.values = values


class _Internal:
    """Children plus, per child, the subtree's maximum key and sum (STS)."""

    __slots__ = ("children", "max_keys", "sums")

    def __init__(self, children: list, max_keys: list[int], sums: list) -> None:
        self.children = children
        self.max_keys = max_keys
        self.sums = sums


class KeyedBcTree:
    """Sparse cumulative B-tree keyed by row index.

    Args:
        fanout: maximum entries per node.
        counter: optional shared :class:`OpCounter` (the Dynamic Data
            Cube aggregates secondary-structure costs this way).
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT, counter: OpCounter | None = None):
        if fanout < _MIN_FANOUT:
            raise ConfigurationError(f"fanout must be >= {_MIN_FANOUT}, got {fanout}")
        self.fanout = fanout
        self.stats = counter if counter is not None else OpCounter()
        self._root: _Leaf | _Internal = _Leaf([], [])
        self._size = 0
        self._total = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_items(
        cls,
        items: Sequence[tuple[int, object]],
        fanout: int = DEFAULT_FANOUT,
        counter: OpCounter | None = None,
    ) -> "KeyedBcTree":
        """Bulk-build from (key, value) pairs sorted by strictly rising key."""
        tree = cls(fanout=fanout, counter=counter)
        items = list(items)
        if not items:
            return tree
        keys = [key for key, _ in items]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise ConfigurationError("items must be sorted by strictly increasing key")
        tree._size = len(items)
        tree._total = sum(value for _, value in items)

        level: list = []
        summaries: list[tuple[int, object]] = []  # (max_key, sum) per node
        for chunk in _chunks(items, fanout):
            leaf = _Leaf([key for key, _ in chunk], [value for _, value in chunk])
            level.append(leaf)
            summaries.append((leaf.keys[-1], sum(leaf.values)))
        while len(level) > 1:
            next_level: list = []
            next_summaries: list[tuple[int, object]] = []
            for group in _chunks(list(range(len(level))), fanout):
                children = [level[i] for i in group]
                max_keys = [summaries[i][0] for i in group]
                sums = [summaries[i][1] for i in group]
                next_level.append(_Internal(children, max_keys, sums))
                next_summaries.append((max_keys[-1], sum(sums)))
            level = next_level
            summaries = next_summaries
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *stored* (populated) rows."""
        return self._size

    def total(self):
        """Sum of every stored row (O(1))."""
        return self._total

    def prefix_sum(self, key: int):
        """Sum of all rows with key <= ``key`` (the cumulative row sum)."""
        node = self._root
        acc = 0
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            descend = None
            for index, max_key in enumerate(node.max_keys):
                if max_key <= key:
                    acc += node.sums[index]
                    self.stats.cell_reads += 1
                else:
                    descend = node.children[index]
                    break
            if descend is None:
                return acc
            node = descend
        self.stats.node_visits += 1
        self.stats.touch(node)
        stop = bisect_right(node.keys, key)
        for position in range(stop):
            acc += node.values[position]
            self.stats.cell_reads += 1
        return acc

    def prefix_sum_many(self, keys: Sequence[int]) -> list:
        """Batch cumulative sums via one shared root-to-leaf descent.

        Duplicate keys are answered once; the distinct keys are sorted
        and routed down the tree together so every node on any query's
        path is visited once for the whole batch, and at each node the
        preceding STSs are read once (the rightmost query's descent
        covers every STS the others need).
        """
        results: list = [None] * len(keys)
        order: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            order.setdefault(key, []).append(position)
        if not order:
            return []
        if len(order) == 1:
            value = self.prefix_sum(next(iter(order)))
            return [value] * len(keys)
        distinct = sorted(order)
        values = self._prefix_many(self._root, distinct)
        for key, value in zip(distinct, values):
            for position in order[key]:
                results[position] = value
        return results

    def _prefix_many(self, node, keys: list[int]) -> list:
        """Answer sorted distinct ``keys`` under ``node`` (results in order)."""
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            stops = [bisect_right(node.keys, key) for key in keys]
            limit = stops[-1]
            self.stats.cell_reads += limit
            prefix = [0]
            acc = 0
            for value in node.values[:limit]:
                acc += value
                prefix.append(acc)
            return [prefix[stop] for stop in stops]
        # Sorted keys route monotonically: sweep children left to right,
        # folding in every passed STS; a key larger than all max keys
        # resolves here (its answer is the node's whole subtree sum).
        buckets: list[tuple[int | None, object, list[int]]] = []
        child_index = 0
        base = 0
        sts_reads = 0
        current: tuple[int | None, object, list[int]] | None = None
        for key in keys:
            while child_index < len(node.max_keys) and node.max_keys[child_index] <= key:
                base += node.sums[child_index]
                child_index += 1
            if child_index < len(node.children):
                target: int | None = child_index
                sts_reads = max(sts_reads, child_index)
            else:
                target = None
                sts_reads = len(node.sums)
            if current is None or current[0] != target:
                current = (target, base, [])
                buckets.append(current)
            current[2].append(key)
        self.stats.cell_reads += sts_reads
        results: list = []
        for target, bucket_base, local_keys in buckets:
            if target is None:
                results.extend(bucket_base for _ in local_keys)
            else:
                sub = self._prefix_many(node.children[target], local_keys)
                results.extend(bucket_base + value for value in sub)
        return results

    def get(self, key: int):
        """Value of the row at ``key`` (0 when the row is unpopulated)."""
        node = self._root
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            descend = None
            for index, max_key in enumerate(node.max_keys):
                if key <= max_key:
                    descend = node.children[index]
                    break
            if descend is None:
                return 0
            node = descend
        self.stats.node_visits += 1
        self.stats.touch(node)
        position = bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            self.stats.cell_reads += 1
            return node.values[position]
        return 0

    def items(self) -> Iterator[tuple[int, object]]:
        """Every stored (key, value) pair in key order."""
        yield from self._iter(self._root)

    def _iter(self, node) -> Iterator[tuple[int, object]]:
        if isinstance(node, _Leaf):
            yield from zip(node.keys, node.values)
        else:
            for child in node.children:
                yield from self._iter(child)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: int, delta) -> None:
        """Add ``delta`` to the row at ``key``, creating it if absent."""
        if delta == 0:
            return
        split = self._add(self._root, key, delta)
        if split is not None:
            left_summary, right_node, right_summary = split
            self._root = _Internal(
                [self._root, right_node],
                [left_summary[0], right_summary[0]],
                [left_summary[1], right_summary[1]],
            )
        self._total += delta

    def set(self, key: int, value) -> None:
        """Make the row at ``key`` hold exactly ``value``."""
        self.add(key, value - self.get(key))

    def add_many(self, items: Sequence[tuple[int, object]]) -> None:
        """Bulk upsert: one shared descent for the whole batch.

        Deltas on the same key are combined and zeros dropped; the
        survivors are routed down together, each visited node updating
        one STS per *touched child*.  Unlike the rank tree, an upsert
        can create rows, so a node may burst into several pieces at
        once; ``_add_many`` returns the multi-way split and the root
        regrows as many levels as the batch demands.
        """
        combined: dict[int, object] = {}
        for key, delta in items:
            combined[key] = combined.get(key, 0) + delta
        pending = sorted((key, delta) for key, delta in combined.items() if delta != 0)
        if not pending:
            return
        pieces = self._add_many(self._root, pending)
        while len(pieces) > 1:
            grown: list[tuple[object, int, object]] = []
            for group in _chunks(pieces, self.fanout):
                children = [child for child, _, _ in group]
                max_keys = [max_key for _, max_key, _ in group]
                sums = [piece_sum for _, _, piece_sum in group]
                grown.append(
                    (_Internal(children, max_keys, sums), max_keys[-1], sum(sums))
                )
            pieces = grown
        self._root = pieces[0][0]
        self._total += sum(delta for _, delta in pending)

    def _add_many(self, node, items: list[tuple[int, object]]) -> list:
        """Upsert sorted distinct ``items`` under ``node``.

        Returns the node's replacement as a list of
        ``(node, max_key, subtree_sum)`` pieces — one piece when the node
        absorbed the batch in place, several after a multi-way split.
        All pieces satisfy the B-tree fill bounds (via :func:`_chunks`).
        """
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            for key, delta in items:
                position = bisect_left(node.keys, key)
                if position < len(node.keys) and node.keys[position] == key:
                    node.values[position] += delta
                else:
                    node.keys.insert(position, key)
                    node.values.insert(position, delta)
                    self._size += 1
            self.stats.cell_writes += len(items)
            if len(node.keys) <= self.fanout:
                return [(node, node.keys[-1], sum(node.values))]
            pairs = list(zip(node.keys, node.values))
            chunks = _chunks(pairs, self.fanout)
            node.keys = [key for key, _ in chunks[0]]
            node.values = [value for _, value in chunks[0]]
            pieces: list = [(node, node.keys[-1], sum(node.values))]
            for chunk in chunks[1:]:
                leaf = _Leaf([key for key, _ in chunk], [value for _, value in chunk])
                pieces.append((leaf, leaf.keys[-1], sum(leaf.values)))
            return pieces

        # Route the sorted batch: first child whose max key fits, the
        # last child collecting everything beyond the largest max key.
        buckets: list[tuple[int, list[tuple[int, object]]]] = []
        child_index = 0
        current: tuple[int, list[tuple[int, object]]] | None = None
        for key, delta in items:
            while (
                child_index < len(node.max_keys) - 1
                and key > node.max_keys[child_index]
            ):
                child_index += 1
            if current is None or current[0] != child_index:
                current = (child_index, [])
                buckets.append(current)
            current[1].append((key, delta))

        new_children: list = []
        new_max_keys: list[int] = []
        new_sums: list = []
        position = 0
        for child_index, local_items in buckets:
            while position < child_index:
                new_children.append(node.children[position])
                new_max_keys.append(node.max_keys[position])
                new_sums.append(node.sums[position])
                position += 1
            for piece, piece_max, piece_sum in self._add_many(
                node.children[child_index], local_items
            ):
                new_children.append(piece)
                new_max_keys.append(piece_max)
                new_sums.append(piece_sum)
            self.stats.cell_writes += 1
            position = child_index + 1
        while position < len(node.children):
            new_children.append(node.children[position])
            new_max_keys.append(node.max_keys[position])
            new_sums.append(node.sums[position])
            position += 1

        if len(new_children) <= self.fanout:
            node.children = new_children
            node.max_keys = new_max_keys
            node.sums = new_sums
            return [(node, new_max_keys[-1], sum(new_sums))]
        entries = list(zip(new_children, new_max_keys, new_sums))
        pieces = []
        for index, chunk in enumerate(_chunks(entries, self.fanout)):
            children = [child for child, _, _ in chunk]
            max_keys = [max_key for _, max_key, _ in chunk]
            sums = [chunk_sum for _, _, chunk_sum in chunk]
            if index == 0:
                node.children = children
                node.max_keys = max_keys
                node.sums = sums
                piece = node
            else:
                piece = _Internal(children, max_keys, sums)
            pieces.append((piece, max_keys[-1], sum(sums)))
        return pieces

    def _add(self, node, key: int, delta):
        """Recursive upsert; returns split info or ``None``.

        Split info is ``((left_max_key, left_sum), right_node,
        (right_max_key, right_sum))``.
        """
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            position = bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position] += delta
            else:
                node.keys.insert(position, key)
                node.values.insert(position, delta)
                self._size += 1
            self.stats.cell_writes += 1
            if len(node.keys) <= self.fanout:
                return None
            middle = len(node.keys) // 2
            right = _Leaf(node.keys[middle:], node.values[middle:])
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            return (
                (node.keys[-1], sum(node.values)),
                right,
                (right.keys[-1], sum(right.values)),
            )

        child_index = len(node.children) - 1
        for index, max_key in enumerate(node.max_keys):
            if key <= max_key:
                child_index = index
                break
        split = self._add(node.children[child_index], key, delta)
        node.sums[child_index] += delta
        node.max_keys[child_index] = max(node.max_keys[child_index], key)
        self.stats.cell_writes += 1
        if split is None:
            return None
        left_summary, right_node, right_summary = split
        node.max_keys[child_index] = left_summary[0]
        node.sums[child_index] = left_summary[1]
        node.children.insert(child_index + 1, right_node)
        node.max_keys.insert(child_index + 1, right_summary[0])
        node.sums.insert(child_index + 1, right_summary[1])
        if len(node.children) <= self.fanout:
            return None
        middle = len(node.children) // 2
        right = _Internal(
            node.children[middle:], node.max_keys[middle:], node.sums[middle:]
        )
        node.children = node.children[:middle]
        node.max_keys = node.max_keys[:middle]
        node.sums = node.sums[:middle]
        return (
            (node.max_keys[-1], sum(node.sums)),
            right,
            (right.max_keys[-1], sum(right.sums)),
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def memory_cells(self) -> int:
        """Stored values plus interior bookkeeping entries."""
        return self._memory(self._root)

    def _memory(self, node) -> int:
        if isinstance(node, _Leaf):
            return len(node.values)
        cells = len(node.sums) + len(node.max_keys)
        return cells + sum(self._memory(child) for child in node.children)

    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`StructureError`."""
        size, total, _, _ = self._validate(self._root, is_root=True)
        if size != self._size:
            raise StructureError(f"size cache {self._size} != actual {size}")
        if total != self._total:
            raise StructureError(f"total cache {self._total} != actual {total}")
        keys = [key for key, _ in self.items()]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise StructureError("keys not strictly increasing")

    def _validate(self, node, is_root: bool):
        minimum = (self.fanout + 1) // 2
        if isinstance(node, _Leaf):
            if not is_root and len(node.keys) < minimum:
                raise StructureError("leaf underfull")
            if len(node.keys) > self.fanout:
                raise StructureError("leaf overfull")
            max_key = node.keys[-1] if node.keys else None
            return len(node.keys), sum(node.values), 1, max_key

        if not is_root and len(node.children) < minimum:
            raise StructureError("internal node underfull")
        if is_root and len(node.children) < 2:
            raise StructureError("internal root must have >= 2 children")
        if len(node.children) > self.fanout:
            raise StructureError("internal node overfull")
        total_size = 0
        total_sum = 0
        depths = set()
        for child, cached_max, cached_sum in zip(
            node.children, node.max_keys, node.sums
        ):
            size, child_sum, depth, child_max = self._validate(child, is_root=False)
            if child_sum != cached_sum:
                raise StructureError(f"STS cache {cached_sum} != actual {child_sum}")
            if child_max != cached_max:
                raise StructureError(
                    f"max-key cache {cached_max} != actual {child_max}"
                )
            total_size += size
            total_sum += child_sum
            depths.add(depth)
        if len(depths) != 1:
            raise StructureError("leaves at differing depths")
        return total_size, total_sum, depths.pop() + 1, node.max_keys[-1]


def _chunks(items: list, fanout: int) -> list[list]:
    """Chunks of size <= fanout and >= ceil(fanout / 2) (except a lone root)."""
    total = len(items)
    if total <= fanout:
        return [items]
    minimum = (fanout + 1) // 2
    chunks = [items[start : start + fanout] for start in range(0, total, fanout)]
    if len(chunks[-1]) < minimum:
        deficit = minimum - len(chunks[-1])
        chunks[-1] = chunks[-2][-deficit:] + chunks[-1]
        chunks[-2] = chunks[-2][:-deficit]
    return chunks
