"""Key-addressed B^c tree: the sparse form of the cumulative B-tree.

Section 4.1 of the paper describes B^c tree leaves as carrying explicit
keys — "the key for each leaf ... is equal to the index of the cell in
the one-dimensional array of row sum values".  Taken literally, a key-
addressed tree only needs leaves for rows that actually hold data, which
is exactly what Section 5's sparse/clustered cubes require: an overlay
group over a mostly-empty region must not materialise every empty row.

:class:`KeyedBcTree` is that structure — a B-tree mapping integer keys
to row values, with per-child subtree sums (STS) in the interior nodes:

* ``prefix_sum(key)`` — sum of every stored row with key <= ``key``,
  O(log m) for m stored rows;
* ``add(key, delta)`` — upsert, O(log m);
* ``from_items`` — O(m) bulk build from sorted (key, value) pairs.

The rank-addressed sibling :class:`~repro.core.bc_tree.BcTree` remains
the right tool when rows must be inserted *between* existing ones
(dynamic growth re-indexing); this keyed form is the right tool inside
overlay boxes, where row indexes are fixed but mostly empty.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

from ..counters import OpCounter
from ..exceptions import ConfigurationError, StructureError

__all__ = ["DEFAULT_FANOUT", "KeyedBcTree"]

DEFAULT_FANOUT = 16
_MIN_FANOUT = 3


class _Leaf:
    """Sorted run of (key, value) rows."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: list[int], values: list) -> None:
        self.keys = keys
        self.values = values


class _Internal:
    """Children plus, per child, the subtree's maximum key and sum (STS)."""

    __slots__ = ("children", "max_keys", "sums")

    def __init__(self, children: list, max_keys: list[int], sums: list) -> None:
        self.children = children
        self.max_keys = max_keys
        self.sums = sums


class KeyedBcTree:
    """Sparse cumulative B-tree keyed by row index.

    Args:
        fanout: maximum entries per node.
        counter: optional shared :class:`OpCounter` (the Dynamic Data
            Cube aggregates secondary-structure costs this way).
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT, counter: OpCounter | None = None):
        if fanout < _MIN_FANOUT:
            raise ConfigurationError(f"fanout must be >= {_MIN_FANOUT}, got {fanout}")
        self.fanout = fanout
        self.stats = counter if counter is not None else OpCounter()
        self._root: _Leaf | _Internal = _Leaf([], [])
        self._size = 0
        self._total = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_items(
        cls,
        items: Sequence[tuple[int, object]],
        fanout: int = DEFAULT_FANOUT,
        counter: OpCounter | None = None,
    ) -> "KeyedBcTree":
        """Bulk-build from (key, value) pairs sorted by strictly rising key."""
        tree = cls(fanout=fanout, counter=counter)
        items = list(items)
        if not items:
            return tree
        keys = [key for key, _ in items]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise ConfigurationError("items must be sorted by strictly increasing key")
        tree._size = len(items)
        tree._total = sum(value for _, value in items)

        level: list = []
        summaries: list[tuple[int, object]] = []  # (max_key, sum) per node
        for chunk in _chunks(items, fanout):
            leaf = _Leaf([key for key, _ in chunk], [value for _, value in chunk])
            level.append(leaf)
            summaries.append((leaf.keys[-1], sum(leaf.values)))
        while len(level) > 1:
            next_level: list = []
            next_summaries: list[tuple[int, object]] = []
            for group in _chunks(list(range(len(level))), fanout):
                children = [level[i] for i in group]
                max_keys = [summaries[i][0] for i in group]
                sums = [summaries[i][1] for i in group]
                next_level.append(_Internal(children, max_keys, sums))
                next_summaries.append((max_keys[-1], sum(sums)))
            level = next_level
            summaries = next_summaries
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *stored* (populated) rows."""
        return self._size

    def total(self):
        """Sum of every stored row (O(1))."""
        return self._total

    def prefix_sum(self, key: int):
        """Sum of all rows with key <= ``key`` (the cumulative row sum)."""
        node = self._root
        acc = 0
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            descend = None
            for index, max_key in enumerate(node.max_keys):
                if max_key <= key:
                    acc += node.sums[index]
                    self.stats.cell_reads += 1
                else:
                    descend = node.children[index]
                    break
            if descend is None:
                return acc
            node = descend
        self.stats.node_visits += 1
        self.stats.touch(node)
        stop = bisect_right(node.keys, key)
        for position in range(stop):
            acc += node.values[position]
            self.stats.cell_reads += 1
        return acc

    def get(self, key: int):
        """Value of the row at ``key`` (0 when the row is unpopulated)."""
        node = self._root
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            descend = None
            for index, max_key in enumerate(node.max_keys):
                if key <= max_key:
                    descend = node.children[index]
                    break
            if descend is None:
                return 0
            node = descend
        self.stats.node_visits += 1
        self.stats.touch(node)
        position = bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            self.stats.cell_reads += 1
            return node.values[position]
        return 0

    def items(self) -> Iterator[tuple[int, object]]:
        """Every stored (key, value) pair in key order."""
        yield from self._iter(self._root)

    def _iter(self, node) -> Iterator[tuple[int, object]]:
        if isinstance(node, _Leaf):
            yield from zip(node.keys, node.values)
        else:
            for child in node.children:
                yield from self._iter(child)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: int, delta) -> None:
        """Add ``delta`` to the row at ``key``, creating it if absent."""
        if delta == 0:
            return
        split = self._add(self._root, key, delta)
        if split is not None:
            left_summary, right_node, right_summary = split
            self._root = _Internal(
                [self._root, right_node],
                [left_summary[0], right_summary[0]],
                [left_summary[1], right_summary[1]],
            )
        self._total += delta

    def set(self, key: int, value) -> None:
        """Make the row at ``key`` hold exactly ``value``."""
        self.add(key, value - self.get(key))

    def _add(self, node, key: int, delta):
        """Recursive upsert; returns split info or ``None``.

        Split info is ``((left_max_key, left_sum), right_node,
        (right_max_key, right_sum))``.
        """
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            position = bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position] += delta
            else:
                node.keys.insert(position, key)
                node.values.insert(position, delta)
                self._size += 1
            self.stats.cell_writes += 1
            if len(node.keys) <= self.fanout:
                return None
            middle = len(node.keys) // 2
            right = _Leaf(node.keys[middle:], node.values[middle:])
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            return (
                (node.keys[-1], sum(node.values)),
                right,
                (right.keys[-1], sum(right.values)),
            )

        child_index = len(node.children) - 1
        for index, max_key in enumerate(node.max_keys):
            if key <= max_key:
                child_index = index
                break
        split = self._add(node.children[child_index], key, delta)
        node.sums[child_index] += delta
        node.max_keys[child_index] = max(node.max_keys[child_index], key)
        self.stats.cell_writes += 1
        if split is None:
            return None
        left_summary, right_node, right_summary = split
        node.max_keys[child_index] = left_summary[0]
        node.sums[child_index] = left_summary[1]
        node.children.insert(child_index + 1, right_node)
        node.max_keys.insert(child_index + 1, right_summary[0])
        node.sums.insert(child_index + 1, right_summary[1])
        if len(node.children) <= self.fanout:
            return None
        middle = len(node.children) // 2
        right = _Internal(
            node.children[middle:], node.max_keys[middle:], node.sums[middle:]
        )
        node.children = node.children[:middle]
        node.max_keys = node.max_keys[:middle]
        node.sums = node.sums[:middle]
        return (
            (node.max_keys[-1], sum(node.sums)),
            right,
            (right.max_keys[-1], sum(right.sums)),
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def memory_cells(self) -> int:
        """Stored values plus interior bookkeeping entries."""
        return self._memory(self._root)

    def _memory(self, node) -> int:
        if isinstance(node, _Leaf):
            return len(node.values)
        cells = len(node.sums) + len(node.max_keys)
        return cells + sum(self._memory(child) for child in node.children)

    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`StructureError`."""
        size, total, _, _ = self._validate(self._root, is_root=True)
        if size != self._size:
            raise StructureError(f"size cache {self._size} != actual {size}")
        if total != self._total:
            raise StructureError(f"total cache {self._total} != actual {total}")
        keys = [key for key, _ in self.items()]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise StructureError("keys not strictly increasing")

    def _validate(self, node, is_root: bool):
        minimum = (self.fanout + 1) // 2
        if isinstance(node, _Leaf):
            if not is_root and len(node.keys) < minimum:
                raise StructureError("leaf underfull")
            if len(node.keys) > self.fanout:
                raise StructureError("leaf overfull")
            max_key = node.keys[-1] if node.keys else None
            return len(node.keys), sum(node.values), 1, max_key

        if not is_root and len(node.children) < minimum:
            raise StructureError("internal node underfull")
        if is_root and len(node.children) < 2:
            raise StructureError("internal root must have >= 2 children")
        if len(node.children) > self.fanout:
            raise StructureError("internal node overfull")
        total_size = 0
        total_sum = 0
        depths = set()
        for child, cached_max, cached_sum in zip(
            node.children, node.max_keys, node.sums
        ):
            size, child_sum, depth, child_max = self._validate(child, is_root=False)
            if child_sum != cached_sum:
                raise StructureError(f"STS cache {cached_sum} != actual {child_sum}")
            if child_max != cached_max:
                raise StructureError(
                    f"max-key cache {cached_max} != actual {child_max}"
                )
            total_size += size
            total_sum += child_sum
            depths.add(depth)
        if len(depths) != 1:
            raise StructureError("leaves at differing depths")
        return total_size, total_sum, depths.pop() + 1, node.max_keys[-1]


def _chunks(items: list, fanout: int) -> list[list]:
    """Chunks of size <= fanout and >= ceil(fanout / 2) (except a lone root)."""
    total = len(items)
    if total <= fanout:
        return [items]
    minimum = (fanout + 1) // 2
    chunks = [items[start : start + fanout] for start in range(0, total, fanout)]
    if len(chunks[-1]) < minimum:
        deficit = minimum - len(chunks[-1])
        chunks[-1] = chunks[-2][-deficit:] + chunks[-1]
        chunks[-2] = chunks[-2][:-deficit]
    return chunks
