"""The Basic Dynamic Data Cube (Section 3).

Identical primary tree to the full Dynamic Data Cube, but every overlay
box stores its row-sum groups *directly* as dense cumulative arrays
(:class:`~repro.core.overlay.ArrayOverlay`).  Queries remain O(log n)
node visits with O(1) per overlay value, but a point update must rewrite
all cumulative row sums dominating the cell in the covering overlay box
at every level — the geometric series the paper evaluates in Section 3.3:

    d * (n/2)^(d-1) + d * (n/4)^(d-1) + ... + d * 1
        = d * (n^(d-1) - 1) / (2^(d-1) - 1)  =  O(n^(d-1))

The paper presents this structure as the motivation for Section 4; we
keep it as a first-class method so the improvement is measurable.

The batch query engine is inherited unchanged: ``prefix_sum_many`` runs
the same path-sharing traversal as the full cube, with
:meth:`ArrayOverlay.row_value_many` answering each node's distinct
row-sum reads as one fancy-index gather, and ``add_many`` routes a
grouped descent through :meth:`ArrayOverlay.apply_delta_many`'s
adaptive cascade (per-update slice adds below the crossover, one
cumulative pass per group above it).
"""

from __future__ import annotations

from .ddc import DynamicDataCube
from .overlay import ArrayOverlay

__all__ = ["BasicDynamicDataCube"]


class BasicDynamicDataCube(DynamicDataCube):
    """Section 3 tree: O(log n) queries, O(n^(d-1)) worst-case updates."""

    name = "basic-ddc"
    _overlay_class = ArrayOverlay
