"""Core structures: the Dynamic Data Cube and its substrates."""

from .basic_ddc import BasicDynamicDataCube
from .bc_tree import BcTree
from .ddc import DynamicDataCube
from .growth import GrowableCube
from .overlay import ArrayOverlay, TreeOverlay

__all__ = [
    "BcTree",
    "ArrayOverlay",
    "TreeOverlay",
    "BasicDynamicDataCube",
    "DynamicDataCube",
    "GrowableCube",
]
