"""Contiguous b-ary level slabs with branch-free batched descent.

The pointer-based :class:`~repro.core.ddc.DynamicDataCube` answers a
prefix sum by *walking* — each level is a Python attribute hop, each
child selection a comparison, each overlay read an interpreted index.
Pibiri & Venturini ("Practical Trade-Offs for the Prefix-Sum Problem")
show that on modern hardware the same recursion flattened into blocked
arrays beats the pointer walk by large constants: the per-level state
becomes *data* (a shift and a stride) instead of *control flow*, so a
whole batch of queries advances one level per step with a single
fancy-index gather.

This module stores the b-ary descent of a d-dimensional cube as one
contiguous buffer sliced into **level slabs**.  With branching factor
``b`` (a power of two) and per-axis heights ``H_k`` (``b**H_k`` covers
axis ``k``), there is one slab per *level combination*
``L = (l_1, ..., l_d)`` with ``l_k in range(H_k)``, shaped
``(b**(l_1+1), ..., b**(l_d+1))``.  Along axis ``k``:

* at an **internal** level ``l_k < H_k - 1`` the slab holds the
  *exclusive* sibling block prefix — entry ``p`` sums the subtrees of
  the siblings that precede ``p`` inside its parent node;
* at the **leaf** level ``l_k == H_k - 1`` it holds the *inclusive*
  running sum within the leaf block.

Because each per-axis operator is linear, the d-dimensional slab is
their tensor product, and the paper's recursive prefix sum collapses to
a branch-free sum of ``prod(H_k)`` gathers::

    prefix(i_1, ..., i_d) = sum over L of  slab_L[i_1 >> s_1, ...]

where ``s_k = (H_k - 1 - l_k) * log2(b)`` — child selection is a shift,
never a comparison.  Updates are the transpose: a point delta lands in
every slab as one small axis-aligned rectangle ``+=`` (the sibling
suffix on each axis), and a *batch* of updates is a vectorised scatter
into a scratch plane followed by one blockwise ``cumsum`` per axis —
the whole root-to-leaf scatter path, vectorised.

An optional :mod:`numba` kernel fuses the per-level gathers into one
jitted loop; it is feature-detected at import and the numpy gather path
is the always-available fallback (``HAVE_NUMBA`` / ``kernel_backend()``
report which one is live).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError, StructureError

__all__ = [
    "HAVE_NUMBA",
    "SlabTree",
    "expand_corners",
    "kernel_backend",
    "slab_prefix_gather",
    "slab_range_many",
]

Array = np.ndarray[Any, np.dtype[Any]]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common (pure numpy) case
    _njit = None
    HAVE_NUMBA = False

#: Kill switch: ``REPRO_NO_NUMBA=1`` forces the numpy gather path even
#: when numba is importable (useful for A/B runs of the two kernels).
_NUMBA_DISABLED = bool(os.environ.get("REPRO_NO_NUMBA"))

_GATHER_KERNEL: Callable[..., None] | None = None

if HAVE_NUMBA and not _NUMBA_DISABLED:  # pragma: no cover - numba-only

    @_njit(cache=True)
    def _numba_gather(
        buffer: Array,
        offsets: Array,
        shifts: Array,
        strides: Array,
        coords: Array,
        out: Array,
    ) -> None:
        levels = offsets.shape[0]
        count = coords.shape[0]
        dims = coords.shape[1]
        for query in range(count):
            for level in range(levels):
                flat = offsets[level]
                for axis in range(dims):
                    flat += (coords[query, axis] >> shifts[level, axis]) * strides[
                        level, axis
                    ]
                out[query] = out[query] + buffer[flat]

    _GATHER_KERNEL = _numba_gather


def kernel_backend() -> str:
    """Which gather kernel is live: ``"numba"`` or ``"numpy"``."""
    return "numba" if _GATHER_KERNEL is not None else "numpy"


def expand_corners(lows: Array, highs: Array) -> tuple[Array, Array, Array]:
    """Inclusion-exclusion corner expansion for a batch of boxes.

    Given inclusive bounds ``lows`` / ``highs`` of shape ``(Q, d)``,
    returns ``(corners, valid, signs)`` where ``corners`` is the
    ``(Q * 2**d, d)`` array of prefix anchor cells (row-major by query,
    minor by corner mask), ``valid`` marks corners whose every
    coordinate is non-negative (a ``low - 1`` that underflows the cube
    contributes nothing), and ``signs`` is the length-``2**d``
    alternating sign pattern shared by every query.  Invalid corners are
    clamped to 0 so the caller can gather unconditionally and mask after.
    """
    count, dims = lows.shape
    combos = 1 << dims
    corners = np.empty((count, combos, dims), dtype=np.int64)
    signs = np.empty(combos, dtype=np.int64)
    for mask in range(combos):
        sign = 1
        for axis in range(dims):
            if (mask >> axis) & 1:
                corners[:, mask, axis] = lows[:, axis] - 1
                sign = -sign
            else:
                corners[:, mask, axis] = highs[:, axis]
        signs[mask] = sign
    flat = corners.reshape(count * combos, dims)
    valid = (flat >= 0).all(axis=1)
    np.maximum(flat, 0, out=flat)
    return flat, valid, signs


def slab_prefix_gather(slab: Array, coords: Array) -> Array:
    """Batched prefix-sum gather off a dense inclusive prefix slab.

    The degenerate single-level case of the b-ary layout: the whole
    cube is one leaf block whose slab *is* the HAMS97 prefix array, so a
    prefix sum is one fancy-index gather.  ``coords`` is ``(Q, d)``.
    """
    index = tuple(coords[:, axis] for axis in range(slab.ndim))
    return slab[index]


def slab_range_many(slab: Array, lows: Array, highs: Array) -> Array:
    """Vectorised inclusion-exclusion range sums off a prefix slab.

    Replaces the per-query Python corner construction: one corner
    expansion, one gather, one signed reduction for the whole batch.
    """
    count = lows.shape[0]
    corners, valid, signs = expand_corners(lows, highs)
    values = slab_prefix_gather(slab, corners)
    values[~valid] = 0
    combos = signs.shape[0]
    return (values.reshape(count, combos) * signs).sum(axis=1)


class _LevelSlab:
    """One level combination: a contiguous slab view plus its geometry."""

    __slots__ = (
        "combo",
        "shape",
        "shifts",
        "strides",
        "start_offsets",
        "flat",
        "tensor",
        "shift_arr",
        "stride_arr",
        "offset_arr",
        "offset",
    )

    def __init__(
        self,
        combo: tuple[int, ...],
        shape: tuple[int, ...],
        shifts: tuple[int, ...],
        start_offsets: tuple[int, ...],
        offset: int,
    ) -> None:
        self.combo = combo
        self.shape = shape
        self.shifts = shifts
        self.start_offsets = start_offsets
        self.offset = offset
        strides = [1] * len(shape)
        for axis in range(len(shape) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * shape[axis + 1]
        self.strides = tuple(strides)
        self.shift_arr = np.asarray(shifts, dtype=np.int64)
        self.stride_arr = np.asarray(self.strides, dtype=np.int64)
        self.offset_arr = np.asarray(start_offsets, dtype=np.int64)
        # ``flat`` / ``tensor`` are bound by SlabTree once the shared
        # buffer exists; declared here so __slots__ carries them.
        self.flat: Array | None = None
        self.tensor: Array | None = None

    @property
    def cells(self) -> int:
        return int(self.stride_arr[0] * self.shape[0])


class SlabTree:
    """b-ary level-slab decomposition of a d-dimensional cube.

    All storage lives in one contiguous ``buffer``; every level slab is
    a reshaped view into it, so the structure is exactly the "flat
    slabs" layout the shared-memory store ships between processes.

    Args:
        shape: logical cube shape ``(n_1, ..., n_d)``.
        dtype: stored value dtype (must support exact add/subtract).
        branching: children per node ``b``; must be a power of two
            (child selection is a shift, the layout's whole point).
    """

    def __init__(
        self,
        shape: Sequence[int],
        dtype: Any = np.int64,
        branching: int = 16,
    ) -> None:
        self.shape: tuple[int, ...] = tuple(int(n) for n in shape)
        if not self.shape or any(n < 1 for n in self.shape):
            raise ConfigurationError(f"invalid slab-tree shape {self.shape!r}")
        if branching < 2 or branching & (branching - 1):
            raise ConfigurationError(
                f"branching must be a power of two >= 2, got {branching}"
            )
        self.dims = len(self.shape)
        self.dtype = np.dtype(dtype)
        self.branching = int(branching)
        self._log2b = self.branching.bit_length() - 1
        heights = []
        for extent in self.shape:
            height = 1
            while self.branching**height < extent:
                height += 1
            heights.append(height)
        self.heights: tuple[int, ...] = tuple(heights)
        self.capacities: tuple[int, ...] = tuple(
            self.branching**height for height in self.heights
        )
        self._levels: list[_LevelSlab] = []
        offset = 0
        for combo in _level_combos(self.heights):
            slab_shape = tuple(
                self.branching ** (level + 1) for level in combo
            )
            shifts = tuple(
                (self.heights[axis] - 1 - combo[axis]) * self._log2b
                for axis in range(self.dims)
            )
            start_offsets = tuple(
                0 if combo[axis] == self.heights[axis] - 1 else 1
                for axis in range(self.dims)
            )
            level = _LevelSlab(combo, slab_shape, shifts, start_offsets, offset)
            offset += level.cells
            self._levels.append(level)
        self.buffer: Array = np.zeros(offset, dtype=self.dtype)
        for level in self._levels:
            size = level.cells
            level.flat = self.buffer[level.offset : level.offset + size]
            level.tensor = level.flat.reshape(level.shape)
        self._offsets = np.asarray(
            [level.offset for level in self._levels], dtype=np.int64
        )
        self._shift_mat = np.stack([level.shift_arr for level in self._levels])
        self._stride_mat = np.stack([level.stride_arr for level in self._levels])
        # Reusable per-axis slice scratch for the rectangle updates (the
        # structures are externally synchronised, like every method).
        self._slice_scratch: list[slice] = [slice(None)] * self.dims

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def level_count(self) -> int:
        """Number of level slabs (``prod(H_k)`` gathers per prefix sum)."""
        return len(self._levels)

    def level_layout(self) -> list[dict[str, Any]]:
        """Per-slab geometry rows (benchmarks and docs render these)."""
        rows: list[dict[str, Any]] = []
        for level in self._levels:
            rows.append(
                {
                    "combo": list(level.combo),
                    "shape": list(level.shape),
                    "cells": level.cells,
                    "shifts": list(level.shifts),
                }
            )
        return rows

    def memory_cells(self) -> int:
        """Cells stored across every level slab."""
        return int(self.buffer.size)

    def validate(self) -> None:
        """Re-derive every level slab from the cube the buffer implies.

        The decomposition is canonical: ``load_dense`` is a
        deterministic function of the dense contents, and the dense
        contents are recoverable from the stored slabs by differencing
        the prefix sums.  A corrupted slab cell therefore breaks the
        round trip — the slabs rebuilt from the implied cube no longer
        match the stored buffer.  Intended for audits on small cubes
        (it materialises the dense contents).  Raises
        :class:`StructureError` on any mismatch.
        """
        grids = np.meshgrid(
            *(np.arange(extent) for extent in self.shape), indexing="ij"
        )
        coords = np.stack(
            [grid.reshape(-1) for grid in grids], axis=1
        ).astype(np.int64)
        dense = np.asarray(self.prefix_many(coords)).reshape(self.shape)
        for axis in range(self.dims):
            dense = np.diff(dense, axis=axis, prepend=0)
        mirror = SlabTree(self.shape, dtype=self.dtype, branching=self.branching)
        mirror.load_dense(dense)
        if not np.array_equal(mirror.buffer, self.buffer):
            bad = int(np.flatnonzero(mirror.buffer != self.buffer)[0])
            for level in self._levels:
                if level.offset <= bad < level.offset + level.cells:
                    local = bad - level.offset
                    raise StructureError(
                        f"slab {level.combo} cell {local} inconsistent: "
                        f"stored {self.buffer[bad]} != derived "
                        f"{mirror.buffer[bad]}"
                    )
            raise StructureError(  # pragma: no cover - offsets cover buffer
                f"buffer cell {bad} outside every level slab"
            )

    # ------------------------------------------------------------------
    # Bulk build
    # ------------------------------------------------------------------

    def load_dense(self, array: Array) -> None:
        """Recompute every level slab from a dense cube (vectorised)."""
        padded = np.zeros(self.capacities, dtype=self.dtype)
        padded[tuple(slice(0, extent) for extent in self.shape)] = array
        for level in self._levels:
            projected = padded
            for axis in range(self.dims):
                projected = self._axis_project(
                    projected, axis, level.combo[axis], self.heights[axis]
                )
            tensor = level.tensor
            if tensor is not None:
                tensor[...] = projected

    def _axis_project(
        self, array: Array, axis: int, level: int, height: int
    ) -> Array:
        """Apply one axis's level-``level`` operator (see module docs)."""
        branching = self.branching
        positions = branching ** (level + 1)
        block = array.shape[axis] // positions
        moved = np.moveaxis(array, axis, -1)
        lead = moved.shape[:-1]
        if block > 1:
            moved = moved.reshape(lead + (positions, block)).sum(axis=-1)
        grouped = np.cumsum(
            moved.reshape(lead + (positions // branching, branching)), axis=-1
        )
        if level < height - 1:
            shifted = np.zeros_like(grouped)
            shifted[..., 1:] = grouped[..., :-1]
            grouped = shifted
        return np.moveaxis(grouped.reshape(lead + (positions,)), -1, axis)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def prefix_one(self, cell: Sequence[int]) -> Any:
        """Scalar prefix sum: ``level_count`` shift-indexed reads."""
        total = self.dtype.type(0)
        buffer = self.buffer
        for level in self._levels:
            flat = level.offset
            for axis in range(self.dims):
                flat += (cell[axis] >> level.shifts[axis]) * level.strides[axis]
            total = total + buffer[flat]
        return total

    def gather_level(self, index: int, coords: Array) -> Array:
        """One level slab's contribution for a coordinate batch.

        The benchmark's per-level probe: one shift, one multiply-add,
        one fancy-index gather — the branch-free descent step.
        """
        level = self._levels[index]
        flat = ((coords >> level.shift_arr) * level.stride_arr).sum(axis=1)
        flat += level.offset
        return self.buffer[flat]

    def prefix_many(self, coords: Array) -> Array:
        """Batched prefix sums for ``(Q, d)`` coordinates (branch-free)."""
        count = coords.shape[0]
        out = np.zeros(count, dtype=self.dtype)
        if _GATHER_KERNEL is not None:  # pragma: no cover - numba-only
            _GATHER_KERNEL(
                self.buffer,
                self._offsets,
                self._shift_mat,
                self._stride_mat,
                np.ascontiguousarray(coords, dtype=np.int64),
                out,
            )
            return out
        for index in range(len(self._levels)):
            out += self.gather_level(index, coords)
        return out

    def range_many(self, lows: Array, highs: Array) -> Array:
        """Batched inclusive range sums via vectorised corner expansion."""
        count = lows.shape[0]
        corners, valid, signs = expand_corners(lows, highs)
        values = self.prefix_many(corners)
        values[~valid] = 0
        combos = signs.shape[0]
        return (values.reshape(count, combos) * signs).sum(axis=1)

    @staticmethod
    def valid_corner_count(lows: Array) -> int:
        """How many non-empty inclusion-exclusion corners a batch touches."""
        return int(np.prod(np.where(lows > 0, 2, 1), axis=1).sum())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_one(self, cell: Sequence[int], delta: Any) -> int:
        """Point update: one sibling-suffix rectangle ``+=`` per slab.

        Returns the number of cells written (the cost-model charge).
        """
        written = 0
        log2b = self._log2b
        scratch = self._slice_scratch
        for level in self._levels:
            size = 1
            empty = False
            for axis in range(self.dims):
                slot = cell[axis] >> level.shifts[axis]
                end = ((slot >> log2b) + 1) << log2b
                start = slot + level.start_offsets[axis]
                if start >= end:
                    empty = True
                    break
                scratch[axis] = slice(start, end)
                size *= end - start
            if empty:
                continue
            tensor = level.tensor
            if tensor is not None:
                tensor[tuple(scratch)] += delta
            written += size
        return written

    def add_batch(self, cells: Array, deltas: Array) -> int:
        """Batched point updates: vectorised scatter along every path.

        Per level slab the batch either applies as per-update rectangle
        ``+=`` (cheap when the batch is small next to the slab) or as a
        single scatter into a scratch plane followed by one blockwise
        ``cumsum`` per axis — the root-to-leaf scatter-add, vectorised.
        Returns the number of cells written.
        """
        written = 0
        log2b = self._log2b
        branching = self.branching
        fanout = branching**self.dims
        scratch = self._slice_scratch
        for level in self._levels:
            tensor = level.tensor
            if tensor is None:  # pragma: no cover - defensive
                continue
            slots = cells >> level.shift_arr
            ends = ((slots >> log2b) + 1) << log2b
            starts = slots + level.offset_arr
            lengths = ends - starts
            valid = lengths.min(axis=1) > 0
            hit = int(np.count_nonzero(valid))
            if not hit:
                continue
            written += int(lengths[valid].prod(axis=1).sum())
            if hit * fanout < tensor.size:
                valid_starts = starts[valid]
                valid_ends = ends[valid]
                valid_deltas = deltas[valid]
                for row in range(hit):
                    for axis in range(self.dims):
                        scratch[axis] = slice(
                            int(valid_starts[row, axis]),
                            int(valid_ends[row, axis]),
                        )
                    tensor[tuple(scratch)] += valid_deltas[row]
                continue
            plane = np.zeros(level.shape, dtype=self.dtype)
            index = tuple(starts[valid][:, axis] for axis in range(self.dims))
            np.add.at(plane, index, deltas[valid])
            for axis in range(self.dims):
                positions = level.shape[axis]
                moved = np.moveaxis(plane, axis, -1)
                lead = moved.shape[:-1]
                grouped = np.cumsum(
                    moved.reshape(lead + (positions // branching, branching)),
                    axis=-1,
                )
                plane = np.moveaxis(
                    grouped.reshape(lead + (positions,)), -1, axis
                )
            tensor += plane
        return written


def _level_combos(heights: Sequence[int]) -> list[tuple[int, ...]]:
    """All level combinations, lexicographic (root-most first)."""
    combos: list[tuple[int, ...]] = [()]
    for height in heights:
        combos = [combo + (level,) for combo in combos for level in range(height)]
    return combos
