"""The Dynamic Data Cube primary tree (Sections 3 and 4).

The primary tree recursively halves the cube's domain: a node covering a
region of side ``s`` has ``2^d`` children of side ``s/2``, and stores one
overlay box per child.  A prefix-sum query walks a single root-to-leaf
path (Theorem 1), collecting at most ``2^d - 1`` overlay values per
level; a point update walks the same path, pushing the delta into one
overlay box per level.  At the bottom the tree stores raw cells in dense
*leaf blocks* of side ``leaf_side`` — ``leaf_side = 2`` is the paper's
base structure (the leaf level is array ``A`` itself), larger values give
the level-elision optimization of Section 4.4 (``h = log2(leaf_side) - 1``
tree levels deleted, queries finishing with at most ``leaf_side^d`` raw
cell additions).

Nodes, overlay boxes, group secondaries, and leaf blocks are all created
lazily, so empty regions of a sparse or clustered cube consume no storage
(Section 5).

This module implements the full Dynamic Data Cube
(:class:`DynamicDataCube`, overlay groups in secondary structures); the
Basic variant of Section 3 reuses the identical tree with dense
cumulative overlays — see :mod:`repro.core.basic_ddc`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import geometry
from ..counters import OpCounter
from ..exceptions import (
    ConfigurationError,
    InvalidRangeError,
    InvalidShapeError,
    StructureError,
)
from ..methods.base import RangeSumMethod
from .overlay import ArrayOverlay, TreeOverlay

__all__ = ["DynamicDataCube"]

#: Cover-bucket size below which a batch traversal reads overlay row
#: values as individual walks instead of one batched secondary descent —
#: the shared descent's bucket bookkeeping only amortises over larger
#: groups (measured on the batch-query throughput bench at 256x256).
_ROW_MANY_MIN = 16


class _Node:
    """Internal primary-tree node: 2^d lazy children with lazy overlays."""

    __slots__ = ("children", "overlays")

    def __init__(self, fan: int) -> None:
        self.children: list = [None] * fan
        self.overlays: list = [None] * fan


class DynamicDataCube(RangeSumMethod):
    """The paper's Dynamic Data Cube: O(log^d n) queries *and* updates.

    Args:
        shape: logical cube shape; internally embedded in a power-of-two
            hypercube (the paper assumes ``n = 2^i``).
        dtype: stored value dtype.
        leaf_side: side of the dense leaf blocks (power of two, >= 1).
            ``2`` reproduces the paper's base structure; larger values
            apply the Section 4.4 level-elision optimization.
        secondary_kind: ``"ddc"`` (paper: recursive Dynamic Data Cubes,
            B^c trees at one dimension) or ``"fenwick"`` (ablation).
        bc_fanout: fanout of the B^c trees backing one-dimensional groups.
        counter: optional shared :class:`OpCounter` (used when this cube
            is itself a secondary structure of a larger cube).
    """

    name = "ddc"
    #: Below this batch size the per-node bucketing and contribution
    #: cache of the path-sharing traversal cost more than they share.
    #: Calibrated at first use: uniform batches share few paths, so
    #: the measured break-even lands far above zipf's (~16 vs ~128 on
    #: the reference machine) and the probe picks the machine-local
    #: value instead of a constant tuned elsewhere.
    batch_crossover = "auto"
    _overlay_class = TreeOverlay

    def __init__(
        self,
        shape: Sequence[int],
        dtype=np.int64,
        leaf_side: int = 2,
        secondary_kind: str = "ddc",
        bc_fanout: int = 16,
        counter: OpCounter | None = None,
    ) -> None:
        super().__init__(shape, dtype)
        if not geometry.is_power_of_two(leaf_side):
            raise InvalidShapeError(f"leaf_side must be a power of two, got {leaf_side}")
        if secondary_kind not in ("ddc", "fenwick"):
            raise ConfigurationError(f"unknown secondary_kind {secondary_kind!r}")
        if counter is not None:
            self.stats = counter
        self.leaf_side = leaf_side
        self.secondary_kind = secondary_kind
        self.bc_fanout = bc_fanout
        self._capacity = max(geometry.padded_side(self.shape), leaf_side)
        self._fan = 1 << self.dims
        self._full_mask = self._fan - 1
        self._root = None
        self._total = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "DynamicDataCube":
        """Vectorised bulk build: one pass of numpy reductions per node."""
        array = np.asarray(array)
        method = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        if not np.any(array):
            return method
        padded = np.zeros((method._capacity,) * method.dims, dtype=method.dtype)
        padded[tuple(slice(0, n) for n in array.shape)] = array
        method._root = method._build(padded)
        method._total = padded.sum().item()
        return method

    def _build(self, region: np.ndarray):
        """Recursively build the subtree for a non-zero dense ``region``."""
        side = region.shape[0]
        if side <= self.leaf_side:
            block = np.array(region, dtype=self.dtype)
            self.stats.cell_writes += block.size
            return block
        half = side // 2
        node = _Node(self._fan)
        for mask in range(self._fan):
            slices = tuple(
                slice(half, side) if mask >> axis & 1 else slice(0, half)
                for axis in range(self.dims)
            )
            child_region = region[slices]
            if not np.any(child_region):
                continue
            node.overlays[mask] = self._overlay_class.from_dense(
                child_region,
                self.stats,
                secondary_kind=self.secondary_kind,
                bc_fanout=self.bc_fanout,
            )
            node.children[mask] = self._build(child_region)
        return node

    def _new_overlay(self, side: int):
        return self._overlay_class(
            side,
            self.dims,
            self.stats,
            dtype=self.dtype,
            secondary_kind=self.secondary_kind,
            bc_fanout=self.bc_fanout,
        )

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------

    def get(self, cell: Sequence[int] | int):
        """Read ``A[cell]`` by descending to its leaf block — O(log n)."""
        cell = geometry.normalize_cell(cell, self.shape)
        node = self._root
        side = self._capacity
        anchor = (0,) * self.dims
        while isinstance(node, _Node):
            self.stats.node_visits += 1
            self.stats.touch(node)
            half = side // 2
            mask = self._covering_mask(cell, anchor, half)
            anchor = self._child_anchor(anchor, mask, half)
            node = node.children[mask]
            side = half
        if node is None:
            return self._zero()
        self.stats.touch(node)
        self.stats.cell_reads += 1
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        return self.dtype.type(node[offsets])

    def add(self, cell: Sequence[int] | int, delta) -> None:
        """Point update: one overlay box per level plus one leaf write.

        Follows the paper's Figure 12 logic — the covering overlay box at
        every level absorbs the difference — except the delta is known up
        front, so a single top-down pass suffices.
        """
        cell = geometry.normalize_cell(cell, self.shape)
        delta = self.dtype.type(delta).item()
        if delta == 0:
            return
        if self._root is None:
            self._root = self._new_root()
        node = self._root
        side = self._capacity
        anchor = (0,) * self.dims
        depth = 0
        while isinstance(node, _Node):
            self.stats.node_visits += 1
            self.stats.touch(node)
            depth += 1
            half = side // 2
            mask = self._covering_mask(cell, anchor, half)
            anchor = self._child_anchor(anchor, mask, half)
            overlay = node.overlays[mask]
            if overlay is None:
                overlay = node.overlays[mask] = self._new_overlay(half)
            offsets = tuple(c - a for c, a in zip(cell, anchor))
            overlay.apply_delta(offsets, delta)
            child = node.children[mask]
            if child is None:
                child = node.children[mask] = self._new_child(half)
            node = child
            side = half
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        self.stats.touch(node)
        node[offsets] += delta
        self.stats.cell_writes += 1
        self._total += delta
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure=self.name, op="update").observe(depth)

    def set(self, cell: Sequence[int] | int, value) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        old = self.get(cell)
        delta = value - old
        if delta != 0:
            self.add(cell, delta)

    def _new_root(self):
        if self._capacity <= self.leaf_side:
            return np.zeros((self._capacity,) * self.dims, dtype=self.dtype)
        return _Node(self._fan)

    def _new_child(self, side: int):
        if side <= self.leaf_side:
            return np.zeros((side,) * self.dims, dtype=self.dtype)
        return _Node(self._fan)

    def _covering_mask(self, cell: tuple, anchor: tuple, half: int) -> int:
        mask = 0
        for axis in range(self.dims):
            if cell[axis] >= anchor[axis] + half:
                mask |= 1 << axis
        return mask

    def _child_anchor(self, anchor: tuple, mask: int, half: int) -> tuple:
        return tuple(
            anchor[axis] + (half if mask >> axis & 1 else 0)
            for axis in range(self.dims)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def prefix_sum(self, cell: Sequence[int] | int):
        """``SUM(A[0,...,0] : A[cell])`` — the Figure 10 algorithm.

        Exactly one child is descended per level; every other overlay box
        whose region intersects the target region contributes its
        subtotal (fully inside) or one cumulative row-sum value
        (partially inside).

        With observability wired, each call opens a ``tree.prefix_sum``
        span (the leaf level of the engine→shard→method→tree trace) and
        feeds the descent-depth histogram; disabled, the only cost is
        one predicate check.
        """
        obs = self.obs
        if not obs.enabled:
            return self._prefix_walk(cell)[0]
        with obs.span("tree.prefix_sum", structure=self.name) as span:
            value, depth = self._prefix_walk(cell)
            span.set(depth=depth)
        obs.descent_depth.labels(structure=self.name, op="query").observe(depth)
        return value

    def _prefix_walk(self, cell: Sequence[int] | int):
        """One Figure 10 descent; returns ``(value, levels walked)``."""
        cell = geometry.normalize_cell(cell, self.shape)
        if self._root is None:
            return self._zero(), 0
        return self._walk_under(self._root, self._capacity, (0,) * self.dims, cell)

    def _walk_under(self, node, side: int, anchor: tuple, cell: tuple):
        """Scalar Figure 10 descent from an arbitrary subtree position.

        Shared by the scalar entry point (from the root) and the batch
        traversal, which drops to this walk the moment a cover bucket
        narrows to a single query — from there down the bucketed
        bookkeeping (cover dicts, read caches, position lists) is pure
        overhead over the plain descent.
        """
        acc = 0
        depth = 0
        while isinstance(node, _Node):
            self.stats.node_visits += 1
            self.stats.touch(node)
            depth += 1
            half = side // 2
            cover = self._covering_mask(cell, anchor, half)
            submask = (cover - 1) & cover
            while cover:
                # Proper submasks of the covering mask are exactly the
                # boxes the target region intersects without covering
                # the target cell (lower half in at least one dimension
                # where the cell sits in the upper half).
                acc += self._box_contribution(node, submask, cover, cell, anchor, half)
                if submask == 0:
                    break
                submask = (submask - 1) & cover
            anchor = self._child_anchor(anchor, cover, half)
            node = node.children[cover]
            side = half
            if node is None:
                return self.dtype.type(acc), depth
        offsets = tuple(c - a for c, a in zip(cell, anchor))
        self.stats.touch(node)
        region = tuple(slice(0, o + 1) for o in offsets)
        acc += node[region].sum().item()
        self.stats.cell_reads += geometry.range_cell_count((0,) * self.dims, offsets)
        return self.dtype.type(acc), depth

    def _box_contribution(
        self, node: _Node, mask: int, cover: int, cell: tuple, anchor: tuple, half: int
    ):
        """Value contributed by the overlay box ``mask`` (``mask ⊊ cover``)."""
        overlay = node.overlays[mask]
        if overlay is None:
            return 0
        complete = cover & ~mask
        if complete == self._full_mask:
            return overlay.subtotal()
        box_anchor = self._child_anchor(anchor, mask, half)
        offsets = tuple(
            min(cell[axis] - box_anchor[axis], half - 1) for axis in range(self.dims)
        )
        group = (complete & -complete).bit_length() - 1
        cross = offsets[:group] + offsets[group + 1 :]
        return overlay.row_value(group, cross)

    # ------------------------------------------------------------------
    # Batch queries (path-sharing traversal)
    # ------------------------------------------------------------------

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch Figure 10 queries with one shared traversal.

        Two queries follow the same root-to-leaf descent exactly when
        their covering masks agree at every level, so the batch is
        bucketed by covering mask at each node and every distinct child
        path is descended once.  Within a node, overlay contributions
        are keyed by ``(box, group, cross)`` — queries in the same
        bucket needing the same subtotal or row-sum value read it once,
        and the distinct row-sum reads of a box are batched into a
        single ``row_value_many`` call (a shared descent of the
        secondary structure).  ``node_visits`` therefore counts each
        visited tree node once per batch: the true logical cost.
        """
        normalized = [geometry.normalize_cell(cell, self.shape) for cell in cells]
        if self._root is None:
            return [self._zero() for _ in normalized]
        if not self._use_batch_path(len(normalized)):
            return [self.prefix_sum(cell) for cell in normalized]  # noqa: REP006 — adaptive crossover: a tiny batch never amortises the bucketed traversal's bookkeeping
        order: dict[tuple, list[int]] = {}
        for position, cell in enumerate(normalized):
            order.setdefault(cell, []).append(position)
        if not order:
            return []
        distinct = list(order)
        values = self._prefix_many(
            self._root, self._capacity, (0,) * self.dims, distinct
        )
        results: list = [None] * len(normalized)
        for cell, value in zip(distinct, values):
            typed = self.dtype.type(value)
            for position in order[cell]:
                results[position] = typed
        return results

    def _prefix_many(self, node, side: int, anchor: tuple, cells: list) -> list:
        """Answer distinct prefix cells under ``node`` (results in order)."""
        if node is None:
            return [0] * len(cells)
        if not isinstance(node, _Node):
            self.stats.touch(node)
            out = []
            for cell in cells:
                offsets = tuple(c - a for c, a in zip(cell, anchor))
                region = tuple(slice(0, o + 1) for o in offsets)
                out.append(node[region].sum().item())
                self.stats.cell_reads += geometry.range_cell_count(
                    (0,) * self.dims, offsets
                )
            return out
        if len(cells) == 1:
            return [self._walk_under(node, side, anchor, cells[0])[0]]
        self.stats.node_visits += 1
        self.stats.touch(node)
        half = side // 2
        by_cover: dict[int, tuple[list[int], list]] = {}
        for position, cell in enumerate(cells):
            cover = self._covering_mask(cell, anchor, half)
            entry = by_cover.get(cover)
            if entry is None:
                by_cover[cover] = entry = ([], [])
            entry[0].append(position)
            entry[1].append(cell)
        out = [0] * len(cells)
        # Contributions already read at this node, shared across covers:
        # ``(mask, None)`` for a subtotal, ``(mask, group, cross)`` for a
        # row-sum value.
        cache: dict = {}
        for cover, (positions, group_cells) in by_cover.items():
            if cover:
                submask = (cover - 1) & cover
                while True:
                    self._batch_box(
                        node, submask, cover, group_cells, positions,
                        anchor, half, cache, out,
                    )
                    if submask == 0:
                        break
                    submask = (submask - 1) & cover
            child_anchor = self._child_anchor(anchor, cover, half)
            sub = self._prefix_many(
                node.children[cover], half, child_anchor, group_cells
            )
            for position, value in zip(positions, sub):
                out[position] += value
        return out

    def _batch_box(
        self,
        node: _Node,
        mask: int,
        cover: int,
        group_cells: list,
        positions: list[int],
        anchor: tuple,
        half: int,
        cache: dict,
        out: list,
    ) -> None:
        """Add overlay box ``mask``'s contribution for one cover bucket."""
        overlay = node.overlays[mask]
        if overlay is None:
            return
        complete = cover & ~mask
        if complete == self._full_mask:
            key = (mask, None)
            if key not in cache:
                cache[key] = overlay.subtotal()
            value = cache[key]
            for position in positions:
                out[position] += value
            return
        box_anchor = self._child_anchor(anchor, mask, half)
        group = (complete & -complete).bit_length() - 1
        if len(group_cells) < _ROW_MANY_MIN:
            # Small buckets: read each distinct row value as a plain
            # walk the moment it is first needed — the cache still
            # dedupes, and the batched secondary descent's bucket
            # bookkeeping costs more than a handful of walks.
            for position, cell in zip(positions, group_cells):
                offsets = tuple(
                    min(cell[axis] - box_anchor[axis], half - 1)
                    for axis in range(self.dims)
                )
                cross = offsets[:group] + offsets[group + 1 :]
                key = (mask, group, cross)
                value = cache.get(key)
                if value is None:
                    value = cache[key] = overlay.row_value(group, cross)
                out[position] += value
            return
        per_query_keys = []
        missing: list[tuple] = []
        seen: set = set()
        for cell in group_cells:
            offsets = tuple(
                min(cell[axis] - box_anchor[axis], half - 1)
                for axis in range(self.dims)
            )
            cross = offsets[:group] + offsets[group + 1 :]
            key = (mask, group, cross)
            per_query_keys.append(key)
            if key not in cache and key not in seen:
                seen.add(key)
                missing.append(key)
        if missing:
            values = overlay.row_value_many(group, [key[2] for key in missing])
            for key, value in zip(missing, values):
                cache[key] = value
        for position, key in zip(positions, per_query_keys):
            out[position] += cache[key]

    # ------------------------------------------------------------------
    # Batch updates (grouped descent)
    # ------------------------------------------------------------------

    def add_many(self, updates: Sequence[tuple]) -> None:
        """Batch point updates with one grouped descent.

        Deltas are combined per cell and zeros dropped (the base-class
        contract), then routed down the tree together: each visited
        node forwards every update covered by the same child through a
        single ``apply_delta_many`` call on that child's overlay box —
        one shared subtotal write and one batched secondary update per
        group — before descending once into the child.
        """
        combined = []
        for cell, delta in self._combined_updates(updates):
            delta = self.dtype.type(delta).item()
            if delta != 0:
                combined.append((cell, delta))
        if not combined:
            return
        if self._root is None:
            self._root = self._new_root()
        self._add_many_node(self._root, self._capacity, (0,) * self.dims, combined)
        self._total += sum(delta for _, delta in combined)

    def _add_many_node(self, node, side: int, anchor: tuple, items: list) -> None:
        """Apply ``(cell, delta)`` items to the subtree rooted at ``node``."""
        if not isinstance(node, _Node):
            self.stats.touch(node)
            for cell, delta in items:
                offsets = tuple(c - a for c, a in zip(cell, anchor))
                node[offsets] += delta
            self.stats.cell_writes += len(items)
            return
        self.stats.node_visits += 1
        self.stats.touch(node)
        half = side // 2
        by_mask: dict[int, list] = {}
        for cell, delta in items:
            mask = self._covering_mask(cell, anchor, half)
            by_mask.setdefault(mask, []).append((cell, delta))
        for mask, group_items in by_mask.items():
            child_anchor = self._child_anchor(anchor, mask, half)
            overlay = node.overlays[mask]
            if overlay is None:
                overlay = node.overlays[mask] = self._new_overlay(half)
            overlay.apply_delta_many(
                [
                    (tuple(c - a for c, a in zip(cell, child_anchor)), delta)
                    for cell, delta in group_items
                ]
            )
            child = node.children[mask]
            if child is None:
                child = node.children[mask] = self._new_child(half)
            self._add_many_node(child, half, child_anchor, group_items)

    # ------------------------------------------------------------------
    # Dynamic growth (Section 5)
    # ------------------------------------------------------------------

    def expand(self, corner_mask: int) -> None:
        """Double the domain; the existing cube becomes one root child.

        ``corner_mask`` selects which corner of the enlarged domain the
        existing data occupies: bit ``t`` set means the old cube becomes
        the *upper* half of dimension ``t`` (i.e. the cube grew toward
        lower coordinates in that dimension).  The overlay box for the
        old cube at the new root level is rebuilt from the populated leaf
        blocks only, so expansion of a sparse cube costs time and space
        proportional to the data actually present.
        """
        if not 0 <= corner_mask < self._fan:
            raise InvalidRangeError(f"corner_mask {corner_mask} out of range for {self.dims} dims")
        old_capacity = self._capacity
        self._capacity = old_capacity * 2
        self.shape = (self._capacity,) * self.dims
        if self._root is None:
            return
        node = _Node(self._fan)
        node.children[corner_mask] = self._root
        node.overlays[corner_mask] = self._overlay_from_contents(old_capacity)
        self._root = node

    def _overlay_from_contents(self, side: int):
        """Build an overlay box summarising the entire current tree."""
        overlay = self._new_overlay(side)
        overlay._subtotal = self._total
        if self.dims == 1:
            return overlay
        axis_totals = [self._axis_sums(axis, side) for axis in range(self.dims)]
        if isinstance(overlay, ArrayOverlay):
            for axis, rows in enumerate(axis_totals):
                cumulative = rows.copy()
                for cross_axis in range(cumulative.ndim):
                    np.cumsum(cumulative, axis=cross_axis, out=cumulative)
                overlay._groups[axis] = cumulative
            return overlay
        for axis, rows in enumerate(axis_totals):
            if np.any(rows):
                overlay._groups[axis] = overlay._build_secondary(rows)
        return overlay

    def _axis_sums(self, axis: int, side: int) -> np.ndarray:
        """Dense per-cross-position totals along ``axis`` over the whole tree."""
        out = np.zeros((side,) * (self.dims - 1), dtype=self.dtype)
        self._accumulate_axis_sums(self._root, (0,) * self.dims, side, axis, out)
        return out

    def _accumulate_axis_sums(
        self, node, anchor: tuple, side: int, axis: int, out: np.ndarray
    ) -> None:
        if node is None:
            return
        if not isinstance(node, _Node):
            cross_anchor = anchor[:axis] + anchor[axis + 1 :]
            region = tuple(slice(a, a + side) for a in cross_anchor)
            out[region] += node.sum(axis=axis)
            return
        half = side // 2
        for mask, child in enumerate(node.children):
            if child is not None:
                child_anchor = self._child_anchor(anchor, mask, half)
                self._accumulate_axis_sums(child, child_anchor, half, axis, out)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def total(self):
        return self.dtype.type(self._total)

    def memory_cells(self) -> int:
        return self._memory_cells(self._root)

    def _memory_cells(self, node) -> int:
        if node is None:
            return 0
        if not isinstance(node, _Node):
            return node.size
        cells = 0
        for child, overlay in zip(node.children, node.overlays):
            if overlay is not None:
                cells += overlay.memory_cells()
            cells += self._memory_cells(child)
        return cells

    def storage_breakdown(self) -> dict:
        """Where the cells live: leaf blocks vs subtotals vs group trees.

        Returns a dict with ``blocks`` (raw leaf cells), ``subtotals``
        (one per allocated overlay), ``groups`` (cells inside secondary
        structures), and ``total``.  The group share is the Table 2
        overhead in its tree-backed form.
        """
        breakdown = {"blocks": 0, "subtotals": 0, "groups": 0}
        self._breakdown(self._root, breakdown)
        breakdown["total"] = sum(breakdown.values())
        return breakdown

    def _breakdown(self, node, breakdown: dict) -> None:
        if node is None:
            return
        if not isinstance(node, _Node):
            breakdown["blocks"] += node.size
            return
        for child, overlay in zip(node.children, node.overlays):
            if overlay is not None:
                cells = overlay.memory_cells()
                breakdown["subtotals"] += 1
                breakdown["groups"] += cells - 1
            self._breakdown(child, breakdown)

    def height(self) -> int:
        """Internal levels above the leaf blocks."""
        levels = 0
        side = self._capacity
        while side > self.leaf_side:
            levels += 1
            side //= 2
        return levels

    def iter_blocks(self):
        """Yield ``(anchor, block)`` for every populated leaf block.

        Blocks are numpy views of the live storage — treat them as
        read-only.  The traversal order is the tree's child-mask order.
        """

        def walk(node, anchor, side):
            if node is None:
                return
            if not isinstance(node, _Node):
                yield anchor, node
                return
            half = side // 2
            for mask, child in enumerate(node.children):
                if child is not None:
                    yield from walk(child, self._child_anchor(anchor, mask, half), half)

        yield from walk(self._root, (0,) * self.dims, self._capacity)

    def iter_nonzero(self):
        """Yield ``(cell, value)`` for every non-zero cell, sparsely.

        Costs time proportional to the populated blocks, never the
        domain — the right way to export a clustered cube's contents.
        Cells in the power-of-two padding are excluded.
        """
        for anchor, block in self.iter_blocks():
            for offsets in np.argwhere(block != 0):
                offsets = tuple(int(o) for o in offsets)
                cell = tuple(a + o for a, o in zip(anchor, offsets))
                if all(c < s for c, s in zip(cell, self.shape)):
                    yield cell, self.dtype.type(block[offsets])

    def to_dense(self) -> np.ndarray:
        padded = np.zeros((self._capacity,) * self.dims, dtype=self.dtype)
        self._fill_dense(self._root, (0,) * self.dims, self._capacity, padded)
        return padded[tuple(slice(0, n) for n in self.shape)].copy()

    def _fill_dense(self, node, anchor: tuple, side: int, out: np.ndarray) -> None:
        if node is None:
            return
        if not isinstance(node, _Node):
            region = tuple(slice(a, a + side) for a in anchor)
            out[region] = node
            return
        half = side // 2
        for mask, child in enumerate(node.children):
            if child is not None:
                self._fill_dense(child, self._child_anchor(anchor, mask, half), half, out)

    def validate(self) -> None:
        """Check overlay subtotals and groups against the raw leaf data.

        Intended for tests on small cubes — it materialises the dense
        contents.  Raises :class:`StructureError` on any mismatch.
        """
        padded = np.zeros((self._capacity,) * self.dims, dtype=self.dtype)
        self._fill_dense(self._root, (0,) * self.dims, self._capacity, padded)
        if padded.sum().item() != self._total:
            raise StructureError(
                f"total cache {self._total} != actual {padded.sum().item()}"
            )
        self._validate_node(self._root, (0,) * self.dims, self._capacity, padded)

    def _validate_node(
        self, node, anchor: tuple, side: int, padded: np.ndarray
    ) -> None:
        if node is None or not isinstance(node, _Node):
            return
        half = side // 2
        for mask in range(self._fan):
            child_anchor = self._child_anchor(anchor, mask, half)
            region = tuple(slice(a, a + half) for a in child_anchor)
            dense = padded[region]
            overlay = node.overlays[mask]
            if overlay is None:
                if np.any(dense):
                    raise StructureError(f"missing overlay for non-zero box {mask}")
                continue
            if overlay.subtotal() != dense.sum().item():
                raise StructureError(
                    f"overlay subtotal mismatch at anchor {child_anchor}"
                )
            if self.dims > 1:
                self._validate_groups(overlay, dense, child_anchor)
            self._validate_node(node.children[mask], child_anchor, half, padded)

    def _validate_groups(self, overlay, dense: np.ndarray, child_anchor: tuple) -> None:
        half = dense.shape[0]
        for axis in range(self.dims):
            expected = dense.sum(axis=axis)
            for cross_axis in range(expected.ndim):
                expected = np.cumsum(expected, axis=cross_axis)
            top = (half - 1,) * (self.dims - 1)
            for cross in geometry.iter_cells((0,) * (self.dims - 1), top):
                actual = overlay.row_value(axis, cross)
                if actual != expected[cross].item():
                    raise StructureError(
                        f"group {axis} mismatch at anchor {child_anchor}, cross {cross}: "
                        f"{actual} != {expected[cross].item()}"
                    )
