"""The Cumulative B-Tree (B^c tree) of Section 4.1.

The B^c tree is the paper's base case for storing a one-dimensional set
of overlay row-sum values.  It is a B-tree whose leaves hold the sums of
*individual* rows (not the cumulative sums the overlay box semantically
contains) and whose interior nodes carry, per child, a *subtree sum*
(STS).  A cumulative row sum is then reconstructed on demand by walking
root-to-leaf and adding every STS that precedes the descent path, and a
row update touches exactly one STS per visited node — giving the paper's
balanced O(log k) cost for both operations.

This implementation indexes leaves by **rank** (0-based position) rather
than by stored keys, and additionally maintains per-child subtree
*counts*.  Rank navigation is exactly equivalent to the paper's
"key = index of the row-sum cell" scheme for a static overlay, and it is
what makes the Section 5 dynamic-growth behaviour natural: inserting or
deleting a row shifts all subsequent indices implicitly, with no key
rewriting.

Supported operations (``k`` = number of stored rows):

=================  ==========  =====================================
operation          cost        meaning
=================  ==========  =====================================
``prefix_sum(i)``  O(log k)    cumulative row sum ``rows[0..i]``
``get(i)``         O(log k)    individual row sum
``set(i, v)``      O(log k)    replace a row sum
``add(i, delta)``  O(log k)    add a delta to a row sum
``insert(i, v)``   O(log k)    insert a new row before position i
``delete(i)``      O(log k)    remove a row
``from_values``    O(k)        bulk build
=================  ==========  =====================================
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..counters import OpCounter
from ..exceptions import ConfigurationError, OutOfBoundsError, StructureError
from ..obs import NULL_OBS

__all__ = ["DEFAULT_FANOUT", "BcTree"]

DEFAULT_FANOUT = 16
_MIN_FANOUT = 3


class _Leaf:
    """Leaf node: a run of consecutive row sums."""

    __slots__ = ("values",)

    def __init__(self, values: list) -> None:
        self.values = values


class _Internal:
    """Interior node: children plus per-child subtree counts and sums (STS)."""

    __slots__ = ("children", "counts", "sums")

    def __init__(self, children: list, counts: list[int], sums: list) -> None:
        self.children = children
        self.counts = counts
        self.sums = sums


class BcTree:
    """Cumulative B-tree over a sequence of row sums.

    Args:
        fanout: maximum number of children per interior node (and values
            per leaf).  The paper's analysis uses a constant fanout ``f``,
            costing ``f * log_f k`` per operation.
        counter: optional shared :class:`OpCounter`.  The Dynamic Data
            Cube passes its own counter so that the cost of every
            secondary structure is tallied against the primary cube.
    """

    #: Observability wiring (see :mod:`repro.obs`).  Secondary trees
    #: embedded in a cube keep the disabled default — their cost is
    #: already tallied on the shared counter — but a standalone B^c tree
    #: can have a facade assigned to feed the descent-depth histogram.
    obs = NULL_OBS

    def __init__(self, fanout: int = DEFAULT_FANOUT, counter: OpCounter | None = None):
        if fanout < _MIN_FANOUT:
            raise ConfigurationError(f"fanout must be >= {_MIN_FANOUT}, got {fanout}")
        self.fanout = fanout
        self.stats = counter if counter is not None else OpCounter()
        self._root: _Leaf | _Internal = _Leaf([])
        self._size = 0
        self._total = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        values: Sequence,
        fanout: int = DEFAULT_FANOUT,
        counter: OpCounter | None = None,
    ) -> "BcTree":
        """Bulk-build a tree over ``values`` in O(k).

        Produces a tree satisfying all fill invariants: every non-root
        node holds at least ``ceil(fanout / 2)`` entries.
        """
        tree = cls(fanout=fanout, counter=counter)
        values = list(values)
        tree._size = len(values)
        tree._total = sum(values)
        if not values:
            return tree

        level: list = [_Leaf(chunk) for chunk in _balanced_chunks(values, fanout)]
        summaries = [(len(leaf.values), sum(leaf.values)) for leaf in level]
        while len(level) > 1:
            next_level: list = []
            next_summaries: list[tuple[int, int]] = []
            groups = _balanced_chunks(list(range(len(level))), fanout)
            for group in groups:
                children = [level[i] for i in group]
                counts = [summaries[i][0] for i in group]
                sums = [summaries[i][1] for i in group]
                next_level.append(_Internal(children, counts, sums))
                next_summaries.append((sum(counts), sum(sums)))
            level = next_level
            summaries = next_summaries
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Read operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def total(self) -> int:
        """Sum of every stored row (O(1))."""
        return self._total

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise OutOfBoundsError(f"index {index} out of range for size {self._size}")

    def prefix_sum(self, index: int):
        """Cumulative row sum ``rows[0] + ... + rows[index]`` (inclusive).

        This is the overlay "row sum value" the paper reconstructs by
        summing preceding STSs along a root-to-leaf descent.
        """
        self._check_index(index)
        node = self._root
        rank = index
        acc = 0
        depth = 1
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            depth += 1
            child_index = 0
            for count in node.counts:
                if rank < count:
                    break
                rank -= count
                acc += node.sums[child_index]
                self.stats.cell_reads += 1
                child_index += 1
            node = node.children[child_index]
        self.stats.node_visits += 1
        self.stats.touch(node)
        for position in range(rank + 1):
            acc += node.values[position]
            self.stats.cell_reads += 1
        obs = self.obs
        if obs.enabled:
            obs.descent_depth.labels(structure="bc_tree", op="query").observe(depth)
        return acc

    def prefix_sum_many(self, indices: Sequence[int]) -> list:
        """Batch cumulative row sums via one shared root-to-leaf descent.

        Duplicate indices are answered once; the distinct indices are
        sorted and routed down the tree together, so every tree node on
        any query's path is visited exactly once for the whole batch and
        each STS cell is read at most once — the shared logical cost the
        path-sharing DDC traversal is built on.
        """
        results: list = [None] * len(indices)
        order: dict[int, list[int]] = {}
        for position, index in enumerate(indices):
            self._check_index(index)
            order.setdefault(index, []).append(position)
        if not order:
            return []
        distinct = sorted(order)
        values = self._prefix_many(self._root, distinct)
        for index, value in zip(distinct, values):
            for position in order[index]:
                results[position] = value
        return results

    def _prefix_many(self, node, ranks: list[int]) -> list:
        """Answer sorted distinct ``ranks`` under ``node`` (results in order)."""
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            limit = ranks[-1] + 1
            self.stats.cell_reads += limit
            prefix = []
            acc = 0
            for value in node.values[:limit]:
                acc += value
                prefix.append(acc)
            return [prefix[rank] for rank in ranks]
        # Sorted ranks route monotonically, so one left-to-right sweep
        # buckets them by child while accumulating the preceding STSs.
        buckets: list[tuple[int, object, list[int]]] = []
        child_index = 0
        consumed = 0
        base = 0
        current: tuple[int, object, list[int]] | None = None
        for rank in ranks:
            while rank - consumed >= node.counts[child_index]:
                consumed += node.counts[child_index]
                base += node.sums[child_index]
                child_index += 1
            if current is None or current[0] != child_index:
                current = (child_index, base, [])
                buckets.append(current)
            current[2].append(rank - consumed)
        # Each preceding STS is read once for the whole batch: the
        # rightmost query's descent covers every STS the others need.
        self.stats.cell_reads += buckets[-1][0]
        results: list = []
        for child_index, base, local_ranks in buckets:
            sub = self._prefix_many(node.children[child_index], local_ranks)
            results.extend(base + value for value in sub)
        return results

    def get(self, index: int):
        """Individual row sum at ``index``."""
        self._check_index(index)
        node = self._root
        rank = index
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            child_index = 0
            for count in node.counts:
                if rank < count:
                    break
                rank -= count
                child_index += 1
            node = node.children[child_index]
        self.stats.node_visits += 1
        self.stats.touch(node)
        self.stats.cell_reads += 1
        return node.values[rank]

    def values(self) -> Iterator:
        """Iterate every row sum in index order."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node) -> Iterator:
        if isinstance(node, _Leaf):
            yield from node.values
        else:
            for child in node.children:
                yield from self._iter_node(child)

    def to_list(self) -> list:
        """All row sums as a plain list (for tests and rebuilds)."""
        return list(self.values())

    # ------------------------------------------------------------------
    # Point modifications
    # ------------------------------------------------------------------

    def add(self, index: int, delta) -> None:
        """Add ``delta`` to the row at ``index`` (one STS per level)."""
        if delta == 0:
            return
        self._check_index(index)
        node = self._root
        rank = index
        while isinstance(node, _Internal):
            self.stats.node_visits += 1
            self.stats.touch(node)
            child_index = 0
            for count in node.counts:
                if rank < count:
                    break
                rank -= count
                child_index += 1
            node.sums[child_index] += delta
            self.stats.cell_writes += 1
            node = node.children[child_index]
        self.stats.node_visits += 1
        self.stats.touch(node)
        node.values[rank] += delta
        self.stats.cell_writes += 1
        self._total += delta

    def add_many(self, updates: Sequence[tuple[int, object]]) -> None:
        """Apply a batch of ``(index, delta)`` row updates in one descent.

        Deltas hitting the same row are combined and zero deltas dropped;
        the survivors are routed down the tree together so each visited
        node updates one STS per *touched child* instead of one per
        update.  No structural change occurs (``add`` never splits), so
        the grouped descent is exact.
        """
        combined: dict[int, object] = {}
        for index, delta in updates:
            self._check_index(index)
            combined[index] = combined.get(index, 0) + delta
        items = sorted(
            (index, delta) for index, delta in combined.items() if delta != 0
        )
        if not items:
            return
        self._add_many(self._root, items)
        self._total += sum(delta for _, delta in items)

    def _add_many(self, node, items: list[tuple[int, object]]) -> None:
        """Apply sorted distinct ``(rank, delta)`` items under ``node``."""
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            for rank, delta in items:
                node.values[rank] += delta
            self.stats.cell_writes += len(items)
            return
        buckets: list[tuple[int, list[tuple[int, object]]]] = []
        child_index = 0
        consumed = 0
        current: tuple[int, list[tuple[int, object]]] | None = None
        for rank, delta in items:
            while rank - consumed >= node.counts[child_index]:
                consumed += node.counts[child_index]
                child_index += 1
            if current is None or current[0] != child_index:
                current = (child_index, [])
                buckets.append(current)
            current[1].append((rank - consumed, delta))
        for child_index, local_items in buckets:
            node.sums[child_index] += sum(delta for _, delta in local_items)
            self.stats.cell_writes += 1
            self._add_many(node.children[child_index], local_items)

    def set(self, index: int, value) -> None:
        """Replace the row at ``index``; returns nothing.

        Implemented bottom-up like the paper's Figure 12: read the old
        value, store the new one, and propagate the difference into one
        STS per ancestor (here folded into a single descent).
        """
        old = self.get(index)
        self.add(index, value - old)

    # ------------------------------------------------------------------
    # Structural modifications (dynamic growth, Section 5)
    # ------------------------------------------------------------------

    @property
    def _min_fill(self) -> int:
        # Standard B-tree minimum occupancy: ceil(f / 2).  A merge of two
        # minimally-filled siblings then yields 2 * ceil(f/2) - 1 <= f
        # entries, so rebalancing can never overfill a node.
        return (self.fanout + 1) // 2

    def insert(self, index: int, value) -> None:
        """Insert a new row before position ``index`` (``index == len`` appends)."""
        if not 0 <= index <= self._size:
            raise OutOfBoundsError(f"insert index {index} out of range for size {self._size}")
        split = self._insert(self._root, index, value)
        if split is not None:
            left_summary, right_node, right_summary = split
            self._root = _Internal(
                [self._root, right_node],
                [left_summary[0], right_summary[0]],
                [left_summary[1], right_summary[1]],
            )
        self._size += 1
        self._total += value

    def _insert(self, node, rank: int, value):
        """Recursive insert; returns ``None`` or split info.

        Split info is ``((left_count, left_sum), new_right_node,
        (right_count, right_sum))`` describing the node after it split.
        """
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            node.values.insert(rank, value)
            self.stats.cell_writes += 1
            if len(node.values) <= self.fanout:
                return None
            middle = len(node.values) // 2
            right = _Leaf(node.values[middle:])
            node.values = node.values[:middle]
            return (
                (len(node.values), sum(node.values)),
                right,
                (len(right.values), sum(right.values)),
            )

        child_index = 0
        for count in node.counts:
            # Descend into the child that will contain the new rank; an
            # append (rank == count at the last child) stays in that child.
            if rank < count or (rank == count and child_index == len(node.counts) - 1):
                break
            rank -= count
            child_index += 1
        node.counts[child_index] += 1
        node.sums[child_index] += value
        self.stats.cell_writes += 1
        split = self._insert(node.children[child_index], rank, value)
        if split is None:
            return None
        left_summary, right_node, right_summary = split
        node.counts[child_index] = left_summary[0]
        node.sums[child_index] = left_summary[1]
        node.children.insert(child_index + 1, right_node)
        node.counts.insert(child_index + 1, right_summary[0])
        node.sums.insert(child_index + 1, right_summary[1])
        if len(node.children) <= self.fanout:
            return None
        middle = len(node.children) // 2
        right = _Internal(
            node.children[middle:], node.counts[middle:], node.sums[middle:]
        )
        node.children = node.children[:middle]
        node.counts = node.counts[:middle]
        node.sums = node.sums[:middle]
        return (
            (sum(node.counts), sum(node.sums)),
            right,
            (sum(right.counts), sum(right.sums)),
        )

    def append(self, value) -> None:
        """Insert a row after the current last row."""
        self.insert(self._size, value)

    def delete(self, index: int):
        """Remove the row at ``index`` and return its value."""
        self._check_index(index)
        removed = self._delete(self._root, index)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._size -= 1
        self._total -= removed
        return removed

    def _delete(self, node, rank: int):
        self.stats.node_visits += 1
        self.stats.touch(node)
        if isinstance(node, _Leaf):
            removed = node.values.pop(rank)
            self.stats.cell_writes += 1
            return removed

        child_index = 0
        for count in node.counts:
            if rank < count:
                break
            rank -= count
            child_index += 1
        removed = self._delete(node.children[child_index], rank)
        node.counts[child_index] -= 1
        node.sums[child_index] -= removed
        self.stats.cell_writes += 1
        self._rebalance_child(node, child_index)
        return removed

    def _child_entry_count(self, child) -> int:
        if isinstance(child, _Leaf):
            return len(child.values)
        return len(child.children)

    def _rebalance_child(self, node: _Internal, child_index: int) -> None:
        """Restore the fill invariant of ``node.children[child_index]``."""
        child = node.children[child_index]
        if self._child_entry_count(child) >= self._min_fill:
            return
        if child_index > 0:
            left = node.children[child_index - 1]
            if self._child_entry_count(left) > self._min_fill:
                self._borrow_from_left(node, child_index)
                return
        if child_index + 1 < len(node.children):
            right = node.children[child_index + 1]
            if self._child_entry_count(right) > self._min_fill:
                self._borrow_from_right(node, child_index)
                return
        if child_index > 0:
            self._merge_children(node, child_index - 1)
        elif child_index + 1 < len(node.children):
            self._merge_children(node, child_index)

    def _borrow_from_left(self, node: _Internal, child_index: int) -> None:
        left = node.children[child_index - 1]
        child = node.children[child_index]
        if isinstance(child, _Leaf):
            moved = left.values.pop()
            child.values.insert(0, moved)
            moved_count, moved_sum = 1, moved
        else:
            moved_child = left.children.pop()
            moved_count = left.counts.pop()
            moved_sum = left.sums.pop()
            child.children.insert(0, moved_child)
            child.counts.insert(0, moved_count)
            child.sums.insert(0, moved_sum)
        node.counts[child_index - 1] -= moved_count
        node.sums[child_index - 1] -= moved_sum
        node.counts[child_index] += moved_count
        node.sums[child_index] += moved_sum
        self.stats.cell_writes += 2

    def _borrow_from_right(self, node: _Internal, child_index: int) -> None:
        right = node.children[child_index + 1]
        child = node.children[child_index]
        if isinstance(child, _Leaf):
            moved = right.values.pop(0)
            child.values.append(moved)
            moved_count, moved_sum = 1, moved
        else:
            moved_child = right.children.pop(0)
            moved_count = right.counts.pop(0)
            moved_sum = right.sums.pop(0)
            child.children.append(moved_child)
            child.counts.append(moved_count)
            child.sums.append(moved_sum)
        node.counts[child_index + 1] -= moved_count
        node.sums[child_index + 1] -= moved_sum
        node.counts[child_index] += moved_count
        node.sums[child_index] += moved_sum
        self.stats.cell_writes += 2

    def _merge_children(self, node: _Internal, left_index: int) -> None:
        """Merge child ``left_index + 1`` into child ``left_index``."""
        left = node.children[left_index]
        right = node.children[left_index + 1]
        if isinstance(left, _Leaf):
            left.values.extend(right.values)
        else:
            left.children.extend(right.children)
            left.counts.extend(right.counts)
            left.sums.extend(right.sums)
        node.counts[left_index] += node.counts[left_index + 1]
        node.sums[left_index] += node.sums[left_index + 1]
        del node.children[left_index + 1]
        del node.counts[left_index + 1]
        del node.sums[left_index + 1]
        self.stats.cell_writes += 1

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def memory_cells(self) -> int:
        """Stored values (leaf rows + STS entries) — the storage metric."""
        return self._memory_cells(self._root)

    def _memory_cells(self, node) -> int:
        if isinstance(node, _Leaf):
            return len(node.values)
        cells = len(node.sums) + len(node.counts)
        return cells + sum(self._memory_cells(child) for child in node.children)

    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    def validate(self) -> None:
        """Check every structural invariant; raise :class:`StructureError` on failure.

        Verifies cached counts and sums against recomputation, fill
        bounds, and uniform leaf depth.
        """
        count, total, _ = self._validate(self._root, is_root=True)
        if count != self._size:
            raise StructureError(f"size cache {self._size} != actual {count}")
        if total != self._total:
            raise StructureError(f"total cache {self._total} != actual {total}")

    def _validate(self, node, is_root: bool) -> tuple[int, object, int]:
        if isinstance(node, _Leaf):
            if not is_root and len(node.values) < self._min_fill:
                raise StructureError("leaf underfull")
            if len(node.values) > self.fanout:
                raise StructureError("leaf overfull")
            return len(node.values), sum(node.values), 1

        if not is_root and len(node.children) < self._min_fill:
            raise StructureError("internal node underfull")
        if is_root and len(node.children) < 2:
            raise StructureError("internal root must have >= 2 children")
        if len(node.children) > self.fanout:
            raise StructureError("internal node overfull")
        if not len(node.children) == len(node.counts) == len(node.sums):
            raise StructureError("internal node arrays out of sync")
        total_count = 0
        total_sum = 0
        depths = set()
        for child, count, child_sum in zip(node.children, node.counts, node.sums):
            actual_count, actual_sum, depth = self._validate(child, is_root=False)
            if actual_count != count:
                raise StructureError(f"count cache {count} != actual {actual_count}")
            if actual_sum != child_sum:
                raise StructureError(f"sum cache {child_sum} != actual {actual_sum}")
            total_count += actual_count
            total_sum += actual_sum
            depths.add(depth)
        if len(depths) != 1:
            raise StructureError("leaves at differing depths")
        return total_count, total_sum, depths.pop() + 1


def _balanced_chunks(items: list, fanout: int) -> list[list]:
    """Split ``items`` into chunks of ``<= fanout`` and ``>= ceil(fanout / 2)``.

    Used by bulk build so the resulting tree satisfies B-tree fill
    invariants.  A single chunk smaller than the minimum is allowed only
    when it is the sole chunk (it becomes the root).
    """
    total = len(items)
    if total <= fanout:
        return [items]
    minimum = (fanout + 1) // 2
    chunks = [items[start : start + fanout] for start in range(0, total, fanout)]
    if len(chunks[-1]) < minimum:
        deficit = minimum - len(chunks[-1])
        chunks[-1] = chunks[-2][-deficit:] + chunks[-1]
        chunks[-2] = chunks[-2][:-deficit]
    return chunks
