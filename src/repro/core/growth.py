"""Dynamic growth of the data cube in any direction (Section 5).

The paper motivates growth with the astronomy example: stars are
discovered in *any* direction relative to existing ones, so the cube must
be able to extend below as well as above its current index ranges, and
must not pay for the vast empty regions in between (prefix-sum style
methods cannot do either — adding one cell forces materialising the whole
dominated region, Figure 16).

:class:`GrowableCube` provides that behaviour on top of
:class:`~repro.core.ddc.DynamicDataCube`:

* coordinates are arbitrary integers, negative included;
* when a point lands outside the current domain the cube doubles toward
  it (the old root becomes one corner child of a new root — an O(data)
  operation, amortised O(log extent) doublings ever);
* empty space costs nothing: the underlying tree allocates nodes,
  overlays, and leaf blocks lazily.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import geometry
from ..exceptions import DimensionMismatchError, InvalidRangeError, InvalidShapeError
from .ddc import DynamicDataCube

__all__ = ["Coordinate", "GrowableCube"]

Coordinate = tuple[int, ...]


class GrowableCube:
    """A Dynamic Data Cube over an unbounded integer coordinate space.

    Args:
        dims: number of dimensions.
        dtype: stored value dtype.
        initial_side: side of the initial domain (power of two).
        **cube_options: forwarded to :class:`DynamicDataCube`
            (``leaf_side``, ``secondary_kind``, ``bc_fanout``).

    The domain is re-anchored at the first inserted point, so callers
    never need to guess where their data will live.
    """

    def __init__(
        self,
        dims: int,
        dtype=np.int64,
        initial_side: int = 8,
        **cube_options,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError("dims must be >= 1")
        if not geometry.is_power_of_two(initial_side):
            raise InvalidShapeError(f"initial_side must be a power of two, got {initial_side}")
        self.dims = dims
        self.dtype = np.dtype(dtype)
        self._initial_side = initial_side
        self._cube_options = dict(cube_options)
        self._cube = DynamicDataCube(
            (initial_side,) * dims, dtype=dtype, **cube_options
        )
        self._origin: Coordinate = (0,) * dims
        self._anchored = False
        self._low_bounds: list[int] | None = None
        self._high_bounds: list[int] | None = None

    # ------------------------------------------------------------------
    # Domain management
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Shared operation counter of the underlying cube."""
        return self._cube.stats

    @property
    def origin(self) -> Coordinate:
        """Logical coordinate of the domain's low corner."""
        return self._origin

    @property
    def side(self) -> int:
        """Current domain side (power of two)."""
        return self._cube._capacity

    @property
    def bounds(self) -> tuple[Coordinate, Coordinate] | None:
        """Bounding box of every coordinate ever written, or ``None``."""
        if self._low_bounds is None:
            return None
        return tuple(self._low_bounds), tuple(self._high_bounds)

    def _normalize(self, coordinate: Sequence[int] | int) -> Coordinate:
        if isinstance(coordinate, int):
            coordinate = (coordinate,)
        coordinate = tuple(int(c) for c in coordinate)
        if len(coordinate) != self.dims:
            raise DimensionMismatchError(
                f"coordinate {coordinate} has {len(coordinate)} entries, cube has {self.dims} dims"
            )
        return coordinate

    def _contains(self, coordinate: Coordinate) -> bool:
        side = self.side
        return all(o <= c < o + side for c, o in zip(coordinate, self._origin))

    def _ensure_covered(self, coordinate: Coordinate) -> None:
        """Grow the domain (doubling toward the point) until it covers it."""
        if not self._anchored:
            # Re-anchor the pristine domain around the first point; no
            # data exists yet so this is free.
            self._origin = tuple(c - self._initial_side // 2 for c in coordinate)
            self._anchored = True
        while not self._contains(coordinate):
            corner_mask = 0
            new_origin = list(self._origin)
            side = self.side
            for axis in range(self.dims):
                # Grow toward the point: if it lies below the current
                # origin, the old cube becomes the upper half (bit set)
                # and the origin moves down; otherwise the old cube stays
                # at the bottom and the domain extends upward.
                if coordinate[axis] < self._origin[axis]:
                    corner_mask |= 1 << axis
                    new_origin[axis] -= side
            self._cube.expand(corner_mask)
            self._origin = tuple(new_origin)

    def _track_bounds(self, coordinate: Coordinate) -> None:
        if self._low_bounds is None:
            self._low_bounds = list(coordinate)
            self._high_bounds = list(coordinate)
            return
        for axis, value in enumerate(coordinate):
            self._low_bounds[axis] = min(self._low_bounds[axis], value)
            self._high_bounds[axis] = max(self._high_bounds[axis], value)

    def _internal(self, coordinate: Coordinate) -> Coordinate:
        return tuple(c - o for c, o in zip(coordinate, self._origin))

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------

    def add(self, coordinate: Sequence[int] | int, delta) -> None:
        """Add ``delta`` to the cell at ``coordinate``, growing as needed."""
        coordinate = self._normalize(coordinate)
        self._ensure_covered(coordinate)
        self._track_bounds(coordinate)
        self._cube.add(self._internal(coordinate), delta)

    def set(self, coordinate: Sequence[int] | int, value) -> None:
        """Replace the cell at ``coordinate``, growing as needed."""
        coordinate = self._normalize(coordinate)
        self._ensure_covered(coordinate)
        self._track_bounds(coordinate)
        self._cube.set(self._internal(coordinate), value)

    def get(self, coordinate: Sequence[int] | int):
        """Value at ``coordinate``; cells outside the domain are zero."""
        coordinate = self._normalize(coordinate)
        if not self._anchored or not self._contains(coordinate):
            return self.dtype.type(0)
        return self._cube.get(self._internal(coordinate))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        """``SUM`` over the inclusive range ``[low, high]``.

        The range may extend arbitrarily beyond the populated domain;
        cells outside it contribute zero.
        """
        low = self._normalize(low)
        high = self._normalize(high)
        if any(lo > hi for lo, hi in zip(low, high)):
            raise InvalidRangeError(f"range low {low} exceeds high {high}")
        if not self._anchored:
            return self.dtype.type(0)
        side = self.side
        clipped_low = []
        clipped_high = []
        for axis in range(self.dims):
            lo = max(low[axis], self._origin[axis])
            hi = min(high[axis], self._origin[axis] + side - 1)
            if lo > hi:
                return self.dtype.type(0)
            clipped_low.append(lo)
            clipped_high.append(hi)
        return self._cube.range_sum(
            self._internal(tuple(clipped_low)), self._internal(tuple(clipped_high))
        )

    def compact(self) -> int:
        """Shrink the domain to snugly cover the populated bounding box.

        Growth only ever doubles the domain, so after a burst of
        exploration the domain can dwarf the data (e.g. one far-flung
        outlier that was later retracted).  Compaction rebuilds the cube
        over the smallest power-of-two domain covering ``bounds``,
        re-anchored at the low corner.  Returns the new side length.
        """
        # Bounds track everything ever *written*, which over-covers when
        # cells were later zeroed; recompute tight bounds from live data.
        cells = list(self._nonzero_cells())
        if not cells:
            self._cube = DynamicDataCube(
                (self._initial_side,) * self.dims,
                dtype=self.dtype,
                **self._cube_options,
            )
            self._origin = (0,) * self.dims
            self._anchored = False
            self._low_bounds = None
            self._high_bounds = None
            return self.side
        low = [min(c[axis] for c, _ in cells) for axis in range(self.dims)]
        high = [max(c[axis] for c, _ in cells) for axis in range(self.dims)]
        extent = max(hi - lo + 1 for lo, hi in zip(low, high))
        side = max(self._initial_side, geometry.next_power_of_two(extent))
        rebuilt = DynamicDataCube(
            (side,) * self.dims, dtype=self.dtype, **self._cube_options
        )
        origin = tuple(low)
        rebuilt.add_many(
            [
                (tuple(c - o for c, o in zip(cell, origin)), value)
                for cell, value in cells
            ]
        )
        self._cube = rebuilt
        self._origin = origin
        self._low_bounds = low
        self._high_bounds = high
        return side

    def _nonzero_cells(self):
        """Yield ``(logical coordinate, value)`` for every non-zero cell."""
        for cell, value in self._cube.iter_nonzero():
            yield tuple(c + o for c, o in zip(cell, self._origin)), value

    def items(self):
        """Public alias of the sparse non-zero iterator (logical coords)."""
        yield from self._nonzero_cells()

    def total(self):
        """Sum of every cell ever written."""
        return self._cube.total()

    def memory_cells(self) -> int:
        """Allocated value cells — proportional to populated regions only."""
        return self._cube.memory_cells()

    def validate(self) -> None:
        """Check growth invariants; raise :class:`StructureError` on failure.

        Verifies that the tracked bounds stay inside the anchored domain
        and deep-checks the underlying :class:`DynamicDataCube`.
        """
        from ..analysis.audit import audit

        audit(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrowableCube(dims={self.dims}, origin={self._origin}, "
            f"side={self.side})"
        )
