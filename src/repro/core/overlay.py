"""Overlay boxes (Sections 3.1 and 4.2 of the paper).

An overlay box summarises one ``k^d`` region of the cube for its parent
tree node.  It stores:

* the **subtotal** ``S`` — the sum of every cell the box covers, and
* ``d`` groups of **row sum values**; group ``t`` describes, for each
  cross-position ``y`` over the other ``d-1`` dimensions, the cumulative
  sum of complete dimension-``t`` rows up to ``y``.

During a query each non-descended overlay box contributes at most one
value: the subtotal when the target region swallows the whole box, or a
single cumulative row-sum value when the region cuts the box (Figure 10).

Two implementations are provided, matching the paper's two structures:

* :class:`ArrayOverlay` (Basic DDC, Section 3) stores each group as a
  dense *cumulative* array.  Reads are O(1); a point update must rewrite
  every cumulative entry dominating the cell — the O(k^(d-1)) cascade the
  paper identifies as the Basic tree's weakness (Figure 13).
* :class:`TreeOverlay` (DDC, Section 4) stores each group's
  *non-cumulative* row totals in a secondary structure — a B^c tree when
  the group is one-dimensional, a recursive (d-1)-dimensional Dynamic
  Data Cube otherwise (Section 4.2), or a Fenwick tree under the
  engineering ablation.  Reads and updates are both O(log^(d-1) k).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..counters import OpCounter
from .bc_tree import BcTree
from .keyed_bc_tree import KeyedBcTree

__all__ = [
    "Cross",
    "OverlayBox",
    "ArrayOverlay",
    "TreeOverlay",
    "OVERLAY_KINDS",
]

_ONE_DIM_SECONDARIES = (BcTree, KeyedBcTree)

Cross = tuple[int, ...]


class OverlayBox(Protocol):
    """What a primary-tree node needs from an overlay box."""

    def subtotal(self):
        """Sum of every cell the box covers (the S cell)."""

    def row_value(self, group: int, cross: Cross):
        """Cumulative row-sum value of ``group`` at cross-position ``cross``.

        ``cross`` has ``d - 1`` coordinates (dimension ``group`` removed),
        each in ``[0, k - 1]``; a coordinate of ``k - 1`` means the full
        extent of that dimension is included.
        """

    def row_value_many(self, group: int, crosses: Sequence[Cross]) -> list:
        """Batch form of :meth:`row_value`: one value per cross-position.

        The path-sharing batch traversal collects every distinct
        row-sum read a node's queries need and issues them here as one
        call, so tree-backed overlays can answer them with a single
        shared descent of the secondary structure.
        """

    def apply_delta(self, offsets: Cross, delta) -> None:
        """Propagate a cell update at within-box ``offsets`` (d coordinates)."""

    def apply_delta_many(self, items: Sequence[tuple[Cross, object]]) -> None:
        """Batch form of :meth:`apply_delta` for ``(offsets, delta)`` items."""

    def memory_cells(self) -> int:
        """Stored values, for the Table 2 storage accounting."""


def _drop_axis(offsets: Sequence[int], axis: int) -> Cross:
    """Cross-position: ``offsets`` with coordinate ``axis`` removed."""
    return tuple(offsets[:axis]) + tuple(offsets[axis + 1 :])


class ArrayOverlay:
    """Basic DDC overlay: cumulative row-sum groups in dense arrays."""

    __slots__ = ("side", "dims", "_subtotal", "_groups", "_counter")

    def __init__(
        self, side: int, dims: int, counter: OpCounter, dtype=np.int64, **_: object
    ):
        self.side = side
        self.dims = dims
        self._counter = counter
        self._subtotal = 0
        group_shape = (side,) * (dims - 1)
        self._groups = [np.zeros(group_shape, dtype=dtype) for _ in range(dims)] if dims > 1 else []

    @classmethod
    def from_dense(
        cls, region: np.ndarray, counter: OpCounter, **_: object
    ) -> "ArrayOverlay":
        """Bulk-build the overlay for a dense ``k^d`` region."""
        overlay = cls(region.shape[0], region.ndim, counter, dtype=region.dtype)
        overlay._subtotal = region.sum().item()
        for axis in range(region.ndim if region.ndim > 1 else 0):
            rows = region.sum(axis=axis)
            for cross_axis in range(rows.ndim):
                np.cumsum(rows, axis=cross_axis, out=rows)
            overlay._groups[axis] = rows
        counter.cell_writes += overlay.memory_cells()
        return overlay

    def subtotal(self):
        self._counter.touch(self)
        self._counter.cell_reads += 1
        return self._subtotal

    def row_value(self, group: int, cross: Cross):
        self._counter.touch(self)
        self._counter.cell_reads += 1
        return self._groups[group][cross].item()

    def row_value_many(self, group: int, crosses: Sequence[Cross]) -> list:
        """Batch row-sum reads as one fancy-index gather."""
        self._counter.touch(self)
        self._counter.cell_reads += len(crosses)
        array = self._groups[group]
        index = tuple(
            np.array([cross[axis] for cross in crosses], dtype=np.intp)
            for axis in range(array.ndim)
        )
        return [value.item() for value in array[index]]

    def apply_delta(self, offsets: Cross, delta) -> None:
        """The cascading group update of Section 3.3.

        Every cumulative entry at or beyond the cell's cross-position, in
        every group, includes the updated cell — O(d * k^(d-1)) writes in
        the worst case (offsets at the origin of the box).
        """
        self._counter.touch(self)
        self._subtotal += delta
        self._counter.cell_writes += 1
        for axis, group in enumerate(self._groups):
            cross = _drop_axis(offsets, axis)
            region = tuple(slice(position, None) for position in cross)
            group[region] += delta
            touched = 1
            for position in cross:
                touched *= self.side - position
            self._counter.cell_writes += touched

    def apply_delta_many(self, items: Sequence[tuple[Cross, object]]) -> None:
        """Adaptive batch cascade.

        The subtotal absorbs the whole batch in one write.  Each group
        either replays the per-update slice cascades (cheap for small
        batches) or, once their combined footprint exceeds the group
        size, folds a point-mass delta array through one cumulative pass
        — O(k^(d-1)) for the whole batch.
        """
        self._counter.touch(self)
        self._subtotal += sum(delta for _, delta in items)
        self._counter.cell_writes += 1
        for axis, group in enumerate(self._groups):
            updates = [(_drop_axis(offsets, axis), delta) for offsets, delta in items]
            touched_total = 0
            for cross, _ in updates:
                touched = 1
                for position in cross:
                    touched *= self.side - position
                touched_total += touched
            if touched_total <= group.size:
                for cross, delta in updates:
                    region = tuple(slice(position, None) for position in cross)
                    group[region] += delta
                self._counter.cell_writes += touched_total
            else:
                deltas = np.zeros(group.shape, dtype=group.dtype)
                for cross, delta in updates:
                    deltas[cross] += delta
                for cross_axis in range(deltas.ndim):
                    np.cumsum(deltas, axis=cross_axis, out=deltas)
                group += deltas
                self._counter.cell_writes += group.size

    def memory_cells(self) -> int:
        return 1 + sum(group.size for group in self._groups)

    def validate(self) -> None:
        """Check box invariants; raise :class:`StructureError` on failure.

        Verifies that every group's cumulative corner equals the cached
        subtotal.  :func:`repro.analysis.audit` performs the deeper check
        against the covered cells when a mirror region is available.
        """
        from ..analysis.audit import audit

        audit(self)


class TreeOverlay:
    """DDC overlay: row-sum groups held in secondary structures.

    Groups are created lazily — an overlay covering an all-zero region
    costs a single subtotal cell until data arrives, which is what makes
    sparse and clustered cubes cheap (Section 5).
    """

    __slots__ = (
        "side",
        "dims",
        "_subtotal",
        "_groups",
        "_counter",
        "_dtype",
        "_secondary_kind",
        "_bc_fanout",
    )

    def __init__(
        self,
        side: int,
        dims: int,
        counter: OpCounter,
        dtype=np.int64,
        secondary_kind: str = "ddc",
        bc_fanout: int = 16,
    ):
        self.side = side
        self.dims = dims
        self._counter = counter
        self._dtype = np.dtype(dtype)
        self._secondary_kind = secondary_kind
        self._bc_fanout = bc_fanout
        self._subtotal = 0
        self._groups: list = [None] * dims if dims > 1 else []

    @classmethod
    def from_dense(
        cls,
        region: np.ndarray,
        counter: OpCounter,
        secondary_kind: str = "ddc",
        bc_fanout: int = 16,
        **_: object,
    ) -> "TreeOverlay":
        """Bulk-build: one secondary bulk build per non-zero group."""
        overlay = cls(
            region.shape[0],
            region.ndim,
            counter,
            dtype=region.dtype,
            secondary_kind=secondary_kind,
            bc_fanout=bc_fanout,
        )
        overlay._subtotal = region.sum().item()
        counter.cell_writes += 1
        if region.ndim == 1:
            return overlay
        for axis in range(region.ndim):
            rows = region.sum(axis=axis)
            if np.any(rows):
                overlay._groups[axis] = overlay._build_secondary(rows)
        return overlay

    # -- secondary structure management --------------------------------

    def _new_secondary(self):
        """An empty secondary structure for one (d-1)-dimensional group."""
        cross_dims = self.dims - 1
        if self._secondary_kind == "fenwick":
            from ..methods.fenwick import FenwickCube

            secondary = FenwickCube((self.side,) * cross_dims, dtype=self._dtype)
            secondary.stats = self._counter
            return secondary
        if cross_dims == 1:
            # The paper's key-addressed B^c tree: only populated rows are
            # materialised, so overlays over empty space stay empty.
            return KeyedBcTree(fanout=self._bc_fanout, counter=self._counter)
        from .ddc import DynamicDataCube

        return DynamicDataCube(
            (self.side,) * cross_dims,
            dtype=self._dtype,
            secondary_kind=self._secondary_kind,
            bc_fanout=self._bc_fanout,
            counter=self._counter,
        )

    def _build_secondary(self, rows: np.ndarray):
        """A secondary structure pre-loaded with dense group totals."""
        if self._secondary_kind == "fenwick":
            from ..methods.fenwick import FenwickCube

            secondary = FenwickCube.from_array(rows)
            secondary.stats = self._counter
            return secondary
        if rows.ndim == 1:
            items = [
                (index, value)
                for index, value in enumerate(rows.tolist())
                if value != 0
            ]
            return KeyedBcTree.from_items(
                items, fanout=self._bc_fanout, counter=self._counter
            )
        from .ddc import DynamicDataCube

        return DynamicDataCube.from_array(
            rows,
            secondary_kind=self._secondary_kind,
            bc_fanout=self._bc_fanout,
            counter=self._counter,
        )

    # -- OverlayBox interface -------------------------------------------

    def subtotal(self):
        self._counter.touch(self)
        self._counter.cell_reads += 1
        return self._subtotal

    def row_value(self, group: int, cross: Cross):
        self._counter.touch(self)
        secondary = self._groups[group]
        if secondary is None:
            return 0
        if isinstance(secondary, _ONE_DIM_SECONDARIES):
            return secondary.prefix_sum(cross[0])
        value = secondary.prefix_sum(cross)
        return value.item() if hasattr(value, "item") else value

    def row_value_many(self, group: int, crosses: Sequence[Cross]) -> list:
        """Batch row-sum reads as one shared descent of the secondary."""
        self._counter.touch(self)
        secondary = self._groups[group]
        if secondary is None:
            return [0] * len(crosses)
        if isinstance(secondary, _ONE_DIM_SECONDARIES):
            return secondary.prefix_sum_many([cross[0] for cross in crosses])
        values = secondary.prefix_sum_many(list(crosses))
        return [
            value.item() if hasattr(value, "item") else value for value in values
        ]

    def apply_delta(self, offsets: Cross, delta) -> None:
        """One point update per group — O(d * log^(d-1) k) total."""
        self._counter.touch(self)
        self._subtotal += delta
        self._counter.cell_writes += 1
        for axis in range(len(self._groups)):
            secondary = self._groups[axis]
            if secondary is None:
                secondary = self._groups[axis] = self._new_secondary()
            cross = _drop_axis(offsets, axis)
            if isinstance(secondary, _ONE_DIM_SECONDARIES):
                secondary.add(cross[0], delta)
            else:
                secondary.add(cross, delta)

    def apply_delta_many(self, items: Sequence[tuple[Cross, object]]) -> None:
        """Batch update: one shared subtotal write, one batch per group.

        Each group forwards the whole batch to its secondary's
        ``add_many`` — a single grouped descent for B^c trees and
        recursive sub-cubes alike.
        """
        self._counter.touch(self)
        self._subtotal += sum(delta for _, delta in items)
        self._counter.cell_writes += 1
        for axis in range(len(self._groups)):
            secondary = self._groups[axis]
            if secondary is None:
                secondary = self._groups[axis] = self._new_secondary()
            updates = [(_drop_axis(offsets, axis), delta) for offsets, delta in items]
            if isinstance(secondary, _ONE_DIM_SECONDARIES):
                secondary.add_many([(cross[0], delta) for cross, delta in updates])
            else:
                secondary.add_many(updates)

    def memory_cells(self) -> int:
        cells = 1
        for secondary in self._groups:
            if secondary is not None:
                cells += secondary.memory_cells()
        return cells

    def validate(self) -> None:
        """Check box invariants; raise :class:`StructureError` on failure.

        Verifies that every populated group's total equals the cached
        subtotal and deep-checks each secondary structure (key-addressed
        B^c trees, recursive sub-cubes, or Fenwick ablations).
        """
        from ..analysis.audit import audit

        audit(self)


OVERLAY_KINDS = {
    "array": ArrayOverlay,
    "tree": TreeOverlay,
}
