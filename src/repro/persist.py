"""Persistence: save and load cubes to/from a single ``.npz`` file.

A data cube is a long-lived asset — the paper's scenarios (sales
warehouses, star catalogs, EOSDIS grids) all accumulate for years — so
the library can serialise any method to disk and restore it losslessly:

* dense methods (naive, PS, RPS, Fenwick) store their arrays directly;
* the (Basic) Dynamic Data Cube stores only its *populated leaf blocks*
  (anchor + contents) and rebuilds overlays on load, so a sparse cube's
  file is proportional to its data, not its domain;
* :class:`~repro.core.growth.GrowableCube` additionally stores its
  origin and bounds.

Format: numpy ``.npz`` (zip of arrays) with a JSON metadata entry.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from .core.ddc import DynamicDataCube
from .core.growth import GrowableCube
from .exceptions import ReproError
from .methods.base import RangeSumMethod
from .methods.registry import method_class

__all__ = ["PersistError", "save_cube", "load_cube"]

_FORMAT_VERSION = 1


class PersistError(ReproError):
    """A cube file is malformed, truncated, or from an unknown format."""


# ----------------------------------------------------------------------
# Leaf-block harvesting for the tree methods
# ----------------------------------------------------------------------


def _collect_blocks(cube: DynamicDataCube) -> tuple[np.ndarray, np.ndarray]:
    """All populated leaf blocks as (anchors, stacked blocks)."""
    anchors: list[tuple[int, ...]] = []
    blocks: list[np.ndarray] = []
    for anchor, block in cube.iter_blocks():
        anchors.append(anchor)
        blocks.append(block)
    if not anchors:
        empty_anchor = np.zeros((0, cube.dims), dtype=np.int64)
        block_side = min(cube.leaf_side, cube._capacity)
        empty_blocks = np.zeros((0,) + (block_side,) * cube.dims, dtype=cube.dtype)
        return empty_anchor, empty_blocks
    return np.array(anchors, dtype=np.int64), np.stack(blocks)


def _restore_blocks(
    cube: DynamicDataCube, anchors: np.ndarray, blocks: np.ndarray
) -> None:
    """Rebuild a cube's contents (and overlays) from saved leaf blocks."""
    if not len(anchors):
        return
    for anchor, block in zip(anchors, blocks):
        base = tuple(int(a) for a in anchor)
        for offsets in np.ndindex(*block.shape):
            value = block[offsets]
            if value:
                cell = tuple(b + o for b, o in zip(base, offsets))
                cube.add(cell, value)


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------


def _method_payload(method: RangeSumMethod) -> tuple[dict, dict[str, np.ndarray]]:
    meta = {
        "kind": "method",
        "method": method.name,
        "shape": list(method.shape),
        "dtype": method.dtype.str,
    }
    if isinstance(method, DynamicDataCube):
        meta["options"] = {
            "leaf_side": method.leaf_side,
            "secondary_kind": method.secondary_kind,
            "bc_fanout": method.bc_fanout,
        }
        meta["capacity"] = method._capacity
        anchors, blocks = _collect_blocks(method)
        return meta, {"anchors": anchors, "blocks": blocks}
    if method.name == "rps":
        meta["options"] = {"block_side": list(method.block_side)}
    else:
        meta["options"] = {}
    return meta, {"dense": method.to_dense()}


def save_cube(method, path) -> None:
    """Serialise a range-sum method or a :class:`GrowableCube` to ``path``."""
    if isinstance(method, GrowableCube):
        inner_meta, arrays = _method_payload(method._cube)
        meta = {
            "kind": "growable",
            "inner": inner_meta,
            "dims": method.dims,
            "dtype": method.dtype.str,
            "initial_side": method._initial_side,
            "origin": list(method._origin),
            "anchored": method._anchored,
            "low_bounds": method._low_bounds,
            "high_bounds": method._high_bounds,
            "options": method._cube_options,
        }
    elif isinstance(method, RangeSumMethod):
        meta, arrays = _method_payload(method)
    else:
        raise PersistError(f"cannot persist object of type {type(method).__name__}")
    meta["format_version"] = _FORMAT_VERSION
    payload = {"__meta__": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    payload.update(arrays)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------


def _load_method(meta: dict, data) -> RangeSumMethod:
    options = dict(meta.get("options", {}))
    if "block_side" in options:
        options["block_side"] = tuple(options["block_side"])
    cls = method_class(meta["method"])
    if issubclass(cls, DynamicDataCube):
        cube = cls(tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), **options)
        while cube._capacity < meta.get("capacity", cube._capacity):
            cube.expand(0)
        _restore_blocks(cube, data["anchors"], data["blocks"])
        return cube
    dense = data["dense"]
    return cls.from_array(dense, dtype=np.dtype(meta["dtype"]), **options)


def load_cube(path):
    """Restore a cube saved by :func:`save_cube`.

    Returns the same type that was saved (a method instance or a
    :class:`GrowableCube`).  Raises :class:`PersistError` on malformed
    or unknown files.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path) as data:
            if "__meta__" not in data:
                raise PersistError(f"{path} is not a cube file (no metadata)")
            meta = json.loads(bytes(data["__meta__"]).decode())
            version = meta.get("format_version")
            if version != _FORMAT_VERSION:
                raise PersistError(
                    f"unsupported cube format version {version!r} in {path}"
                )
            if meta["kind"] == "method":
                return _load_method(meta, data)
            if meta["kind"] == "growable":
                grown = GrowableCube(
                    dims=meta["dims"],
                    dtype=np.dtype(meta["dtype"]),
                    initial_side=meta["initial_side"],
                    **meta.get("options", {}),
                )
                grown._cube = _load_method(meta["inner"], data)
                grown._origin = tuple(meta["origin"])
                grown._anchored = meta["anchored"]
                grown._low_bounds = meta["low_bounds"]
                grown._high_bounds = meta["high_bounds"]
                return grown
            raise PersistError(f"unknown cube kind {meta['kind']!r} in {path}")
    except PersistError:
        raise
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        raise PersistError(f"failed to load cube from {path}: {error}") from error
