"""Sharded parallel serving engine with an epoch-invalidated result cache.

The scaling layer on top of the range-sum structures: partition the cube
along its leading dimension into K independent shards, route updates to
owners, decompose queries into per-shard sub-ranges fanned out over an
executor, and serve repeat reads from an LRU cache whose entries are
validated against per-shard write epochs.  See ``docs/engine.md``.
"""

from .cache import MISS, EpochLruCache
from .engine import ShardedEngine
from .executor import SerialExecutor, ThreadedExecutor, make_executor
from .sharding import ShardPlan, ShardSpan

__all__ = [
    "ShardedEngine",
    "ShardPlan",
    "ShardSpan",
    "EpochLruCache",
    "MISS",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
]
