"""Sharded parallel serving engine with an epoch-invalidated result cache.

The scaling layer on top of the range-sum structures: partition the cube
along its leading dimension into K independent shards, route updates to
owners, decompose queries into per-shard sub-ranges fanned out over an
executor, and serve repeat reads from an LRU cache whose entries are
validated against per-shard write epochs.  See ``docs/engine.md``.

Fault tolerance (``docs/resilience.md``): attach a
:class:`~repro.engine.resilience.ResiliencePolicy` to run every read
fan-out with deadline budgets, retry-with-backoff, per-shard circuit
breakers, and graceful degradation; test it all deterministically with
:class:`~repro.engine.resilience.FaultInjector`.

Process parallelism (``docs/engine.md``): construct the engine with
``executor="process"`` to serve every shard from a shared-memory
prefix-sum slab (:class:`~repro.engine.shm.ShardSlabStore`) through a
persistent worker-process pool
(:class:`~repro.engine.process.ProcessExecutor`) — the fan-out contract
is unchanged, so resilience and chaos tooling compose as-is.
"""

from .cache import MISS, EpochLruCache
from .engine import ShardedEngine
from .executor import SerialExecutor, ThreadedExecutor, make_executor
from .process import ProcessExecutor, ShmShardReplica
from .resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultScript,
    PartialResult,
    ResiliencePolicy,
    is_partial,
)
from .sharding import ShardPlan, ShardSpan
from .shm import ShardSlabStore

__all__ = [
    "ShardedEngine",
    "ShardPlan",
    "ShardSpan",
    "EpochLruCache",
    "MISS",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ShmShardReplica",
    "ShardSlabStore",
    "make_executor",
    "ResiliencePolicy",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "PartialResult",
    "is_partial",
    "FaultInjector",
    "FaultScript",
]
