"""The sharded serving engine: parallel decomposition + epoch-safe cache.

:class:`ShardedEngine` is the serving layer the ROADMAP's scaling arc
points at.  It *is* a :class:`~repro.methods.base.RangeSumMethod` — the
same contract as every structure in the library — but internally it
partitions the cube along its leading dimension into K independent
shards (each one any registered method, DDC by default), and serves:

* **point updates** by routing each delta to its owning shard and
  bumping that shard's epoch counter;
* **range / prefix queries** by decomposing the range into at most one
  local sub-range per overlapping shard, fanning the sub-queries out
  over an executor (sequential by default, a thread pool when
  ``workers >= 2``), and summing the partial results — correct because
  the slabs are disjoint;
* **batches** by grouping all sub-queries / updates per shard first, so
  each shard answers its whole share through one ``range_sum_many`` /
  ``add_many`` call and the per-shard path-sharing machinery keeps
  working inside the shard;
* **repeat reads** from a hot-range LRU cache validated by the per-shard
  epochs, so a read-heavy workload skips tree traversal entirely while
  interleaved writes stay exactly visible.

Concurrency model: public operations serialise on one reentrant lock;
*within* a read, per-shard sub-queries run concurrently on the executor
(they touch disjoint shards, and the lock keeps writers out for the
duration).  Shared mutable state — the epoch list and the cache — is
only touched under the lock or inside ``_locked_*`` helpers, which lint
rule REP007 enforces mechanically.
"""

from __future__ import annotations

import random
import threading
from typing import Sequence

import numpy as np

from .. import geometry
from ..counters import OpCounter
from ..exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ShardFailedError,
)
from ..methods.base import RangeSumMethod
from ..methods.registry import method_class
from ..obs import NULL_OBS
from ..obs.metrics import NULL_INSTRUMENT
from .cache import MISS, EpochLruCache
from .executor import ThreadedExecutor, make_executor
from .resilience import CircuitBreaker, Deadline, PartialResult, ResiliencePolicy
from .sharding import ShardPlan

__all__ = ["ShardedEngine"]


class ShardedEngine(RangeSumMethod):
    """K-sharded, cache-fronted serving engine over any registered method.

    Args:
        shape: logical cube shape; the leading dimension is sharded.
        shards: number of slabs (1 degenerates to a cached passthrough).
        method: registry name of the per-shard structure (default DDC).
        workers: executor threads for sub-query fan-out; ``None``/0/1
            select the deterministic sequential executor.
        cache_size: LRU capacity in entries; 0 disables result caching.
        dtype: value dtype, forwarded to every shard.
        method_kwargs: extra keyword arguments for shard construction.
        obs: optional :class:`~repro.obs.Observability` facade.  When
            wired, the engine feeds request/shard latency histograms,
            cache-outcome counters, epoch/occupancy gauges, per-query
            span trees (engine→shard→method→tree), and the slow-query
            log; the facade is propagated to every shard.  Defaults to
            the shared disabled facade — zero overhead.
        resilience: optional
            :class:`~repro.engine.resilience.ResiliencePolicy`.  When
            set, every read fan-out runs with deadline budgets,
            retry-with-backoff, per-shard circuit breakers, and the
            policy's graceful-degradation mode (see
            ``docs/resilience.md``).  ``None`` (the default) keeps the
            exact PR 3 fast path.
        executor: either a pre-built executor (anything with the
            ``map`` / ``try_map`` / ``shutdown`` surface — this is how
            tests and the chaos CLI interpose a
            :class:`~repro.engine.resilience.FaultInjector`; ``workers``
            is then ignored) or one of the strings ``"serial"``,
            ``"thread"``, ``"process"``.  ``"process"`` replaces the
            in-process shards with
            :class:`~repro.engine.process.ShmShardReplica` proxies over
            a :class:`~repro.engine.shm.ShardSlabStore` — every shard's
            payload becomes a shared-memory prefix-sum slab served by a
            persistent worker-process pool, side-stepping the GIL
            entirely (``method`` then only labels reports; the slab
            layout is fixed).  ``None`` (the default) keeps the
            historical behaviour: threads when ``workers >= 2``, serial
            otherwise — except that a single-shard plan now always runs
            serially, since there is nothing to fan out.
        ipc_reads: process mode only — route every read through the
            owning worker's pipe instead of gathering directly off the
            shared slab.  Slower, but it makes reads themselves cross
            the process boundary, which is what the chaos harness wants
            when it kills workers mid-query.
    """

    name = "engine"

    def __init__(
        self,
        shape: Sequence[int],
        shards: int = 4,
        method: str = "ddc",
        workers: int | None = None,
        cache_size: int = 1024,
        dtype=np.int64,
        method_kwargs: dict | None = None,
        obs=None,
        resilience: ResiliencePolicy | None = None,
        executor=None,
        ipc_reads: bool = False,
    ) -> None:
        super().__init__(shape, dtype=dtype)
        self.plan = ShardPlan(self.shape, shards)
        self.method_name = method
        self.workers = workers
        self._method_kwargs = dict(method_kwargs or {})
        self.obs = obs if obs is not None else NULL_OBS
        executor_kind = executor if isinstance(executor, str) else None
        if executor_kind is not None:
            executor = None
            if executor_kind not in ("serial", "thread", "process"):
                raise ConfigurationError(
                    f"unknown executor kind {executor_kind!r} "
                    f"(expected 'serial', 'thread', or 'process')"
                )
        shard_cls = method_class(method)
        self._store = None
        self._process_pool = None
        if executor_kind == "process":
            from .process import ProcessExecutor, ShmShardReplica
            from .shm import ShardSlabStore

            # Slab-native methods (``slab_kernel = "vector"``) swap the
            # per-query corner loop for the batched slab-tree gather in
            # every worker; pointer methods keep the scalar kernel.
            self._store = ShardSlabStore(
                self.plan,
                dtype=self.dtype,
                kernel=getattr(shard_cls, "slab_kernel", "scalar"),
            )
            self._process_pool = ProcessExecutor(
                self._store, workers=workers, obs=self.obs,
                ipc_reads=ipc_reads,
            )
            self._shards: list[RangeSumMethod] = [
                ShmShardReplica(
                    self._process_pool,
                    index,
                    self.plan.shard_shape(index),
                    dtype=self.dtype,
                )
                for index in range(self.plan.count)
            ]
        else:
            self._shards = [
                shard_cls(
                    self.plan.shard_shape(index),
                    dtype=self.dtype,
                    **self._method_kwargs,
                )
                for index in range(self.plan.count)
            ]
        for shard in self._shards:
            shard.obs = self.obs
        if executor is not None:
            self._executor = executor
            self.executor_kind = "custom"
        elif executor_kind == "process":
            self._executor = self._process_pool
            self.executor_kind = "process"
        elif executor_kind == "thread":
            self._executor = ThreadedExecutor(workers if workers and workers >= 2 else 2)
            self.executor_kind = "thread"
        elif executor_kind == "serial":
            self._executor = make_executor(None)
            self.executor_kind = "serial"
        else:
            # Default selection, with one refinement: a single-shard plan
            # has nothing to fan out, so a thread pool would be pure
            # dispatch overhead — degrade to the serial executor.
            self._executor = make_executor(
                workers if self.plan.count > 1 else None
            )
            self.executor_kind = (
                "thread" if self._executor.workers > 1 else "serial"
            )
        self._lock = threading.RLock()
        self._epochs = [0] * self.plan.count
        self._cache = EpochLruCache(cache_size)
        self.policy = resilience
        self._breakers: list[CircuitBreaker] | None = (
            [CircuitBreaker(resilience) for _ in range(self.plan.count)]
            if resilience is not None
            else None
        )
        self._retry_rng = random.Random(
            resilience.retry_seed if resilience is not None else 0
        )
        self._register_engine_instruments()

    def _register_engine_instruments(self) -> None:
        """Pre-create the engine's metric families.

        Disabled mode binds every handle to the shared
        :data:`~repro.obs.metrics.NULL_INSTRUMENT` instead of minting
        per-engine null children — NULL_OBS stays allocation-free.
        """
        if not self.obs.enabled:
            self._obs_request_seconds = NULL_INSTRUMENT
            self._obs_shard_seconds = NULL_INSTRUMENT
            self._obs_cache_lookups = NULL_INSTRUMENT
            self._obs_fanout_wait = NULL_INSTRUMENT
            self._obs_cache_entries = NULL_INSTRUMENT
            self._obs_shard_epoch = NULL_INSTRUMENT
            self._obs_retries = NULL_INSTRUMENT
            self._obs_timeouts = NULL_INSTRUMENT
            self._obs_breaker_transitions = NULL_INSTRUMENT
            self._obs_breaker_state = NULL_INSTRUMENT
            self._obs_degraded = NULL_INSTRUMENT
            self._obs_backoff = NULL_INSTRUMENT
            return
        metrics = self.obs.metrics
        self._obs_request_seconds = metrics.histogram(
            "repro_engine_request_seconds",
            "End-to-end engine request latency, per operation.",
            labels=("op",),
        )
        self._obs_shard_seconds = metrics.histogram(
            "repro_engine_shard_seconds",
            "Per-shard sub-operation latency.",
            labels=("shard", "op"),
        )
        self._obs_cache_lookups = metrics.counter(
            "repro_engine_cache_lookups_total",
            "Result-cache lookups by outcome: hit, miss (absent), or "
            "stale (present but epoch-invalidated).",
            labels=("result",),
        )
        self._obs_fanout_wait = metrics.histogram(
            "repro_engine_fanout_wait_seconds",
            "Wall time a multi-shard read spends in the executor fan-out.",
        )
        self._obs_cache_entries = metrics.gauge(
            "repro_engine_cache_entries",
            "Live entries in the epoch-validated result cache.",
        )
        self._obs_shard_epoch = metrics.gauge(
            "repro_engine_shard_epoch",
            "Current write epoch per shard.",
            labels=("shard",),
        )
        self._obs_retries = metrics.counter(
            "repro_engine_retries_total",
            "Shard sub-operations re-attempted after a failure.",
            labels=("shard",),
        )
        self._obs_timeouts = metrics.counter(
            "repro_engine_timeouts_total",
            "Shard sub-operations abandoned because the request deadline "
            "budget ran out.",
        )
        self._obs_breaker_transitions = metrics.counter(
            "repro_engine_breaker_transitions_total",
            "Circuit-breaker state transitions per shard.",
            labels=("shard", "to"),
        )
        self._obs_breaker_state = metrics.gauge(
            "repro_engine_breaker_state",
            "Circuit-breaker state per shard "
            "(0 = closed, 1 = half-open, 2 = open).",
            labels=("shard",),
        )
        self._obs_degraded = metrics.counter(
            "repro_engine_degraded_total",
            "Degraded responses by mode: partial (marked, missing shards "
            "omitted) or fallback (exact, recomputed off the fan-out path).",
            labels=("mode",),
        )
        self._obs_backoff = metrics.histogram(
            "repro_engine_backoff_seconds",
            "Retry backoff sleeps between fan-out rounds.",
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, **kwargs) -> "ShardedEngine":
        """Build an engine whose shards bulk-load slabs of ``array``.

        Each shard is constructed through its method's own vectorised
        ``from_array`` on the matching leading-dimension slab — the
        shard-compatible bulk build, K small builds instead of one big
        one (and they are independent, so a future process-level build
        can run them in parallel).
        """
        array = np.asarray(array)
        engine = cls(array.shape, dtype=kwargs.pop("dtype", array.dtype), **kwargs)
        if engine._store is not None:
            # Process mode: the payload lives in the shared slab store;
            # recomputing the prefix slabs in place is the bulk load
            # (attached workers see the pages directly), and the epoch
            # bumps invalidate anything cached against the empty cube.
            with engine._lock:
                # No posted delta may race the rewrite.
                engine._process_pool.flush()
                engine._store.load_array(array.astype(engine.dtype))
                for index in range(engine.plan.count):
                    engine._epochs[index] += 1
            return engine
        shard_cls = method_class(engine.method_name)
        with engine._lock:
            for index in range(engine.plan.count):
                slab = array[engine.plan.slab(index)].astype(engine.dtype)
                engine._shards[index] = shard_cls.from_array(
                    slab, dtype=engine.dtype, **engine._method_kwargs
                )
                engine._shards[index].obs = engine.obs
                engine._epochs[index] += 1
        return engine

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def add(self, cell: Sequence[int] | int, delta) -> None:
        """Route one point update to its owning shard (epoch-bumping).

        The serving loop's write path: one owner lookup, one scalar
        shard update, one epoch bump — no batch packaging.
        """
        cell = geometry.normalize_cell(cell, self.shape)
        if delta == 0:
            return
        index = self.plan.owner(cell)
        obs = self.obs
        if not obs.enabled:
            with self._lock:
                self._locked_add_one(index, cell, delta)
            return
        start = obs.clock.now()
        with obs.span("engine.add", shard=index):
            with self._lock:
                epoch = self._locked_add_one(index, cell, delta)
        elapsed = obs.clock.now() - start
        self._obs_request_seconds.labels(op="add").observe(elapsed)
        self._obs_shard_seconds.labels(shard=str(index), op="add").observe(elapsed)
        self._obs_shard_epoch.labels(shard=str(index)).set(epoch)

    def _locked_add_one(self, index: int, cell: tuple, delta) -> int:
        """Apply one routed update; caller holds the lock.  Returns the
        shard's post-update epoch."""
        shard = self._shards[index]
        self.stats.touch(shard)
        shard.add(self.plan.to_local(index, cell), delta)
        self._epochs[index] += 1
        return self._epochs[index]

    def add_many(self, updates: Sequence[tuple]) -> None:
        """Apply a write batch: group per shard, one epoch bump per shard.

        Updates are combined per cell and grouped by owning shard, then
        each touched shard applies its whole share through its own
        ``add_many`` (the per-shard batch machinery — grouped descents,
        cascade crossovers — keeps working).  The shard's epoch advances
        once per batch, so every cached range overlapping it revalidates
        as stale while ranges over untouched shards stay warm.
        """
        combined = self._combined_updates(updates)
        if not combined:
            return
        grouped: dict[int, list[tuple]] = {}
        for cell, delta in combined:
            index = self.plan.owner(cell)
            grouped.setdefault(index, []).append(
                (self.plan.to_local(index, cell), delta)
            )
        obs = self.obs
        if not obs.enabled:
            with self._lock:
                self._locked_add_groups(grouped)
            return
        start = obs.clock.now()
        with obs.span("engine.add_many", updates=len(combined), shards=len(grouped)):
            with self._lock:
                epochs = self._locked_add_groups(grouped)
        elapsed = obs.clock.now() - start
        self._obs_request_seconds.labels(op="add_many").observe(elapsed)
        for index, epoch in epochs.items():
            self._obs_shard_epoch.labels(shard=str(index)).set(epoch)

    def _locked_add_groups(self, grouped: dict[int, list[tuple]]) -> dict[int, int]:
        """Apply per-shard update groups; caller holds the lock.  Returns
        the post-batch epoch of every touched shard."""
        epochs: dict[int, int] = {}
        for index in sorted(grouped):
            shard = self._shards[index]
            self.stats.touch(shard)
            shard.add_many(grouped[index])
            self._epochs[index] += 1
            epochs[index] = self._epochs[index]
        return epochs

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def prefix_sum(self, cell: Sequence[int] | int):
        """Origin-anchored range sum (served through the cache)."""
        cell = geometry.normalize_cell(cell, self.shape)
        return self.range_sum((0,) * self.dims, cell)

    def range_sum(self, low: Sequence[int] | int, high: Sequence[int] | int):
        """One cached, shard-decomposed range sum.

        The serving loop's read path: a hit is one lock acquisition and
        one LRU probe; a miss skips the batch bookkeeping and goes
        straight to the per-shard computation.  With observability wired
        the lookup outcome is classified hit / miss / stale (present but
        epoch-invalidated) and every miss is offered to the slow-query
        log with its span tree and OpCounter delta.
        """
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        key = (low_cell, high_cell)
        obs = self.obs
        if not obs.enabled:
            with self._lock:
                value = self._cache.get(key, self._epochs)
                if value is not MISS:
                    self.stats.cache_hits += 1
                    return value
                self.stats.cache_misses += 1
                return self._locked_compute_one(key)
        start = obs.clock.now()
        outcome = "hit"
        ops = None
        with obs.span("engine.range_sum") as span:
            with self._lock:
                invalidations = self._cache.invalidations
                value = self._cache.get(key, self._epochs)
                if value is not MISS:
                    self.stats.cache_hits += 1
                else:
                    outcome = (
                        "stale"
                        if self._cache.invalidations > invalidations
                        else "miss"
                    )
                    self.stats.cache_misses += 1
                    before = self.aggregate_stats()
                    value = self._locked_compute_one(key)
                    ops = self.aggregate_stats().diff(before)
            span.set(cache=outcome)
        elapsed = obs.clock.now() - start
        self._obs_cache_lookups.labels(result=outcome).inc()
        self._obs_request_seconds.labels(op="range_sum").observe(elapsed)
        if ops is not None:
            obs.slow_log.consider(
                span, ops, elapsed, op="range_sum", cache=outcome,
                executor=self.executor_kind,
            )
        return value

    def prefix_sum_many(self, cells: Sequence) -> list:
        """Batch prefix queries as origin-anchored batch range queries."""
        origin = (0,) * self.dims
        return self.range_sum_many(
            [(origin, geometry.normalize_cell(cell, self.shape)) for cell in cells]
        )

    def range_sum_many(self, ranges: Sequence) -> list:
        """Batch range queries: cache first, then per-shard fan-out.

        Each query is looked up in the cache; the distinct misses are
        decomposed, their sub-queries grouped per shard, and every
        touched shard answers its group through one ``range_sum_many``
        call — fanned out over the executor.  Duplicate misses inside
        the batch share one computation and count as hits.
        """
        queries = [self._query_bounds(item) for item in ranges]
        if not queries:
            return []
        self._use_batch_path(len(queries))
        results: list = [None] * len(queries)
        obs = self.obs
        if not obs.enabled:
            with self._lock:
                self._locked_serve_batch(queries, results, want_ops=False)
            return results
        start = obs.clock.now()
        with obs.span("engine.range_sum_many", queries=len(queries)) as span:
            with self._lock:
                hits, misses, stale, ops = self._locked_serve_batch(
                    queries, results, want_ops=True
                )
            span.set(hits=hits, misses=misses, stale=stale)
        elapsed = obs.clock.now() - start
        self._obs_request_seconds.labels(op="range_sum_many").observe(elapsed)
        if hits:
            self._obs_cache_lookups.labels(result="hit").inc(hits)
        if misses - stale:
            self._obs_cache_lookups.labels(result="miss").inc(misses - stale)
        if stale:
            self._obs_cache_lookups.labels(result="stale").inc(stale)
        if ops is not None:
            obs.slow_log.consider(
                span,
                ops,
                elapsed,
                op="range_sum_many",
                queries=len(queries),
                cache_hits=hits,
                executor=self.executor_kind,
            )
        return results

    def _locked_serve_batch(
        self, queries: list[tuple], results: list, want_ops: bool
    ) -> tuple[int, int, int, OpCounter | None]:
        """Serve one query batch; caller holds the lock.

        Fills ``results`` in place and returns ``(hits, distinct misses,
        stale lookups, ops)`` where ``ops`` is the OpCounter delta of the
        miss computation (``None`` when ``want_ops`` is false or nothing
        missed).
        """
        missing: dict[tuple, list[int]] = {}
        hits = 0
        invalidations = self._cache.invalidations
        for position, key in enumerate(queries):
            if key in missing:
                self.stats.cache_hits += 1
                hits += 1
                missing[key].append(position)
                continue
            value = self._cache.get(key, self._epochs)
            if value is not MISS:
                self.stats.cache_hits += 1
                hits += 1
                results[position] = value
            else:
                self.stats.cache_misses += 1
                missing[key] = [position]
        stale = self._cache.invalidations - invalidations
        ops = None
        if missing:
            before = self.aggregate_stats() if want_ops else None
            for key, value in self._locked_compute(list(missing)):
                for position in missing[key]:
                    results[position] = value
            if want_ops:
                ops = self.aggregate_stats().diff(before)
        return hits, len(missing), stale, ops

    def _locked_compute_one(self, key: tuple):
        """Answer one missing range; caller holds the lock.

        The scalar serving path: no batch dictionaries, and no executor
        dispatch unless a thread pool is attached and the range actually
        spans several shards.  With a resilience policy attached every
        read goes through the guarded fan-out instead, so deadlines,
        retries, and breakers apply uniformly.
        """
        if self.policy is not None:
            return self._locked_compute([key])[0][1]
        parts = list(self.plan.decompose(*key))
        if len(parts) > 1 and self._executor.workers > 1:
            return self._locked_compute([key])[0][1]
        epochs = tuple(self._epochs)
        obs = self.obs
        total = self._zero()
        dependencies = []
        for index, local_low, local_high in parts:
            shard = self._shards[index]
            self.stats.touch(shard)
            if not obs.enabled:
                total = total + shard.range_sum(local_low, local_high)
            else:
                shard_start = obs.clock.now()
                with obs.span(
                    "shard.range_sum", shard=index, **self._lane_attr(index)
                ):
                    total = total + shard.range_sum(local_low, local_high)
                self._obs_shard_seconds.labels(
                    shard=str(index), op="range_sum"
                ).observe(obs.clock.now() - shard_start)
            dependencies.append(index)
        value = self.dtype.type(total)
        self._cache.put(key, value, dependencies, epochs)
        if obs.enabled:
            self._obs_cache_entries.set(len(self._cache))
        return value

    def _locked_compute(self, keys: list[tuple]) -> list[tuple]:
        """Answer distinct missing ranges; caller holds the lock.

        Returns ``(key, value)`` pairs and caches every value stamped
        with the epoch snapshot taken before any shard work started.
        """
        epochs = tuple(self._epochs)
        per_shard: dict[int, list[tuple[int, tuple, tuple]]] = {}
        dependencies: list[list[int]] = []
        for key_index, (low, high) in enumerate(keys):
            touched: list[int] = []
            for shard_index, local_low, local_high in self.plan.decompose(
                low, high
            ):
                per_shard.setdefault(shard_index, []).append(
                    (key_index, local_low, local_high)
                )
                touched.append(shard_index)
            dependencies.append(touched)

        obs = self.obs
        # Per-shard spans run on executor threads whose span stacks are
        # empty, so the request span is captured here and attached as the
        # explicit parent (a cross-thread child).
        parent = obs.tracer.current() if obs.enabled else None

        def compute(shard, sub_queries):
            if len(sub_queries) == 1:
                _, local_low, local_high = sub_queries[0]
                return [shard.range_sum(local_low, local_high)]
            return shard.range_sum_many(
                [
                    (local_low, local_high)
                    for _, local_low, local_high in sub_queries
                ]
            )

        def run_shard(item: tuple[int, list[tuple[int, tuple, tuple]]]):
            shard_index, sub_queries = item
            shard = self._shards[shard_index]
            self.stats.touch(shard)
            if not obs.enabled:
                return sub_queries, compute(shard, sub_queries)
            shard_start = obs.clock.now()
            before = shard.stats.snapshot()
            with obs.tracer.span(
                "shard.range_sum",
                parent=parent,
                shard=shard_index,
                queries=len(sub_queries),
                **self._lane_attr(shard_index),
            ) as shard_span:
                values = compute(shard, sub_queries)
                delta = shard.stats.diff(before)
                shard_span.set(
                    node_visits=delta.node_visits,
                    cell_ops=delta.total_cell_ops,
                )
            self._obs_shard_seconds.labels(
                shard=str(shard_index), op="range_sum"
            ).observe(obs.clock.now() - shard_start)
            return sub_queries, values

        totals = [self._zero() for _ in keys]
        fanout_start = obs.clock.now() if obs.enabled else 0.0
        if self.policy is None:
            completed = self._executor.map(run_shard, sorted(per_shard.items()))
            missing_by_key: dict[int, set[int]] = {}
        else:
            completed, failed = self._locked_resilient_fanout(
                sorted(per_shard.items()), run_shard
            )
            missing_by_key = self._locked_degrade(
                failed, per_shard, dependencies, completed, compute
            )
        for sub_queries, values in completed:
            for (key_index, _, _), value in zip(sub_queries, values):
                totals[key_index] = totals[key_index] + value
        if obs.enabled:
            self._obs_fanout_wait.observe(obs.clock.now() - fanout_start)

        out: list[tuple] = []
        for key_index, key in enumerate(keys):
            value = self.dtype.type(totals[key_index])
            if key_index in missing_by_key:
                # Degraded: explicitly marked, and never cached — the
                # next lookup must recompute rather than resurrect a
                # partial sum as if it were exact.
                out.append(
                    (key, PartialResult(value, missing_by_key[key_index]))
                )
                continue
            self._cache.put(key, value, dependencies[key_index], epochs)
            out.append((key, value))
        if obs.enabled:
            self._obs_cache_entries.set(len(self._cache))
        return out

    # ------------------------------------------------------------------
    # Resilient fan-out (deadlines, retries, breakers, degradation)
    # ------------------------------------------------------------------

    def _locked_resilient_fanout(
        self, items: list[tuple], run_shard
    ) -> tuple[list, dict]:
        """Fan ``items`` out under the resilience policy; caller holds
        the lock.

        Returns ``(completed, failed)`` where ``completed`` holds the
        successful ``run_shard`` results and ``failed`` maps each
        permanently-failed shard index to its final exception.  Each
        round re-submits only the still-failing shards through the
        executor — so an interposed FaultInjector sees every retry —
        with exponential seeded-jitter backoff slept on the injected
        clock between rounds, the whole request bounded by one
        :class:`~repro.engine.resilience.Deadline`, and every outcome
        recorded into the per-shard breakers (whose refusals fail fast
        without touching the shard at all).
        """
        policy = self.policy
        clock = self.obs.clock
        deadline = Deadline.after(clock, policy.deadline_seconds)
        pending: dict[int, list] = dict(items)
        attempts: dict[int, int] = {index: 0 for index in pending}
        completed: list = []
        failed: dict[int, Exception] = {}
        round_index = 0
        while pending:
            now = clock.now()
            runnable: list[tuple] = []
            for shard_index in sorted(pending):
                breaker = self._breakers[shard_index]
                state_before = breaker.state
                allowed = breaker.allow(now)
                self._note_breaker(shard_index, state_before, breaker.state)
                if allowed:
                    runnable.append((shard_index, pending[shard_index]))
                else:
                    failed[shard_index] = CircuitOpenError(
                        f"shard {shard_index} circuit breaker is open "
                        f"(failure rate {breaker.failure_rate():.2f})"
                    )
                    del pending[shard_index]
            if not runnable:
                break
            if deadline is not None and deadline.expired(clock):
                for shard_index, _ in runnable:
                    failed[shard_index] = DeadlineExceededError(
                        f"request deadline of {policy.deadline_seconds}s "
                        f"spent before shard {shard_index} was attempted"
                    )
                    self._obs_timeouts.inc()
                    del pending[shard_index]
                break
            timeout = deadline.remaining(clock) if deadline is not None else None
            outcomes = self._executor.try_map(
                run_shard, runnable, timeout=timeout, clock=clock
            )
            now = clock.now()
            retrying = False
            for (shard_index, _), (value, error) in zip(runnable, outcomes):
                breaker = self._breakers[shard_index]
                state_before = breaker.state
                if error is None:
                    breaker.record_success(now)
                    self._note_breaker(shard_index, state_before, breaker.state)
                    completed.append(value)
                    del pending[shard_index]
                    continue
                breaker.record_failure(now)
                self._note_breaker(shard_index, state_before, breaker.state)
                attempts[shard_index] += 1
                out_of_time = isinstance(error, DeadlineExceededError) or (
                    deadline is not None and deadline.expired(clock)
                )
                if out_of_time or attempts[shard_index] > policy.max_retries:
                    if isinstance(error, DeadlineExceededError):
                        self._obs_timeouts.inc()
                    failed[shard_index] = error
                    del pending[shard_index]
                else:
                    self._obs_retries.labels(shard=str(shard_index)).inc()
                    retrying = True
            if retrying and pending:
                backoff = policy.backoff(round_index, self._retry_rng)
                if deadline is not None:
                    backoff = min(backoff, deadline.remaining(clock))
                if backoff > 0:
                    self._obs_backoff.observe(backoff)
                    clock.sleep(backoff)
            round_index += 1
        return completed, failed

    def _locked_degrade(
        self,
        failed: dict[int, Exception],
        per_shard: dict[int, list],
        dependencies: list[list[int]],
        completed: list,
        compute,
    ) -> dict[int, set[int]]:
        """Apply the degradation policy to permanently-failed shards;
        caller holds the lock.

        * ``strict`` — raise: :class:`DeadlineExceededError` when the
          budget ran out, else :class:`ShardFailedError` naming every
          failed shard (chained to the first underlying error).
        * ``fallback`` — recompute each failed shard's sub-queries
          synchronously in the request thread (``compute`` is the
          direct, executor-free path), append the exact results to
          ``completed``, and return no missing keys.
        * ``partial`` — return ``{key_index: missing shard set}`` so
          the caller wraps affected answers in
          :class:`~repro.engine.resilience.PartialResult`.
        """
        if not failed:
            return {}
        policy = self.policy
        obs = self.obs
        if policy.degradation == "strict":
            deadline_errors = [
                error
                for error in failed.values()
                if isinstance(error, DeadlineExceededError)
            ]
            if deadline_errors:
                raise deadline_errors[0]
            first = next(iter(failed.values()))
            raise ShardFailedError(
                "shard sub-operations failed after retries: "
                + ", ".join(
                    f"shard {index}: {error}" for index, error in sorted(failed.items())
                )
            ) from first
        if policy.degradation == "fallback":
            for shard_index in sorted(failed):
                sub_queries = per_shard[shard_index]
                shard = self._shards[shard_index]
                self.stats.touch(shard)
                # Proxy shards (process mode) provide an executor-free
                # direct reader over the shared slab — the fallback must
                # not depend on the very worker that just failed.
                fallback = getattr(shard, "fallback_target", None)
                target = fallback() if fallback is not None else shard
                if obs.enabled:
                    with obs.span("shard.fallback", shard=shard_index):
                        values = compute(target, sub_queries)
                else:
                    values = compute(target, sub_queries)
                completed.append((sub_queries, values))
                self._obs_degraded.labels(mode="fallback").inc()
            return {}
        # partial: name the missing shards per affected key
        missing_by_key: dict[int, set[int]] = {}
        failed_shards = set(failed)
        for key_index, touched in enumerate(dependencies):
            gone = failed_shards.intersection(touched)
            if gone:
                missing_by_key[key_index] = gone
                self._obs_degraded.labels(mode="partial").inc()
        return missing_by_key

    def _lane_attr(self, shard_index: int) -> dict:
        """``{"worker": lane}`` in process mode, else empty — span
        attribute naming the pool lane that owns a shard, so slow-query
        records and Chrome traces can attribute work to workers."""
        if self._process_pool is None:
            return {}
        return {"worker": self._process_pool.lane_of(shard_index)}

    def _note_breaker(self, shard_index: int, before: str, after: str) -> None:
        """Emit breaker transition/state instruments on a state change."""
        if before == after or not self.obs.enabled:
            return
        self._obs_breaker_transitions.labels(
            shard=str(shard_index), to=after
        ).inc()
        self._obs_breaker_state.labels(shard=str(shard_index)).set(
            self._breakers[shard_index].gauge_value
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[RangeSumMethod, ...]:
        """The per-shard structures (read-only view for tests/benches)."""
        return tuple(self._shards)

    @property
    def executor(self):
        """The live executor (read-only view for tests/benches)."""
        return self._executor

    @property
    def process_pool(self):
        """The worker-process pool, or None outside process mode."""
        return self._process_pool

    def wrap_executor(self, wrap) -> None:
        """Replace the live executor with ``wrap(current_executor)``.

        The hook the chaos harness uses to interpose a
        :class:`~repro.engine.resilience.FaultInjector` around an
        already-running executor — in process mode the pool keeps its
        workers and shm attachments, the injector just sits in front of
        the fan-out.
        """
        with self._lock:
            self._executor = wrap(self._executor)

    def pool_info(self) -> dict | None:
        """Worker-pool snapshot (None outside process mode)."""
        if self._process_pool is None:
            return None
        return self._process_pool.pool_info()

    def harvest_worker_metrics(self) -> dict | None:
        """Merge the workers' shared-memory metric shards into the
        parent registry (see :class:`~repro.obs.remote.MetricsHarvester`).

        Returns the harvest summary dict, or None outside process mode
        or when remote worker metrics are disabled.
        """
        if self._process_pool is None:
            return None
        return self._process_pool.harvest()

    @property
    def epochs(self) -> tuple[int, ...]:
        """Current per-shard write epochs."""
        with self._lock:
            return tuple(self._epochs)

    def cache_info(self) -> dict:
        """Cache occupancy and hit/miss tallies as one plain dict."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self._cache.capacity,
                "hits": self.stats.cache_hits,
                "misses": self.stats.cache_misses,
                "hit_rate": self.stats.cache_hit_rate,
                "invalidations": self._cache.invalidations,
                "evictions": self._cache.evictions,
                "stale_evictions": self._cache.stale_evictions,
            }

    def clear_cache(self) -> None:
        """Drop all cached results (epochs keep advancing monotonically)."""
        with self._lock:
            self._cache.clear()

    def aggregate_stats(self) -> OpCounter:
        """Engine-level counters merged with every shard's counters."""
        merged = self.stats.snapshot()
        for shard in self._shards:
            merged.merge(shard.stats)
        return merged

    def reset_stats(self) -> None:
        """Zero the engine counter and every shard counter."""
        self.stats.reset()
        for shard in self._shards:
            shard.stats.reset()

    def shard_report(self) -> list[dict]:
        """One row per shard: span, epoch, storage, and op tallies."""
        rows = []
        with self._lock:
            epochs = tuple(self._epochs)
        for span, epoch, shard in zip(self.plan.spans, epochs, self._shards):
            rows.append(
                {
                    "shard": span.index,
                    "span": [span.start, span.stop],
                    "epoch": epoch,
                    "memory_cells": shard.memory_cells(),
                    "node_visits": shard.stats.node_visits,
                    "cell_reads": shard.stats.cell_reads,
                    "cell_writes": shard.stats.cell_writes,
                }
            )
        return rows

    def memory_cells(self) -> int:
        """Stored cells across all shards (the cache is not counted)."""
        return sum(shard.memory_cells() for shard in self._shards)

    def set_degradation(self, mode: str) -> str:
        """Swap the resilience policy's degradation mode at runtime.

        The serving front-end's load shedder flips ``strict`` →
        ``partial`` when admission pressure crosses its watermark and
        back when it subsides, so slow shards stop holding answers
        hostage exactly when capacity is scarce.  Returns the previous
        mode.  The swap happens under the request lock, so an in-flight
        read finishes under the policy it started with and the next
        read sees the new mode.
        """
        if self.policy is None:
            raise ConfigurationError(
                "engine has no resilience policy to degrade"
            )
        from dataclasses import replace

        with self._lock:
            previous = self.policy.degradation
            if mode != previous:
                # replace() re-runs ResiliencePolicy.__post_init__, so an
                # unknown mode raises ConfigurationError here.
                self.policy = replace(self.policy, degradation=mode)
        return previous

    def resilience_info(self) -> dict | None:
        """Policy summary plus live per-shard breaker state (None when
        no policy is attached)."""
        if self.policy is None:
            return None
        with self._lock:
            breakers = [
                {
                    "shard": index,
                    "state": breaker.state,
                    "failure_rate": breaker.failure_rate(),
                }
                for index, breaker in enumerate(self._breakers)
            ]
        return {
            "deadline_seconds": self.policy.deadline_seconds,
            "max_retries": self.policy.max_retries,
            "degradation": self.policy.degradation,
            "breaker_window": self.policy.breaker_window,
            "breakers": breakers,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down; in process mode also stop the worker
        pool and unlink the shared-memory slabs (idempotent)."""
        self._executor.shutdown()
        if self._process_pool is not None and self._process_pool is not self._executor:
            self._process_pool.shutdown()
        if self._store is not None:
            self._store.destroy()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngine(shape={self.shape}, shards={self.plan.count}, "
            f"method={self.method_name!r}, workers={self.workers}, "
            f"cache={self._cache.capacity})"
        )
