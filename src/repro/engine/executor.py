"""Sub-query executors: sequential fallback and thread-pool fan-out.

The engine decomposes every query into independent per-shard sub-queries
and hands the batch to one of these executors.  Both expose the same
two-method surface so the engine never branches on the concurrency mode:

* :class:`SerialExecutor` — runs tasks in the calling thread, in order.
  This is the default and the deterministic baseline: for small shard
  counts the dispatch overhead of a pool exceeds the work it overlaps,
  and a serial run makes every benchmark and test exactly reproducible.
* :class:`ThreadedExecutor` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  wrapper.  Sub-queries touch disjoint shards, so they are safe to run
  concurrently while the engine's lock keeps writers out; numpy releases
  the GIL inside large gathers, which is where the overlap pays.

Failure semantics: ``map`` propagates the first exception a task raises
(a programming error should surface loudly), while ``try_map`` — the
resilience layer's entry point — isolates failures per item and returns
``(result, error)`` outcome pairs so one failing shard can be retried
without discarding its siblings' answers.  The threaded ``try_map``
additionally honours a wall-clock ``timeout``: sub-operations that have
not finished when the budget runs out come back as
:class:`~repro.exceptions.DeadlineExceededError` outcomes (their
threads are abandoned, not killed — Python cannot preempt them — so a
genuinely stuck shard costs one pool thread until it unsticks).

Use :func:`make_executor` to pick by worker count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError, DeadlineExceededError

__all__ = ["SerialExecutor", "ThreadFanout", "ThreadedExecutor", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


def _attempt(fn: Callable[[T], R], item: T) -> tuple:
    """One ``try_map`` outcome: ``(result, None)`` or ``(None, error)``."""
    try:
        return fn(item), None
    except Exception as error:  # noqa: BLE001 — isolated per item by design
        return None, error


class SerialExecutor:
    """In-thread executor: deterministic, zero dispatch overhead."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item in order, in the calling thread."""
        return [fn(item) for item in items]

    def try_map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        timeout: float | None = None,
        clock=None,
    ) -> list[tuple]:
        """Per-item ``(result, error)`` outcomes, in order.

        A raising item never aborts its siblings.  With ``timeout`` and
        an injected ``clock``, items whose turn comes after the budget
        has elapsed are not run at all and report
        :class:`~repro.exceptions.DeadlineExceededError` — the serial
        executor cannot preempt a running task, but it can refuse to
        start the next one.
        """
        deadline = (
            clock.now() + timeout
            if timeout is not None and clock is not None
            else None
        )
        outcomes: list[tuple] = []
        for item in items:
            if deadline is not None and clock.now() >= deadline:
                outcomes.append(
                    (None, DeadlineExceededError(
                        f"serial fan-out budget of {timeout}s exhausted"
                    ))
                )
                continue
            outcomes.append(_attempt(fn, item))
        return outcomes

    def shutdown(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadFanout:
    """Shared thread-pool fan-out surface (``map`` / ``try_map``).

    Subclasses provide ``self.workers`` and ``self._pool``; this mixin
    supplies the ordered fan-out, the per-item isolation, and the
    deadline semantics.  :class:`ThreadedExecutor` runs shard work on
    the pool threads directly; the process executor (see
    ``repro.engine.process``) reuses the same fan-out with pool threads
    that block on worker IPC instead (blocking on a pipe releases the
    GIL, which is the whole point).
    """

    workers: int
    _pool: ThreadPoolExecutor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results keep order.

        A single-item batch — a request whose range resolves to one
        owning shard, the common case under zipf locality — runs inline:
        pool dispatch would cost more than the work it overlaps.
        """
        if len(items) == 1:
            return [fn(items[0])]
        return list(self._pool.map(fn, items))

    def try_map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        timeout: float | None = None,
        clock=None,
    ) -> list[tuple]:
        """Concurrent per-item ``(result, error)`` outcomes, in order.

        ``timeout`` bounds the *total* wall time spent waiting: each
        pending future is waited on for whatever remains of the budget
        (re-measured on the injected ``clock`` when given), and futures
        still running at exhaustion come back as
        :class:`~repro.exceptions.DeadlineExceededError` outcomes.  The
        underlying threads are abandoned to finish on their own — the
        caller must treat the sub-operation as failed either way.
        """
        futures = [self._pool.submit(_attempt, fn, item) for item in items]
        deadline = (
            clock.now() + timeout
            if timeout is not None and clock is not None
            else None
        )
        outcomes: list[tuple] = []
        for future in futures:
            if timeout is None:
                outcomes.append(future.result())
                continue
            remaining = (
                deadline - clock.now() if deadline is not None else timeout
            )
            try:
                outcomes.append(future.result(timeout=max(0.0, remaining)))
            except (FutureTimeoutError, TimeoutError):
                future.cancel()
                outcomes.append(
                    (None, DeadlineExceededError(
                        f"shard sub-operation exceeded the {timeout}s "
                        f"fan-out budget"
                    ))
                )
        return outcomes

    def shutdown(self) -> None:
        """Release the pool's threads (idempotent)."""
        self._pool.shutdown(wait=True)


class ThreadedExecutor(ThreadFanout):
    """Thread-pool executor for fanning sub-queries across shards."""

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ThreadedExecutor needs >= 2 workers, got {workers} "
                f"(use SerialExecutor instead)"
            )
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedExecutor(workers={self.workers})"


def make_executor(workers: int | None) -> SerialExecutor | ThreadedExecutor:
    """Executor for ``workers`` threads; None, 0, or 1 mean sequential."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ThreadedExecutor(workers)
