"""Sub-query executors: sequential fallback and thread-pool fan-out.

The engine decomposes every query into independent per-shard sub-queries
and hands the batch to one of these executors.  Both expose the same
two-method surface so the engine never branches on the concurrency mode:

* :class:`SerialExecutor` — runs tasks in the calling thread, in order.
  This is the default and the deterministic baseline: for small shard
  counts the dispatch overhead of a pool exceeds the work it overlaps,
  and a serial run makes every benchmark and test exactly reproducible.
* :class:`ThreadedExecutor` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  wrapper.  Sub-queries touch disjoint shards, so they are safe to run
  concurrently while the engine's lock keeps writers out; numpy releases
  the GIL inside large gathers, which is where the overlap pays.

Use :func:`make_executor` to pick by worker count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError

__all__ = ["SerialExecutor", "ThreadedExecutor", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """In-thread executor: deterministic, zero dispatch overhead."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item in order, in the calling thread."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Thread-pool executor for fanning sub-queries across shards."""

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ThreadedExecutor needs >= 2 workers, got {workers} "
                f"(use SerialExecutor instead)"
            )
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results keep order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Release the pool's threads (idempotent)."""
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedExecutor(workers={self.workers})"


def make_executor(workers: int | None) -> SerialExecutor | ThreadedExecutor:
    """Executor for ``workers`` threads; None, 0, or 1 mean sequential."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ThreadedExecutor(workers)
