"""Hot-range LRU result cache with per-shard epoch invalidation.

A read-heavy serving workload re-issues the same analytical ranges over
and over (dashboard refreshes probing the same few hot regions), so the
engine memoises finished range sums.  Correctness under writes comes
from *epoch validation* rather than eager invalidation:

* every shard carries a monotonically increasing epoch counter, bumped
  by the engine on each write batch that touches the shard;
* a cached entry records, for every shard its range overlaps, the epoch
  at which the value was computed;
* a lookup re-validates the stored epochs against the current ones —
  any mismatch means some overlapping shard has been written since, and
  the entry is discarded as stale.

Writes therefore cost O(1) cache work no matter how many entries they
invalidate, stale entries can never be served (the invariant
``docs/engine.md`` states precisely), and a write to one shard leaves
cached ranges over the *other* shards perfectly warm — the payoff of
per-shard rather than global epochs.

The cache itself is not thread-safe; the engine serialises access
through its lock (lint rule REP007 enforces this at the AST level).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Sequence

from ..exceptions import ConfigurationError

__all__ = ["EpochLruCache", "MISS"]

#: Sentinel distinguishing "not cached" from a cached falsy value.
MISS = object()

#: How many of the oldest entries an eviction probes for a stale victim
#: before falling back to plain LRU.  Bounding the probe keeps ``put``
#: O(1) at capacity while still preferring dead entries in the common
#: case (stale entries cluster at the cold end — nobody re-reads them,
#: or the read would have discarded them already).
_STALE_SCAN_LIMIT = 8


class EpochLruCache:
    """LRU map from query key to (value, dependent shards, their epochs)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple] = OrderedDict()
        #: Entries discarded because an overlapping shard advanced.
        self.invalidations = 0
        #: Entries discarded to make room (capacity pressure).
        self.evictions = 0
        #: Subset of ``evictions`` where the victim was already stale —
        #: evicting it cost nothing a future lookup could have used.
        self.stale_evictions = 0

    def get(self, key: Hashable, current_epochs: Sequence[int]):
        """The cached value for ``key``, or :data:`MISS`.

        ``current_epochs`` is the engine's live per-shard epoch list; a
        hit requires every dependent shard's stored epoch to match it.
        A stale entry is deleted on sight so it cannot linger at the
        recently-used end of the queue.
        """
        entry = self._entries.get(key)
        if entry is None:
            return MISS
        value, shards, epochs = entry
        if any(current_epochs[s] != e for s, e in zip(shards, epochs)):
            del self._entries[key]
            self.invalidations += 1
            return MISS
        self._entries.move_to_end(key)
        return value

    def put(
        self,
        key: Hashable,
        value,
        shards: Sequence[int],
        current_epochs: Sequence[int],
    ) -> None:
        """Store ``value`` stamped with the epochs of its ``shards``.

        ``current_epochs`` must be the epoch snapshot taken *before* the
        value was computed: if a write slipped in between, the stamp is
        already stale and the very next :meth:`get` discards the entry —
        conservative, never incorrect.

        Under capacity pressure the eviction probes the oldest
        :data:`_STALE_SCAN_LIMIT` entries for one already invalidated by
        a shard write and discards that in preference to a live entry;
        only when every probed entry is still valid does plain LRU
        (oldest first) apply.
        """
        if self.capacity == 0:
            return
        shards = tuple(shards)
        stamped = tuple(current_epochs[s] for s in shards)
        self._entries[key] = (value, shards, stamped)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            victim = self._stale_victim(current_epochs)
            if victim is not None:
                del self._entries[victim]
                self.stale_evictions += 1
            else:
                self._entries.popitem(last=False)
            self.evictions += 1

    def _stale_victim(self, current_epochs: Sequence[int]) -> Hashable | None:
        """Oldest already-stale entry within the probe window, if any."""
        for probed, (key, entry) in enumerate(self._entries.items()):
            if probed >= _STALE_SCAN_LIMIT:
                return None
            _, shards, epochs = entry
            if any(current_epochs[s] != e for s, e in zip(shards, epochs)):
                return key
        return None

    def clear(self) -> None:
        """Drop every entry (epoch counters live in the engine, not here)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpochLruCache(size={len(self._entries)}, "
            f"capacity={self.capacity})"
        )
