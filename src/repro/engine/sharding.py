"""Shard geometry: partitioning a cube along its leading dimension.

The DDC's top-level split already decomposes the cube into independent
regions, and the same observation drives the serving layer: slicing the
*logical* array along dimension 0 yields K fully independent sub-cubes
(every range query decomposes into at most one sub-range per shard, and
every point update lands in exactly one shard).  Keeping the per-shard
structures independent is what makes query decomposition embarrassingly
parallel — no shard ever needs another shard's state.

:class:`ShardPlan` is pure geometry: it owns no structures, only the
slab boundaries, the owner routing, and the global-to-local coordinate
translation.  The engine composes it with any registered
:class:`~repro.methods.base.RangeSumMethod`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Sequence

from ..exceptions import ConfigurationError
from ..geometry import Cell, Shape, normalize_shape

__all__ = ["ShardPlan", "ShardSpan"]


class ShardSpan:
    """One shard's slab of the leading dimension: ``[start, stop)``."""

    __slots__ = ("index", "start", "stop")

    def __init__(self, index: int, start: int, stop: int) -> None:
        self.index = index
        self.start = start
        self.stop = stop

    @property
    def length(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardSpan({self.index}, [{self.start}, {self.stop}))"


class ShardPlan:
    """Contiguous near-equal partition of ``shape[0]`` into K slabs.

    Boundaries are ``floor(i * n / K)``, so slab sizes differ by at most
    one cell and the last shard absorbs the remainder (the "uneven last
    shard" case the equivalence tests pin down with K=7).
    """

    def __init__(self, shape: Sequence[int], shards: int) -> None:
        self.shape: Shape = normalize_shape(shape)
        leading = self.shape[0]
        if shards < 1:
            raise ConfigurationError(f"shard count must be >= 1, got {shards}")
        if shards > leading:
            raise ConfigurationError(
                f"cannot split leading dimension of size {leading} "
                f"into {shards} non-empty shards"
            )
        self.count = shards
        boundaries = [leading * i // shards for i in range(shards + 1)]
        self.spans = [
            ShardSpan(i, boundaries[i], boundaries[i + 1]) for i in range(shards)
        ]
        #: Slab start offsets, for bisect-based owner routing.
        self._starts = [span.start for span in self.spans]

    def owner(self, cell: Cell) -> int:
        """Index of the shard holding ``cell`` (already-normalized)."""
        return bisect_right(self._starts, cell[0]) - 1

    def shard_shape(self, index: int) -> Shape:
        """Logical shape of shard ``index``'s sub-cube."""
        return (self.spans[index].length,) + self.shape[1:]

    def slab(self, index: int) -> slice:
        """Leading-dimension slice selecting shard ``index``'s sub-array."""
        span = self.spans[index]
        return slice(span.start, span.stop)

    def to_local(self, index: int, cell: Cell) -> Cell:
        """Translate a global cell into shard ``index``'s coordinates."""
        return (cell[0] - self.spans[index].start,) + tuple(cell[1:])

    def decompose(
        self, low: Cell, high: Cell
    ) -> Iterator[tuple[int, Cell, Cell]]:
        """Split an inclusive global range into per-shard local sub-ranges.

        Yields ``(shard_index, local_low, local_high)`` for every shard
        the range overlaps; the global answer is the plain sum of the
        per-shard answers because the slabs are disjoint.
        """
        first = self.owner(low)
        last = self.owner(high)
        for index in range(first, last + 1):
            span = self.spans[index]
            local_low = (max(low[0], span.start) - span.start,) + tuple(low[1:])
            local_high = (min(high[0], span.stop - 1) - span.start,) + tuple(
                high[1:]
            )
            yield (index, local_low, local_high)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        slabs = ", ".join(f"[{s.start},{s.stop})" for s in self.spans)
        return f"ShardPlan(shape={self.shape}, slabs={slabs})"
