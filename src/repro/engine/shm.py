"""Shared-memory shard store: per-shard prefix-sum slabs, zero-copy attach.

The process executor (see :mod:`repro.engine.process`) cannot ship the
per-shard tree structures to its workers — pickling a DDC per request
would cost more than the query it parallelises.  Instead every shard's
payload is flattened into the one representation the paper's family of
structures shares: a contiguous, C-ordered **prefix-sum slab** (HAMS97),
living in a :mod:`multiprocessing.shared_memory` segment.  That buys:

* **zero-copy attach** — workers map the segment by name and serve
  queries straight off the parent's pages, no serialisation ever;
* **O(2^d) reads** — a range sum is an inclusion-exclusion gather of at
  most ``2^d`` corners (one fancy-index per sub-query batch), which is
  the cache-conscious flat layout Pibiri & Venturini identify as the
  dominant prefix-sum lever;
* **compact write deltas** — a point update is a suffix-rectangle
  ``+=`` on the slab, so a delta ships as just ``(cell, delta)``;
* **crash-proof state** — the slab outlives the worker process, so a
  respawned worker reattaches and answers exactly, with no rebuild.

:class:`ShardSlabStore` is the owner-side registry (allocation, bulk
load, direct reads for the fallback degradation path, teardown); the
module-level :func:`slab_range_sum_many` / :func:`slab_apply_deltas`
helpers are the shared math, called on the parent's views here and on
the workers' attached views in ``process.py``.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from .. import geometry
from ..core.slab_tree import slab_range_many
from ..exceptions import ConfigurationError
from ..shmutil import attach_segment
from .sharding import ShardPlan

__all__ = [
    "HEADER_APPLIED",
    "HEADER_SEQ",
    "ShardSlabStore",
    "attach_slab",
    "build_prefix",
    "get_read_kernel",
    "slab_range_sum_many",
    "slab_range_sum_many_vector",
    "slab_apply_deltas",
]

#: One manifest entry: ``(segment name, slab shape, numpy dtype string)``.
#: Plain tuples so the whole manifest pickles cheaply to spawned workers.
SlabManifest = tuple[str, tuple[int, ...], str]

_SEGMENT_IDS = itertools.count()

#: Each segment opens with a small int64 header ahead of the slab:
#: ``seq`` is a classic single-writer seqlock counter (odd while the
#: owning worker is mid-apply, bumped to even after), ``applied`` counts
#: delta batches folded into the slab so far.  Together they let the
#: parent read the slab without ever blocking on the worker: an even,
#: unchanged ``seq`` brackets a consistent gather, and ``applied`` tells
#: the parent which of its posted-but-unacknowledged batches the gather
#: already includes.  (Relies on aligned 8-byte stores being atomic —
#: true on every platform CPython's shared_memory supports.)
HEADER_SEQ = 0
HEADER_APPLIED = 1
_HEADER_COUNT = 2
_HEADER_DTYPE = np.dtype(np.int64)
_HEADER_NBYTES = _HEADER_COUNT * _HEADER_DTYPE.itemsize


def build_prefix(values: np.ndarray, out: np.ndarray) -> None:
    """Fill ``out`` with the inclusive prefix sums of ``values`` in place.

    Same math as ``PrefixSumCube.from_array``: one in-place ``cumsum``
    per axis turns the raw slab into the HAMS97 prefix array.
    """
    np.copyto(out, values, casting="unsafe")
    for axis in range(out.ndim):
        np.cumsum(out, axis=axis, out=out)


def slab_range_sum_many(slab: np.ndarray, ranges: Sequence[tuple]) -> list:
    """Answer local range sums against a prefix slab, one fancy gather.

    Every query contributes its non-empty inclusion-exclusion corners to
    a single flattened index array, so the whole batch costs one numpy
    gather regardless of batch size.  Coordinates are trusted: callers
    (the engine's shard decomposition) have already normalised them to
    the slab's local space.  Returns plain Python numbers so replies
    pickle minimally across the IPC pipe.
    """
    signs_per_query: list[list[int]] = []
    corners: list[tuple] = []
    for low, high in ranges:
        signs: list[int] = []
        for sign, corner in geometry.inclusion_exclusion_corners(
            tuple(low), tuple(high)
        ):
            if corner is None:
                continue
            signs.append(sign)
            corners.append(corner)
        signs_per_query.append(signs)
    if corners:
        index = tuple(
            np.fromiter(
                (corner[axis] for corner in corners),
                dtype=np.intp,
                count=len(corners),
            )
            for axis in range(slab.ndim)
        )
        gathered = slab[index]
    zero = slab.dtype.type(0)
    out: list = []
    position = 0
    for signs in signs_per_query:
        total = zero
        for sign in signs:
            value = gathered[position]
            position += 1
            total = total + value if sign > 0 else total - value
        out.append(total.item())
    return out


def slab_range_sum_many_vector(slab: np.ndarray, ranges: Sequence[tuple]) -> list:
    """Branch-free batched read kernel: the slab-tree corner gather.

    Same contract as :func:`slab_range_sum_many`, but the per-query
    Python corner construction is replaced by the vectorised
    inclusion-exclusion expansion from :mod:`repro.core.slab_tree` —
    one corner tensor, one gather, one signed reduction for the whole
    batch.  Single queries (the engine's per-event read path) take a
    pure-integer fast path that never builds an array at all.
    """
    count = len(ranges)
    if count == 1:
        low, high = ranges[0]
        return [_range_sum_single(slab, low, high)]
    dims = slab.ndim
    lows = np.empty((count, dims), dtype=np.int64)
    highs = np.empty((count, dims), dtype=np.int64)
    for position, (low, high) in enumerate(ranges):
        lows[position] = low
        highs[position] = high
    return slab_range_many(slab, lows, highs).tolist()


def _range_sum_single(slab: np.ndarray, low: tuple, high: tuple) -> object:
    """One inclusion-exclusion read with integer-only corner arithmetic.

    Corner values come out through ``ndarray.item`` on a logical
    (C-order) flat index — one Python number per read, no intermediate
    array scalars — so the engine's per-event miss path stays cheap.
    """
    dims = slab.ndim
    shape = slab.shape
    stride = 1
    strides = [1] * dims
    for axis in range(dims - 1, -1, -1):
        strides[axis] = stride
        stride *= shape[axis]
    item = slab.item
    total = 0
    for mask in range(1 << dims):
        index = 0
        sign = 1
        valid = True
        for axis in range(dims):
            if (mask >> axis) & 1:
                coordinate = low[axis] - 1
                if coordinate < 0:
                    valid = False
                    break
                sign = -sign
            else:
                coordinate = high[axis]
            index += coordinate * strides[axis]
        if not valid:
            continue
        if sign > 0:
            total += item(index)
        else:
            total -= item(index)
    return total


#: Read-kernel registry: ``scalar`` is the original per-query corner
#: construction; ``vector`` is the slab-tree batched corner gather.  A
#: method class can nominate its kernel via a ``slab_kernel`` class
#: attribute (see :class:`~repro.methods.vector.VectorSlabCube`).
_READ_KERNELS = {
    "scalar": slab_range_sum_many,
    "vector": slab_range_sum_many_vector,
}


def get_read_kernel(name: str):
    """Resolve a slab read kernel by name (``scalar`` / ``vector``)."""
    try:
        return _READ_KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(_READ_KERNELS))
        raise ConfigurationError(
            f"unknown slab read kernel {name!r}; known kernels: {known}"
        ) from None


def slab_apply_deltas(slab: np.ndarray, updates: Sequence[tuple]) -> None:
    """Apply point-update deltas to a prefix slab in place.

    A point update at ``cell`` adds its delta to every prefix covering
    the cell — the suffix rectangle ``slab[c0:, c1:, ...]`` — which is
    exactly ``PrefixSumCube.add`` vectorised over the shared mapping.
    """
    for cell, delta in updates:
        region = tuple(slice(int(coordinate), None) for coordinate in cell)
        slab[region] += delta


def attach_slab(manifest: SlabManifest) -> tuple:
    """Map an existing segment by name; returns ``(segment, header, view)``.

    Worker-side entry point.  The attach is untracked (see
    :func:`repro.shmutil.attach_segment`): the owner process unlinks
    segments deterministically in :meth:`ShardSlabStore.destroy`, so the
    worker's resource tracker must not also claim the name.
    """
    name, shape, dtype_str = manifest
    segment = attach_segment(name)
    header = np.ndarray(_HEADER_COUNT, dtype=_HEADER_DTYPE, buffer=segment.buf)
    view = np.ndarray(
        shape,
        dtype=np.dtype(dtype_str),
        buffer=segment.buf,
        offset=_HEADER_NBYTES,
    )
    return segment, header, view


class ShardSlabStore:
    """Owner-side registry of per-shard prefix-sum slabs in shared memory.

    Built once at plan time: one segment per shard, shaped by the plan's
    leading-dimension slab, zero-filled (an all-zero array has an
    all-zero prefix).  The store is the single owner — workers attach
    read-write views by name but never allocate or unlink.

    Args:
        plan: the engine's shard plan; one segment per shard span.
        dtype: slab value dtype (must support exact add/subtract).
        kernel: read-kernel name (``"scalar"`` or ``"vector"``); the
            engine derives it from the shard method's ``slab_kernel``
            class attribute so slab-native methods get the batched
            corner gather in workers and on the owner side alike.
    """

    def __init__(self, plan: ShardPlan, dtype=np.int64, kernel: str = "scalar") -> None:
        self.plan = plan
        self.kernel_name = kernel
        self._kernel = get_read_kernel(kernel)
        self.dtype = np.dtype(dtype)
        self._segments: list[shared_memory.SharedMemory] = []
        self._headers: list[np.ndarray] = []
        self._views: list[np.ndarray] = []
        self._closed = False
        token = f"{os.getpid():x}-{next(_SEGMENT_IDS):x}"
        try:
            for index in range(plan.count):
                shape = plan.shard_shape(index)
                nbytes = int(np.prod(shape)) * self.dtype.itemsize
                segment = shared_memory.SharedMemory(
                    name=f"repro-slab-{token}-{index}",
                    create=True,
                    size=_HEADER_NBYTES + max(1, nbytes),
                )
                header = np.ndarray(
                    _HEADER_COUNT, dtype=_HEADER_DTYPE, buffer=segment.buf
                )
                header[...] = 0
                view = np.ndarray(
                    shape,
                    dtype=self.dtype,
                    buffer=segment.buf,
                    offset=_HEADER_NBYTES,
                )
                view[...] = 0
                self._segments.append(segment)
                self._headers.append(header)
                self._views.append(view)
        except BaseException:
            self.destroy()
            raise

    @property
    def count(self) -> int:
        """Number of shard slabs."""
        return self.plan.count

    def manifest(self) -> list[SlabManifest]:
        """Picklable attach instructions, one entry per shard."""
        return [
            (segment.name, tuple(view.shape), view.dtype.str)
            for segment, view in zip(self._segments, self._views)
        ]

    def view(self, index: int) -> np.ndarray:
        """The owner's live view of shard ``index``'s slab."""
        return self._views[index]

    def header(self, index: int) -> np.ndarray:
        """The owner's live view of shard ``index``'s seqlock header
        (``[HEADER_SEQ, HEADER_APPLIED]``)."""
        return self._headers[index]

    def load_array(self, array: np.ndarray) -> None:
        """Recompute every slab from ``array`` (bulk load, in place).

        Attached workers observe the new contents immediately — the
        pages are shared — so callers must bump shard epochs themselves
        to invalidate any cached results.
        """
        array = np.asarray(array)
        for index in range(self.plan.count):
            build_prefix(array[self.plan.slab(index)], self._views[index])

    def range_sum(self, index: int, low: tuple, high: tuple):
        """Direct (no-IPC) local range sum — the fallback read path."""
        return self._kernel(self._views[index], [(low, high)])[0]

    def range_sum_many(self, index: int, ranges: Sequence[tuple]) -> list:
        """Direct (no-IPC) batch of local range sums."""
        return self._kernel(self._views[index], ranges)

    def apply_deltas(self, index: int, updates: Sequence[tuple]) -> None:
        """Direct (no-IPC) delta application — owner-side write path."""
        slab_apply_deltas(self._views[index], updates)

    def memory_cells(self) -> int:
        """Total cells stored across all slabs."""
        return sum(int(view.size) for view in self._views)

    def destroy(self) -> None:
        """Close and unlink every segment (idempotent).

        Workers must be stopped (or tolerant of a vanished mapping)
        before the owner destroys the store; the engine's ``close()``
        shuts the pool down first.
        """
        if self._closed:
            return
        self._closed = True
        self._views = []
        self._headers = []
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSlabStore(shards={self.plan.count}, dtype={self.dtype}, "
            f"cells={0 if self._closed else self.memory_cells()})"
        )
