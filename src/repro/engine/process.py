"""Process-parallel shard fan-out over the shared-memory slab store.

The GIL caps the threaded executor at ~1.9x no matter how many workers
because every DDC descent is pure-python bytecode.  This module moves
shard serving into a **persistent pool of worker processes**:

* each worker owns a fixed subset of shards (``shard % workers``) and
  attaches their prefix-sum slabs from the
  :class:`~repro.engine.shm.ShardSlabStore` at startup — zero-copy,
  built once at plan time;
* the parent keeps the engine's ``map`` / ``try_map`` contract by
  reusing the thread-pool fan-out (:class:`~.executor.ThreadFanout`):
  each pool thread blocks on its worker's pipe, releasing the GIL, so
  ``ResiliencePolicy`` deadlines, retries, circuit breakers, and the
  ``FaultInjector`` compose completely unchanged;
* writes ship as compact ``(cell, delta)`` tuples over the owning
  worker's pipe and are applied as suffix rectangles on the shared
  slab — the worker is the single writer for its shards, so deltas
  serialise without locks.  Shipments are **buffered and pipelined**:
  deltas accumulate parent-side and go out
  :data:`~ProcessExecutor.ship_threshold` at a time (one worker
  wake-up per batch instead of per write), and the ack is collected
  lazily by the next operation that touches the lane
  (:meth:`ProcessExecutor.fence` / :meth:`ProcessExecutor.call` /
  :meth:`ProcessExecutor.flush`), hiding the worker's wake-up latency
  behind the parent's own work;
* reads are **zero-copy gathers on the parent's own mapping** of the
  same slab and never wait for the worker: each shard's segment opens
  with a single-writer seqlock (see :mod:`repro.engine.shm`) that
  detects a torn gather, and the parent folds its own
  posted-but-unapplied deltas back into the result from a per-shard
  ledger — exact, because the parent is the only poster.  The gather
  is C-level numpy that releases the GIL, and a pipe round-trip costs
  more than the gather itself.  ``ipc_reads=True`` routes reads
  through the owning worker instead — the mode a remote shard store
  would use, and the mode the crash-semantics tests exercise.  State
  lives in the shared slabs, **not** in the workers, so a SIGKILLed
  worker costs exactly one failed sub-operation: the next call
  respawns the process, which reattaches and answers exactly.  Even
  pipelined writes in flight survive the kill — the parent's delta
  ledger holds every posted-but-unacknowledged batch, and once the
  worker is dead the parent (now the shard's only writer) replays the
  unapplied suffix straight into the slab.  The sole unrecoverable
  window is a kill *mid-apply*: the seqlock's odd count marks the
  slab as holding a torn batch, and that loss surfaces as
  :class:`~repro.exceptions.WorkerCrashedError` instead of serving
  wrong sums.

Failure semantics: a dead pipe surfaces as
:class:`~repro.exceptions.WorkerCrashedError`, which the engine's
resilient fan-out treats like any other shard failure — retried within
the deadline budget, recorded by the shard's breaker, degraded per
policy.  Worker-side *operation* errors (a malformed op) come back as
:class:`~repro.exceptions.StructureError` replies without killing the
worker — they indicate a library bug, not a flaky shard.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from .. import geometry
from ..exceptions import ConfigurationError, StructureError, WorkerCrashedError
from ..methods.base import RangeSumMethod
from ..obs import NULL_OBS
from ..obs.clock import MonotonicClock
from ..obs.metrics import NULL_INSTRUMENT
from ..obs.remote import (
    MetricsHarvester,
    WorkerMetricsShard,
    graft_spans,
    span_payload,
    worker_metrics_layout,
)
from ..obs.trace import Span
from . import shm
from .executor import ThreadFanout

__all__ = ["ProcessExecutor", "ShmShardReplica"]


def _pool_worker_main(
    worker_index: int,
    manifests: list,
    owned: tuple,
    conn,
    kernel: str = "scalar",
    telemetry=None,
) -> None:
    """Serve slab operations for this worker's shards (child process).

    One blocking request/reply loop per worker: the parent serialises
    access per lane, so no concurrency exists inside a worker and the
    slab math needs no locks.  Requests are ``(op, index, payload)`` or
    ``(op, index, payload, trace_ctx)`` when the parent propagates a
    trace context; replies are ``("ok", value)``, ``("ok", value,
    spans)`` for traced ops, or ``("error", detail)``.  An unreadable
    pipe means the parent is gone and the loop exits.

    ``telemetry`` is the harvester's ``(layout, segment name)`` pair:
    when present the worker attaches its shared-memory metrics shard
    (see :mod:`repro.obs.remote`) and publishes gather/apply timings
    and op tallies lock-free — the parent harvests them on demand, and
    they survive this process being SIGKILLed.
    """
    read_kernel = shm.get_read_kernel(kernel)
    clock = MonotonicClock()
    shard_metrics = None
    gather_seconds = apply_seconds = apply_batch = None
    op_tallies = {}
    if telemetry is not None:
        layout, segment_name = telemetry
        try:
            shard_metrics = WorkerMetricsShard(layout, segment_name)
        except (FileNotFoundError, OSError):  # pragma: no cover - races teardown
            shard_metrics = None
    if shard_metrics is not None:
        gather_seconds = shard_metrics.histogram("repro_worker_gather_seconds")
        apply_seconds = shard_metrics.histogram("repro_worker_apply_seconds")
        apply_batch = shard_metrics.histogram("repro_worker_apply_batch_updates")
        op_tallies = {
            op: shard_metrics.counter("repro_worker_ops_total", op=op)
            for op in ("query_many", "apply", "ping")
        }
        from ..core.slab_tree import kernel_backend

        shard_metrics.gauge("repro_worker_kernel_numba").set(
            1.0 if kernel == "vector" and kernel_backend() == "numba" else 0.0
        )
    segments = {}
    headers = {}
    views = {}
    for index in owned:
        segment, header, view = shm.attach_slab(manifests[index])
        segments[index] = segment
        headers[index] = header
        views[index] = view
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                conn.send(("ok", None))
                break
            trace_ctx = message[3] if len(message) > 3 else None
            timed = shard_metrics is not None or trace_ctx is not None
            spans = None
            try:
                if op == "query_many":
                    index, ranges = message[1], message[2]
                    op_start = clock.now() if timed else 0.0
                    reply = read_kernel(views[index], ranges)
                    elapsed = clock.now() - op_start if timed else 0.0
                    if shard_metrics is not None:
                        gather_seconds.observe(elapsed)
                        op_tallies["query_many"].inc()
                    if trace_ctx is not None:
                        spans = [
                            span_payload(
                                "worker.query_many",
                                0.0,
                                elapsed,
                                {
                                    "worker": worker_index,
                                    "shard": index,
                                    "queries": len(ranges),
                                },
                                [
                                    span_payload(
                                        "worker.gather",
                                        0.0,
                                        elapsed,
                                        {"kernel": kernel},
                                    )
                                ],
                            )
                        ]
                elif op == "apply":
                    index, updates = message[1], message[2]
                    op_start = clock.now() if timed else 0.0
                    # Single-writer seqlock: odd seq brackets the
                    # in-place suffix adds so the parent's zero-copy
                    # readers can detect (and retry around) a torn
                    # gather; ``applied`` tells them which posted
                    # batches the slab already includes.
                    header = headers[index]
                    header[shm.HEADER_SEQ] += 1
                    shm.slab_apply_deltas(views[index], updates)
                    header[shm.HEADER_APPLIED] += 1
                    header[shm.HEADER_SEQ] += 1
                    reply = len(updates)
                    elapsed = clock.now() - op_start if timed else 0.0
                    if shard_metrics is not None:
                        apply_seconds.observe(elapsed)
                        apply_batch.observe(float(len(updates)))
                        op_tallies["apply"].inc()
                    if trace_ctx is not None:
                        spans = [
                            span_payload(
                                "worker.apply",
                                0.0,
                                elapsed,
                                {
                                    "worker": worker_index,
                                    "shard": index,
                                    "updates": len(updates),
                                },
                            )
                        ]
                elif op == "ping":
                    reply = worker_index
                    if shard_metrics is not None:
                        op_tallies["ping"].inc()
                else:
                    raise ConfigurationError(f"unknown worker op {op!r}")
                conn.send(("ok", reply, spans) if spans else ("ok", reply))
            except Exception as error:  # noqa: BLE001 - reported to parent
                conn.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        if shard_metrics is not None:
            shard_metrics.close()
        for segment in segments.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


def _fold_pending(values: list, queries: Sequence[tuple], batches) -> list:
    """Add the contribution of deltas that have not reached the slab.

    A point delta at ``cell`` contributes to a range sum exactly when
    the cell lies inside the query box, so the correction is O(pending
    deltas) per query — trivial next to a fence's worth of waiting.
    ``batches`` is an iterable of update lists (ledger entries and/or
    the parent-side buffer).
    """
    for position, (low, high) in enumerate(queries):
        extra = 0
        for updates in batches:
            for cell, delta in updates:
                inside = True
                for axis, coordinate in enumerate(cell):
                    if not low[axis] <= coordinate <= high[axis]:
                        inside = False
                        break
                if inside:
                    extra += delta
        if extra:
            values[position] += extra
    return values


class _Lane:
    """One worker process plus its command pipe.

    All mutable fields are guarded by the per-lane ``_lock``: the
    parent's fan-out threads serialise on it per call, so a lane sees
    at most one in-flight request and respawn/kill never races a
    round-trip.
    """

    __slots__ = (
        "worker_index", "owned", "process", "conn", "restarts", "pending",
        "_lock",
    )

    def __init__(self, worker_index: int, owned: tuple) -> None:
        self.worker_index = worker_index
        self.owned = owned
        self.process = None
        self.conn = None
        self.restarts = 0
        #: Pipelined sends whose acks have not been collected yet.
        self.pending = 0
        self._lock = threading.Lock()


class ProcessExecutor(ThreadFanout):
    """Persistent worker-pool executor with warm shard replicas.

    Implements the same ``map`` / ``try_map`` / ``shutdown`` surface as
    the in-process executors (via :class:`~.executor.ThreadFanout`), so
    the engine — and everything layered on it — never branches on the
    concurrency mode.  Additionally exposes :meth:`call` (one IPC
    round-trip, used by :class:`ShmShardReplica`), :meth:`kill_worker`
    (the chaos harness's SIGKILL hook), and :meth:`pool_info`.

    Args:
        store: the engine's shared-memory slab store.
        workers: worker processes; ``None``/0 picks
            ``min(shards, cpu_count)``, and the pool never exceeds the
            shard count (an idle worker would own nothing).
        obs: optional observability facade — feeds the IPC round-trip
            histogram, the worker-restart counter, and pool gauges.
        start_method: multiprocessing start method; default prefers
            ``fork`` (instant start, inherited attachments) and falls
            back to the platform default.
        poll_interval: how often a blocked round-trip re-checks worker
            liveness, in seconds.
        ipc_reads: when True, queries are routed through the owning
            worker like writes are.  The default (False) serves reads
            as zero-copy gathers on the parent's own mapping of the
            slab — the gather is C-level numpy that releases the GIL,
            so the thread fan-out genuinely parallelises it, and no
            read ever pays a pipe round-trip.  IPC reads exist for
            crash-semantics tests and as the mode a remote shard store
            would use; one round-trip costs more than a small gather,
            so they lose on latency by design.
    """

    #: Max pipelined (unacknowledged) writes per lane before a
    #: :meth:`post` self-fences — bounds pipe growth on write bursts.
    pipeline_window = 64

    #: Buffered deltas per shard before :meth:`write` ships them to the
    #: owning worker in one message.  Shipping wakes the worker — on a
    #: busy box that preempts the parent for a full scheduling quantum
    #: — so the batch size trades one wake-up against a slightly longer
    #: ledger for readers to fold.
    ship_threshold = 16

    def __init__(
        self,
        store: shm.ShardSlabStore,
        workers: int | None = None,
        obs=None,
        start_method: str | None = None,
        poll_interval: float = 0.05,
        ipc_reads: bool = False,
    ) -> None:
        if store.count < 1:
            raise ConfigurationError("ProcessExecutor needs at least one shard")
        if workers is None or workers <= 0:
            workers = min(store.count, os.cpu_count() or 1)
        self.workers = max(1, min(workers, store.count))
        self.ipc_reads = bool(ipc_reads)
        self.obs = obs if obs is not None else NULL_OBS
        self.store = store
        self._manifests = store.manifest()
        self._poll_interval = poll_interval
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._lanes = [
            _Lane(index, tuple(range(index, store.count, self.workers)))
            for index in range(self.workers)
        ]
        #: Per-shard ledger of posted-but-unapplied delta batches, as
        #: ``(batch number, updates)`` in posting order, plus the
        #: per-shard posted-batch counter.  The worker's ``applied``
        #: header counts the same batches from the other side, which is
        #: what lets :meth:`read_many` correct a gather without waiting.
        self._ledgers = [deque() for _ in range(store.count)]
        self._posted = [0] * store.count
        #: Per-shard deltas not yet shipped to the owning worker.  They
        #: never left the parent, so a worker crash cannot lose them —
        #: the respawned worker receives them with the next shipment.
        self._buffers: list[list] = [[] for _ in range(store.count)]
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, self.workers), thread_name_prefix="repro-ipc"
        )
        #: Per-worker telemetry segments + parent-side merge state.  The
        #: harvester owns the segments (workers only attach), so a
        #: SIGKILLed worker's last-published slots stay harvestable and
        #: its respawn resumes the same slots.
        self._harvester = None
        if self.obs.enabled and getattr(self.obs, "remote_worker_metrics", False):
            self._harvester = MetricsHarvester(worker_metrics_layout(), self.workers)
        self._register_instruments()
        for lane in self._lanes:
            with lane._lock:
                self._locked_spawn(lane, initial=True)

    def _register_instruments(self) -> None:
        """Pre-create the pool's metric families.

        Routed through the same ``obs.enabled`` predicate the hot paths
        use: with ``NULL_OBS`` every ``_obs_*`` attribute is the shared
        :data:`~repro.obs.metrics.NULL_INSTRUMENT`, so disabled mode
        allocates no families at all (instrumented call sites keep
        their shape and no-op).
        """
        if not self.obs.enabled:
            self._obs_ipc_seconds = NULL_INSTRUMENT
            self._obs_restarts = NULL_INSTRUMENT
            self._obs_pool_workers = NULL_INSTRUMENT
            self._obs_pool_alive = NULL_INSTRUMENT
            self._obs_gather_by_worker = [NULL_INSTRUMENT] * self.workers
            self._obs_seqlock_rounds_by_worker = [NULL_INSTRUMENT] * self.workers
            self._obs_seqlock_retries_by_worker = [NULL_INSTRUMENT] * self.workers
            return
        metrics = self.obs.metrics
        self._obs_ipc_seconds = metrics.histogram(
            "repro_engine_ipc_seconds",
            "Round-trip latency of one worker IPC call, per op.",
            labels=("op",),
        )
        self._obs_restarts = metrics.counter(
            "repro_engine_worker_restarts_total",
            "Worker processes respawned after dying mid-service.",
            labels=("worker",),
        )
        self._obs_pool_workers = metrics.gauge(
            "repro_engine_pool_workers",
            "Worker processes in the shard pool.",
        )
        self._obs_pool_alive = metrics.gauge(
            "repro_engine_pool_alive_workers",
            "Shard-pool workers currently alive.",
        )
        self._obs_pool_workers.set(self.workers)
        self._obs_pool_alive.set(self.workers)
        # Shared with the harvester's worker-side observations: in
        # direct-read mode the parent executes the gather on behalf of
        # the owning lane, so both sides feed one family keyed by the
        # ``worker`` label.  Children are resolved per lane up front to
        # keep the zero-copy read path free of per-call dict building.
        gather = metrics.histogram(
            "repro_worker_gather_seconds",
            "Slab read-kernel gather latency inside pool workers",
            labels=("worker",),
        )
        rounds = metrics.histogram(
            "repro_worker_seqlock_retry_rounds",
            "Torn seqlock gather attempts per zero-copy batch read, "
            "by owning worker.",
            labels=("worker",),
            buckets=(1.0, 2.0, 3.0, 4.0),
        )
        retries = metrics.counter(
            "repro_worker_seqlock_retries_total",
            "Zero-copy gathers retried because an apply tore the seqlock.",
            labels=("worker",),
        )
        workers = [str(index) for index in range(self.workers)]
        self._obs_gather_by_worker = [gather.labels(worker=w) for w in workers]
        self._obs_seqlock_rounds_by_worker = [rounds.labels(worker=w) for w in workers]
        self._obs_seqlock_retries_by_worker = [
            retries.labels(worker=w) for w in workers
        ]

    # ------------------------------------------------------------------
    # Lane lifecycle (every helper runs with the lane's lock held)
    # ------------------------------------------------------------------

    def _locked_spawn(self, lane: _Lane, initial: bool = False) -> None:
        """(Re)start ``lane``'s worker; caller holds the lane lock.

        The parent closes its copy of the child end immediately so a
        dead worker's pipe reads EOF instead of blocking forever.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        telemetry = (
            self._harvester.worker_telemetry(lane.worker_index)
            if self._harvester is not None
            else None
        )
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                lane.worker_index,
                self._manifests,
                lane.owned,
                child_conn,
                self.store.kernel_name,
                telemetry,
            ),
            daemon=True,
            name=f"repro-shard-worker-{lane.worker_index}",
        )
        process.start()
        child_conn.close()
        lane.process = process
        lane.conn = parent_conn
        if not initial:
            lane.restarts += 1
            self._obs_restarts.labels(worker=str(lane.worker_index)).inc()

    def _locked_mark_dead(self, lane: _Lane) -> None:
        """Reap a crashed worker; caller holds the lane lock."""
        if lane.conn is not None:
            try:
                lane.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            lane.conn = None
        if lane.process is not None:
            lane.process.join(timeout=1.0)
            lane.process = None

    def _locked_receive(self, lane: _Lane) -> tuple:
        """Next reply on ``lane``'s pipe; caller holds the lane lock.

        Polls in small increments so a worker that died without closing
        the pipe (should not happen, but belt and braces) still fails
        the call instead of hanging it.
        """
        while True:
            if lane.conn.poll(self._poll_interval):
                return lane.conn.recv()
            if lane.process is None or not lane.process.is_alive():
                raise EOFError(f"worker {lane.worker_index} exited mid-call")

    def _locked_drain(self, lane: _Lane) -> None:
        """Collect outstanding pipelined acks; caller holds the lane lock.

        A dead pipe here hands recovery to :meth:`_locked_abandon`: the
        parent replays every posted-but-unapplied batch from its ledger
        into the slab, so the death is only surfaced (as
        :class:`~repro.exceptions.WorkerCrashedError`, on this fencing
        operation — the pipeline window is what defers the report) when
        the worker died mid-apply and left a torn batch.
        """
        while lane.pending:
            try:
                message = self._locked_receive(lane)
                status, reply = message[0], message[1]
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
                lost = self._locked_abandon(lane)
                self._locked_mark_dead(lane)
                if lost:
                    raise WorkerCrashedError(
                        f"worker {lane.worker_index} died mid-apply; "
                        f"{lost} delta batch(es) torn beyond replay"
                    ) from error
                # Every outstanding batch was replayed into the slab by
                # the abandon — the fence this drain was serving is
                # semantically satisfied, so the death stays silent
                # until the next operation respawns the lane.
                return
            lane.pending -= 1
            if status != "ok":
                raise StructureError(
                    f"pipelined write on worker {lane.worker_index} "
                    f"failed: {reply}"
                )

    def _locked_abandon(self, lane: _Lane) -> int:
        """Reconcile the write ledgers after losing ``lane`` mid-flight;
        caller holds the lane lock.  Returns the number of delta
        batches that could *not* be recovered.

        Each owned shard's ``applied`` header is ground truth for what
        reached the slab, and the dead worker was the shard's only
        writer — so the parent now folds the posted-but-unapplied
        ledger suffix into the slab itself, making recovery **exact**
        whenever the seq header is even.  A seq left odd means the
        worker died *mid-apply*: the slab holds a torn batch, replay
        cannot be trusted, and every outstanding batch for that shard
        counts as lost (the seq is bumped even so zero-copy readers
        stop treating the slab as in-flux; callers surface the loss as
        :class:`~repro.exceptions.WorkerCrashedError`).
        """
        lane.pending = 0
        lost = 0
        for index in lane.owned:
            header = self.store.header(index)
            ledger = self._ledgers[index]
            applied = int(header[shm.HEADER_APPLIED])
            if int(header[shm.HEADER_SEQ]) & 1:
                header[shm.HEADER_SEQ] += 1
                lost += sum(1 for number, _ in ledger if number > applied)
                self._posted[index] = applied
            elif applied < self._posted[index]:
                # Replay under the same seqlock discipline the worker
                # used, so concurrent zero-copy readers retry around it.
                header[shm.HEADER_SEQ] += 1
                for number, payload in ledger:
                    if number > applied:
                        shm.slab_apply_deltas(self.store.view(index), payload)
                        applied += 1
                header[shm.HEADER_APPLIED] = applied
                header[shm.HEADER_SEQ] += 1
                self._posted[index] = applied
            ledger.clear()
        return lost

    def _locked_respawn_if_dead(self, lane: _Lane) -> None:
        """Respawn a dead ``lane``; caller holds the lane lock.

        Silent when every outstanding write could be recovered (the
        slab plus the parent's ledger replay hold the exact state, so
        the fresh worker answers exactly), loud when the worker died
        mid-apply — the torn batch cannot be replayed, and pretending
        otherwise would serve wrong sums.
        """
        if lane.process is not None and lane.process.is_alive():
            return
        lost = self._locked_abandon(lane)
        self._locked_mark_dead(lane)
        self._locked_spawn(lane)
        if lost:
            raise WorkerCrashedError(
                f"worker {lane.worker_index} died mid-apply; "
                f"{lost} delta batch(es) torn beyond replay"
            )

    # ------------------------------------------------------------------
    # IPC entry points
    # ------------------------------------------------------------------

    def lane_of(self, shard_index: int) -> int:
        """Worker index owning ``shard_index``."""
        return shard_index % self.workers

    def map(self, fn, items):
        """Fan ``fn`` out over ``items``.

        In direct-read mode each sub-query is a fence plus one C-level
        slab gather — a few microseconds — so thread dispatch (two
        orders of magnitude more) is pure overhead and the fan-out runs
        inline.  With ``ipc_reads`` each item blocks on a worker pipe
        releasing the GIL, which is exactly what the thread pool is
        for.
        """
        if not self.ipc_reads:
            return [fn(item) for item in items]
        return super().map(fn, items)

    def call(self, shard_index: int, op: str, payload):
        """One round-trip to the worker owning ``shard_index``.

        A dead lane is respawned *before* the attempt — the slab store
        holds the state, so a fresh worker answers exactly — and a lane
        that dies *during* the attempt surfaces as
        :class:`~repro.exceptions.WorkerCrashedError` for the
        resilience layer to retry (by which point the next attempt's
        respawn has clean state to serve from).

        Pipelined write acks queued ahead of this call are collected
        *behind* the send: the pipe is FIFO, so the worker applies
        every posted delta before answering, and the fence plus the
        operation cost one blocking round-trip instead of two.

        When a traced span is open on the calling thread, its
        ``(trace_id, span_id)`` context rides along as a fourth message
        element; the worker's ack then carries its own spans, which are
        re-based onto this side's timeline (the send timestamp) and
        grafted under the calling span — one trace tree across the
        process boundary.
        """
        lane = self._lanes[shard_index % self.workers]
        obs = self.obs
        enabled = obs.enabled
        start = obs.clock.now() if enabled else 0.0
        trace_ctx = obs.tracer.current_context() if enabled else None
        with lane._lock:
            self._locked_respawn_if_dead(lane)
            try:
                if trace_ctx is not None:
                    lane.conn.send((op, shard_index, payload, trace_ctx))
                else:
                    lane.conn.send((op, shard_index, payload))
                self._locked_drain(lane)
                message = self._locked_receive(lane)
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
                self._locked_abandon(lane)
                self._locked_mark_dead(lane)
                raise WorkerCrashedError(
                    f"worker {lane.worker_index} died serving shard "
                    f"{shard_index} mid-{op}"
                ) from error
        status, reply = message[0], message[1]
        if enabled:
            self._obs_ipc_seconds.labels(op=op).observe(obs.clock.now() - start)
            if len(message) > 2 and message[2]:
                parent_span = obs.tracer.current()
                if isinstance(parent_span, Span):
                    graft_spans(obs.tracer, parent_span, message[2], start)
        if status != "ok":
            raise StructureError(
                f"worker op {op!r} on shard {shard_index} failed: {reply}"
            )
        return reply

    def post(self, shard_index: int, op: str, payload) -> None:
        """Pipelined one-way send to the worker owning ``shard_index``.

        The ack is *not* awaited — it is collected by the next
        :meth:`fence` / :meth:`call` / :meth:`flush` touching the lane
        (or here, once :data:`pipeline_window` sends are outstanding).
        This hides the worker's wake-up latency behind the parent's own
        work, which is what makes writes cheap on a busy box; the price
        is that a worker death with a send in flight surfaces on the
        fencing operation instead of this one.
        """
        lane = self._lanes[shard_index % self.workers]
        obs = self.obs
        start = obs.clock.now() if obs.enabled else 0.0
        with lane._lock:
            self._locked_respawn_if_dead(lane)
            if lane.pending >= self.pipeline_window:
                self._locked_drain(lane)
            try:
                lane.conn.send((op, shard_index, payload))
            except (BrokenPipeError, ConnectionResetError, OSError) as error:
                self._locked_abandon(lane)
                self._locked_mark_dead(lane)
                raise WorkerCrashedError(
                    f"worker {lane.worker_index} died accepting shard "
                    f"{shard_index} {op}"
                ) from error
            lane.pending += 1
            if op == "apply":
                self._posted[shard_index] += 1
                self._ledgers[shard_index].append(
                    (self._posted[shard_index], payload)
                )
        if obs.enabled:
            self._obs_ipc_seconds.labels(op=f"{op}_post").observe(
                obs.clock.now() - start
            )

    def write(self, shard_index: int, updates: Sequence[tuple]) -> None:
        """Record deltas destined for ``shard_index``'s owning worker.

        In direct-read mode the deltas are buffered parent-side and
        shipped :data:`ship_threshold` at a time — every shipment wakes
        the worker, which on a loaded box preempts the parent for a
        scheduling quantum, so per-write shipping would make "writes
        ship as deltas" cost more than applying them.  Readers stay
        exact throughout: :meth:`read_many` folds both the buffer and
        the shipped-but-unapplied ledger into every gather.  With
        ``ipc_reads`` the buffer would stall remote queries, so deltas
        ship immediately.
        """
        if not updates:
            return
        if self.ipc_reads:
            self.post(shard_index, "apply", list(updates))
            return
        buffer = self._buffers[shard_index]
        buffer.extend(updates)
        if len(buffer) >= self.ship_threshold:
            self._ship(shard_index)

    def _ship(self, shard_index: int) -> None:
        """Send ``shard_index``'s buffered deltas as one apply batch."""
        buffer = self._buffers[shard_index]
        if not buffer:
            return
        batch = list(buffer)
        del buffer[:]
        try:
            self.post(shard_index, "apply", batch)
        except WorkerCrashedError:
            # The batch never reached the worker — keep it for the
            # respawned one so nothing silently drops.
            buffer[:0] = batch
            raise

    def fence(self, shard_index: int) -> None:
        """Make ``shard_index``'s slab current: ship buffered deltas,
        then wait for every pipelined write on its lane.

        The unlocked fast path is safe: the engine lock already
        excludes writers while reads fan out, so the buffer and
        ``pending`` cannot rise concurrently — only fall, and draining
        is lock-protected.
        """
        self._ship(shard_index)
        lane = self._lanes[shard_index % self.workers]
        if not lane.pending:
            return
        with lane._lock:
            self._locked_respawn_if_dead(lane)
            self._locked_drain(lane)

    def pending_writes(self, shard_index: int) -> bool:
        """True while writes for ``shard_index`` have not reached its
        slab — buffered parent-side or shipped but unacknowledged
        (unlocked snapshot — see :meth:`fence` for why that is safe
        under the engine lock)."""
        if self._buffers[shard_index]:
            return True
        return self._lanes[shard_index % self.workers].pending > 0

    def read_many(self, shard_index: int, queries: Sequence[tuple]) -> list:
        """Zero-copy consistent batch read of ``shard_index``'s slab.

        Never waits on the worker: the gather is bracketed by the
        shard's seqlock (an even, unchanged ``seq`` proves no apply
        tore it), and the ``applied`` counter says which posted delta
        batches the slab already held — the rest are folded in from the
        parent's own ledger, which is exact because the parent posted
        them.  Only a gather that keeps colliding with an in-progress
        apply falls back to one fence.
        """
        store = self.store
        header = store.header(shard_index)
        ledger = self._ledgers[shard_index]
        lane = self._lanes[shard_index % self.workers]
        obs = self.obs
        enabled = obs.enabled
        worker = lane.worker_index
        retries = 0
        for _ in range(4):
            seq_before = int(header[shm.HEADER_SEQ])
            if seq_before & 1:
                break
            applied = int(header[shm.HEADER_APPLIED])
            gather_start = obs.clock.now() if enabled else 0.0
            values = store.range_sum_many(shard_index, queries)
            if int(header[shm.HEADER_SEQ]) != seq_before:
                retries += 1
                continue
            if enabled:
                self._obs_gather_by_worker[worker].observe(
                    obs.clock.now() - gather_start
                )
                self._obs_seqlock_rounds_by_worker[worker].observe(float(retries))
                if retries:
                    self._obs_seqlock_retries_by_worker[worker].inc(retries)
            if ledger:
                with lane._lock:
                    while ledger and ledger[0][0] <= applied:
                        ledger.popleft()
                    pending = [updates for _, updates in ledger]
                if pending:
                    values = _fold_pending(values, queries, pending)
            buffer = self._buffers[shard_index]
            if buffer:
                values = _fold_pending(values, queries, [buffer])
            return values
        # The worker is mid-apply (or kept winning the race): one fence
        # settles the pipeline, after which the slab alone is exact.
        if enabled:
            self._obs_seqlock_rounds_by_worker[worker].observe(4.0)
            self._obs_seqlock_retries_by_worker[worker].inc(max(retries, 1))
        self.fence(shard_index)
        return store.range_sum_many(shard_index, queries)

    def flush(self) -> None:
        """Ship every buffered delta and collect every outstanding ack.

        The engine calls this before bulk slab rewrites
        (``from_array`` on a live store) and on ``close()`` so no
        stale delta can race a reload or outlive the pool.
        """
        for index in range(self.store.count):
            self._ship(index)
        for lane in self._lanes:
            if not lane.pending:
                continue
            with lane._lock:
                self._locked_drain(lane)

    def kill_worker(self, shard_index: int) -> bool:
        """SIGKILL the worker owning ``shard_index`` (chaos hook).

        Joins the corpse before returning so the very next call
        deterministically observes the death.  Returns False when the
        worker was already down.
        """
        lane = self._lanes[shard_index % self.workers]
        with lane._lock:
            process = lane.process
            if process is None or not process.is_alive():
                return False
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
        return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def harvest(self) -> dict | None:
        """Merge worker shared-memory telemetry into the parent registry.

        Returns the harvester's summary dict, or ``None`` when remote
        worker metrics are off (disabled obs, or
        ``remote_worker_metrics=False``).  Safe to call at any moment —
        including with workers dead — because the parent owns the
        segments and merging is delta-based (see
        :class:`~repro.obs.remote.MetricsHarvester`).
        """
        if self._harvester is None:
            return None
        return self._harvester.harvest(self.obs.metrics)

    def pool_info(self) -> dict:
        """Live pool snapshot: one row per lane plus rollups."""
        lanes = []
        alive = 0
        for lane in self._lanes:
            with lane._lock:
                is_alive = lane.process is not None and lane.process.is_alive()
                lanes.append(
                    {
                        "worker": lane.worker_index,
                        "shards": list(lane.owned),
                        "pid": lane.process.pid if lane.process is not None else None,
                        "alive": is_alive,
                        "restarts": lane.restarts,
                        "pending_acks": lane.pending,
                    }
                )
            alive += is_alive
        if self.obs.enabled:
            self._obs_pool_alive.set(alive)
        telemetry = None
        if self._harvester is not None:
            telemetry = {
                "harvests": self._harvester.harvests,
                "torn_snapshots": self._harvester.torn_snapshots,
                "updates_published": sum(
                    self._harvester.updates_published(index)
                    for index in range(self.workers)
                ),
            }
        return {
            "executor": "process",
            "workers": self.workers,
            "alive": alive,
            "restarts": sum(row["restarts"] for row in lanes),
            "start_method": self._ctx.get_start_method(),
            "ipc_reads": self.ipc_reads,
            "buffered_deltas": sum(len(buf) for buf in self._buffers),
            "telemetry": telemetry,
            "lanes": lanes,
        }

    def shutdown(self) -> None:
        """Stop every worker, then the fan-out threads (idempotent)."""
        try:
            self.flush()
        except (WorkerCrashedError, StructureError):
            pass
        for lane in self._lanes:
            with lane._lock:
                if lane.process is None:
                    continue
                if lane.process.is_alive():
                    try:
                        # Drain pipelined acks so the stop handshake
                        # reads its own reply, not a queued write ack.
                        self._locked_drain(lane)
                        lane.conn.send(("stop", -1, None))
                        if lane.conn.poll(1.0):
                            lane.conn.recv()
                    except (
                        BrokenPipeError,
                        EOFError,
                        OSError,
                        WorkerCrashedError,
                        StructureError,
                    ):
                        pass
                lane.pending = 0
                if lane.process is not None:
                    lane.process.join(timeout=2.0)
                    if lane.process.is_alive():  # pragma: no cover - stuck
                        lane.process.terminate()
                        lane.process.join(timeout=1.0)
                    lane.process = None
                if lane.conn is not None:
                    try:
                        lane.conn.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
                    lane.conn = None
        self._pool.shutdown(wait=True)
        if self._harvester is not None:
            # Take one last merge so metrics published after the final
            # explicit harvest are not lost, then release the segments.
            self._harvester.harvest(self.obs.metrics)
            self._harvester.destroy()
            self._harvester = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessExecutor(workers={self.workers}, "
            f"shards={self.store.count})"
        )


class _LocalSlabReader:
    """Executor-free direct-slab reader for the fallback degradation path.

    When a shard's worker is down and the policy says ``fallback``, the
    engine recomputes the failed sub-queries in the request thread; this
    reader answers them through the pool's ledger-corrected zero-copy
    read, degrading to a raw slab gather when even that surfaces the
    crash (the degradation path is already serving through a failure,
    so best-available beats raising twice).
    """

    __slots__ = ("_pool", "_index", "_dtype")

    def __init__(self, pool: "ProcessExecutor", index: int, dtype) -> None:
        self._pool = pool
        self._index = index
        self._dtype = dtype

    def _read(self, queries: list) -> list:
        try:
            return self._pool.read_many(self._index, queries)
        except WorkerCrashedError:
            return self._pool.store.range_sum_many(self._index, queries)

    def range_sum(self, low, high):
        return self._dtype.type(self._read([(low, high)])[0])

    def range_sum_many(self, ranges: Sequence) -> list:
        return [
            self._dtype.type(value) for value in self._read(list(ranges))
        ]


class ShmShardReplica(RangeSumMethod):
    """Parent-side proxy for a shard whose slab lives in shared memory.

    Implements the :class:`~repro.methods.base.RangeSumMethod` surface
    the engine drives — ``range_sum`` / ``range_sum_many`` / ``add`` /
    ``add_many``.  Writes always ship as compact ``(cell, delta)``
    tuples to the owning worker via :meth:`ProcessExecutor.call`
    (combined per cell first, same as every method's batch write
    path); the worker is the shard's single writer.  Reads are served
    as zero-copy inclusion-exclusion gathers off the parent's own
    mapping of the slab — correct because the engine lock excludes
    writers while a read fans out — unless the pool was built with
    ``ipc_reads=True``, in which case they round-trip through the
    owning worker like writes do.
    """

    name = "shm-replica"
    batch_crossover = 1  # one IPC round-trip either way: always batch

    def __init__(
        self,
        pool: ProcessExecutor,
        shard_index: int,
        shape: Sequence[int],
        dtype=np.int64,
    ) -> None:
        super().__init__(shape, dtype=dtype)
        self._pool = pool
        self._shard_index = shard_index

    # -- writes --------------------------------------------------------

    def add(self, cell, delta) -> None:
        cell = geometry.normalize_cell(cell, self.shape)
        if delta == 0:
            return
        self.stats.cell_writes += 1
        self._pool.write(self._shard_index, [(cell, self._native(delta))])

    def add_many(self, updates: Sequence[tuple]) -> None:
        combined = self._combined_updates(updates)
        if not combined:
            return
        self.stats.cell_writes += len(combined)
        self._pool.write(
            self._shard_index,
            [(cell, self._native(delta)) for cell, delta in combined],
        )

    # -- reads ---------------------------------------------------------

    def prefix_sum(self, cell):
        cell = geometry.normalize_cell(cell, self.shape)
        return self.range_sum((0,) * self.dims, cell)

    def range_sum(self, low, high):
        low_cell, high_cell = geometry.normalize_range(low, high, self.shape)
        self.stats.cell_reads += 1 << self.dims
        if self._pool.ipc_reads:
            values = self._pool.call(
                self._shard_index, "query_many", [(low_cell, high_cell)]
            )
        else:
            values = self._pool.read_many(
                self._shard_index, [(low_cell, high_cell)]
            )
        return self.dtype.type(values[0])

    def range_sum_many(self, ranges: Sequence) -> list:
        queries = [self._query_bounds(item) for item in ranges]
        if not queries:
            return []
        self._use_batch_path(len(queries))
        self.stats.cell_reads += len(queries) << self.dims
        if self._pool.ipc_reads:
            values = self._pool.call(self._shard_index, "query_many", queries)
        else:
            values = self._pool.read_many(self._shard_index, queries)
        return [self.dtype.type(value) for value in values]

    # -- bookkeeping ---------------------------------------------------

    def memory_cells(self) -> int:
        """Cells in the shard's slab (stored once, in shared memory)."""
        return int(np.prod(self.shape))

    def fallback_target(self) -> _LocalSlabReader:
        """Direct parent-side reader the degradation path can use when
        this shard's worker is unreachable."""
        return _LocalSlabReader(self._pool, self._shard_index, self.dtype)

    def _native(self, delta):
        """Delta as a plain Python number (minimal pickle payload)."""
        return self.dtype.type(delta).item()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmShardReplica(shard={self._shard_index}, shape={self.shape})"
        )
