"""Fault tolerance for the sharded serving engine.

The PR 3 engine assumed every shard sub-operation succeeds instantly:
one slow or failing shard stalled an entire fan-out, and there was no
vocabulary for "this answer is missing a slab".  This module is the
tail-control layer the ROADMAP's serving arc needs — the paper promises
predictable *O(log^d n)* cost per operation, and a deployment is judged
on whether the p99 actually honours that promise under partial failure:

* :class:`ResiliencePolicy` — one frozen configuration object: the
  per-request deadline budget, the retry/backoff schedule, the circuit
  breaker thresholds, and the graceful-degradation mode.
* :class:`Deadline` — a request's absolute time budget, threaded
  through every retry round and fan-out wait.
* :class:`CircuitBreaker` — per-shard closed/open/half-open state over
  a sliding outcome window, with a cooldown before half-open probing.
* :class:`PartialResult` — an explicitly-marked degraded answer
  (``partial=True``, the missing shards named) so a caller can never
  mistake a partial sum for an exact one.
* :class:`FaultInjector` — a deterministic, seeded chaos harness that
  wraps any executor and injects transient exceptions, latency spikes,
  stuck-shard hangs, and scripted fail-N-then-recover sequences, so
  every behaviour above is testable without real timing races.

All timing flows through the injected observability clock
(``obs.clock.now()`` / ``obs.clock.sleep()``) — never ``time.*``
directly — which lint rule REP008 enforces and which makes a
:class:`~repro.obs.clock.ManualClock` chaos soak fully deterministic.
Breaker state only mutates while the engine holds its request lock
(rule REP007 covers the engine's ``_breakers`` list).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..exceptions import (
    CircuitOpenError,
    ConfigurationError,
    InjectedFaultError,
    WorkerCrashedError,
)

__all__ = [
    "ResiliencePolicy",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "PartialResult",
    "is_partial",
    "FaultInjector",
    "FaultScript",
]

#: Circuit-breaker states, ordered by severity for the obs gauge
#: (0 = closed/healthy, 1 = half-open/probing, 2 = open/shedding).
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half-open"
BREAKER_OPEN = "open"

_STATE_GAUGE_VALUES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}

#: Degradation modes (see :class:`ResiliencePolicy.degradation`).
_DEGRADATION_MODES = ("strict", "partial", "fallback")


@dataclass(frozen=True)
class ResiliencePolicy:
    """The engine's complete fault-tolerance configuration.

    Args:
        deadline_seconds: per-request time budget; ``None`` disables
            deadline enforcement.  The budget covers every retry round
            and backoff sleep of one read request.
        max_retries: re-attempts per shard sub-operation after the
            first failure (0 = fail on first error).
        backoff_base: first retry's backoff sleep, in seconds.
        backoff_multiplier: exponential growth factor between rounds.
        backoff_cap: upper bound on any single backoff sleep.
        jitter: fraction of the computed backoff added as seeded
            uniform noise (0 disables; 0.5 adds up to +50%).  Jitter is
            drawn from a ``random.Random(retry_seed)`` so runs are
            reproducible.
        retry_seed: seed for the jitter stream.
        breaker_window: sliding window of recent outcomes per shard the
            failure rate is computed over; 0 disables the breakers.
        breaker_failure_threshold: failure fraction within a full
            window that trips the breaker open.
        breaker_cooldown_seconds: how long an open breaker sheds load
            before allowing a half-open probe.
        degradation: what a request does when a shard stays failed
            after retries —

            * ``"strict"``: raise (:class:`~repro.exceptions.ShardFailedError`
              or :class:`~repro.exceptions.DeadlineExceededError`);
            * ``"partial"``: serve the sum of the healthy shards,
              wrapped in a :class:`PartialResult` marked
              ``partial=True`` (never cached);
            * ``"fallback"``: recompute the failed sub-ranges on the
              unsharded path — synchronously in the request thread,
              bypassing the executor fan-out — yielding an exact
              answer at degraded latency.
    """

    deadline_seconds: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_cap: float = 1.0
    jitter: float = 0.5
    retry_seed: int = 0
    breaker_window: int = 8
    breaker_failure_threshold: float = 0.5
    breaker_cooldown_seconds: float = 5.0
    degradation: str = "strict"

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive or None, "
                f"got {self.deadline_seconds}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.breaker_window < 0:
            raise ConfigurationError(
                f"breaker_window must be >= 0, got {self.breaker_window}"
            )
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ConfigurationError(
                f"breaker_failure_threshold must be in (0, 1], "
                f"got {self.breaker_failure_threshold}"
            )
        if self.degradation not in _DEGRADATION_MODES:
            raise ConfigurationError(
                f"degradation must be one of {_DEGRADATION_MODES}, "
                f"got {self.degradation!r}"
            )

    def backoff(self, round_index: int, rng: random.Random) -> float:
        """The backoff sleep before retry round ``round_index`` (0-based)."""
        base = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_multiplier**round_index,
        )
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return min(base, self.backoff_cap)


class Deadline:
    """One request's absolute time budget on the injected clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, clock, budget_seconds: float | None) -> "Deadline | None":
        """A deadline ``budget_seconds`` from now, or None for no budget."""
        if budget_seconds is None:
            return None
        return cls(clock.now() + budget_seconds)

    def remaining(self, clock) -> float:
        """Seconds left on the budget (never negative)."""
        return max(0.0, self.expires_at - clock.now())

    def expired(self, clock) -> bool:
        """True once the budget is spent."""
        return clock.now() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(expires_at={self.expires_at})"


class CircuitBreaker:
    """Per-shard closed / open / half-open breaker over an outcome window.

    State machine:

    * **closed** — calls flow; outcomes land in a sliding window of the
      last ``window`` attempts.  When the window is full and its
      failure fraction reaches ``failure_threshold``, the breaker
      opens.
    * **open** — calls are refused (:meth:`allow` returns False) until
      ``cooldown_seconds`` have elapsed on the injected clock; the
      engine turns a refusal into an immediate
      :class:`~repro.exceptions.CircuitOpenError` without touching the
      shard, which is what keeps a persistently-failing shard from
      dragging every request through its retry budget.
    * **half-open** — after the cooldown, exactly one probe call is
      allowed through.  Success closes the breaker (window reset);
      failure re-opens it and re-arms the cooldown.

    The breaker is deliberately not thread-safe: the engine mutates it
    only while holding the request lock (REP007 territory), and records
    outcomes from the coordinating thread after the fan-out returns.
    """

    __slots__ = ("policy", "state", "_outcomes", "_opened_at", "_probing")

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self.state = BREAKER_CLOSED
        self._outcomes: list[bool] = []  # True = failure
        self._opened_at = 0.0
        self._probing = False

    @property
    def enabled(self) -> bool:
        return self.policy.breaker_window > 0

    @property
    def gauge_value(self) -> int:
        """Numeric encoding for the obs gauge (0/1/2 = closed/half/open)."""
        return _STATE_GAUGE_VALUES[self.state]

    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def allow(self, now: float) -> bool:
        """May a call be attempted right now?  (May transition to half-open.)"""
        if not self.enabled or self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self._opened_at >= self.policy.breaker_cooldown_seconds:
                self.state = BREAKER_HALF_OPEN
                self._probing = False
            else:
                return False
        # half-open: admit a single probe until its outcome is recorded
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self, now: float) -> None:
        """Note a successful call (closes a half-open breaker)."""
        if not self.enabled:
            return
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self._outcomes = []
            self._probing = False
            return
        self._push(False)

    def record_failure(self, now: float) -> None:
        """Note a failed call (may open the breaker)."""
        if not self.enabled:
            return
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN
            self._opened_at = now
            self._probing = False
            return
        self._push(True)
        window = self.policy.breaker_window
        if (
            self.state == BREAKER_CLOSED
            and len(self._outcomes) >= window
            and self.failure_rate() >= self.policy.breaker_failure_threshold
        ):
            self.state = BREAKER_OPEN
            self._opened_at = now

    def _push(self, failed: bool) -> None:
        self._outcomes.append(failed)
        if len(self._outcomes) > self.policy.breaker_window:
            self._outcomes.pop(0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failure_rate={self.failure_rate():.2f})"
        )


class PartialResult:
    """A degraded range-sum answer, explicitly marked.

    Wraps the sum of the shards that *did* answer, names the shards
    that did not, and exposes ``partial=True`` so no caller can mistake
    it for an exact answer.  It quacks like a number (``int()``,
    ``float()``, equality, addition) so reporting pipelines keep
    working, but the engine never caches one.
    """

    __slots__ = ("value", "missing_shards")

    partial = True

    def __init__(self, value, missing_shards: Sequence[int]) -> None:
        self.value = value
        self.missing_shards = tuple(sorted(missing_shards))

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __index__(self) -> int:
        return int(self.value)

    def __eq__(self, other) -> bool:
        if isinstance(other, PartialResult):
            return (
                self.value == other.value
                and self.missing_shards == other.missing_shards
            )
        return bool(self.value == other)

    def __hash__(self) -> int:
        return hash((self.value, self.missing_shards))

    def __add__(self, other):
        return self.value + other

    __radd__ = __add__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartialResult({self.value!r}, "
            f"missing_shards={self.missing_shards})"
        )


def is_partial(value) -> bool:
    """True when ``value`` is an explicitly-marked degraded answer."""
    return getattr(value, "partial", False) is True


class FaultScript:
    """Deterministic per-shard fault plan: fail the next N calls, then recover.

    The building block for breaker tests — ``FaultScript(fail_next=6)``
    on one shard trips its breaker open, and the recovery (every call
    after the Nth succeeds) is what the half-open probe finds.
    """

    __slots__ = ("fail_next",)

    def __init__(self, fail_next: int) -> None:
        if fail_next < 0:
            raise ConfigurationError(
                f"fail_next must be >= 0, got {fail_next}"
            )
        self.fail_next = fail_next

    def should_fail(self) -> bool:
        """Consume one scheduled failure (False once exhausted)."""
        if self.fail_next > 0:
            self.fail_next -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultScript(fail_next={self.fail_next})"


class FaultInjector:
    """Seeded chaos harness: an executor wrapper that injects faults.

    Wraps any executor (serial or threaded) and perturbs each task
    invocation before the real work runs.  The engine's work items are
    ``(shard_index, ...)`` tuples, so faults are attributed per shard.
    Because retries re-submit through the executor, every retry round
    passes through the injector again — exactly what a flaky shard
    looks like from the engine's side.

    Fault kinds, all driven by one ``random.Random(seed)`` stream:

    * **transient exception** (``fault_rate``) — raise
      :class:`~repro.exceptions.InjectedFaultError`; the retry path's
      bread and butter.
    * **latency spike** (``latency_rate``) — ``clock.sleep(latency_seconds)``
      before the work; visible in the latency histograms and, under a
      deadline, convertible into a timeout.
    * **stuck shard** (``hang_rate``) — ``clock.sleep(hang_seconds)``
      *then* raise: the time is burned and the call still fails, which
      is how a hung sub-operation looks to a deadline budget.  On a
      :class:`~repro.obs.clock.ManualClock` the "hang" is virtual and
      the test stays instant.
    * **worker kill** (``kill_rate``) — SIGKILL the pool worker owning
      the shard (when the wrapped executor exposes ``kill_worker``,
      i.e. the process executor) and fail the call with
      :class:`~repro.exceptions.WorkerCrashedError`, exactly as a
      mid-query death surfaces.  The process genuinely dies: the next
      attempt respawns it against the shared-memory slabs, so recovery
      is exact.  On executors without workers to kill the error is
      still raised, simulating the crash.
    * **scripts** — a ``{shard_index: FaultScript}`` mapping for exact
      fail-N-then-recover sequences (overrides the random draws for
      that shard while active).

    Determinism caveat: with a threaded executor the *assignment* of
    random draws to tasks depends on scheduling; use a serial executor
    (the default everywhere in tests and the chaos CLI) when exact
    reproducibility matters.
    """

    def __init__(
        self,
        executor,
        clock,
        seed: int = 0,
        fault_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.005,
        hang_rate: float = 0.0,
        hang_seconds: float = 0.1,
        kill_rate: float = 0.0,
        scripts: dict[int, FaultScript] | None = None,
    ) -> None:
        for name, rate in (
            ("fault_rate", fault_rate),
            ("latency_rate", latency_rate),
            ("hang_rate", hang_rate),
            ("kill_rate", kill_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        self._inner = executor
        self._clock = clock
        self._rng = random.Random(seed)
        self.fault_rate = fault_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.hang_rate = hang_rate
        self.hang_seconds = hang_seconds
        self.kill_rate = kill_rate
        self.scripts = dict(scripts or {})
        #: Tally of injected events by kind, for soak reports.
        self.injected = {"fault": 0, "latency": 0, "hang": 0, "kill": 0, "script": 0}
        self.calls = 0

    @property
    def workers(self) -> int:
        return self._inner.workers

    def _shard_of(self, item) -> int | None:
        try:
            return item[0]
        except (TypeError, IndexError):
            return None

    def _perturb(self, item) -> None:
        """Maybe inject one fault for this task invocation."""
        self.calls += 1
        shard = self._shard_of(item)
        script = self.scripts.get(shard) if shard is not None else None
        if script is not None and script.should_fail():
            self.injected["script"] += 1
            raise InjectedFaultError(
                f"scripted fault on shard {shard} "
                f"({script.fail_next} remaining)"
            )
        draw = self._rng.random()
        if draw < self.hang_rate:
            self.injected["hang"] += 1
            self._clock.sleep(self.hang_seconds)
            raise InjectedFaultError(
                f"stuck shard {shard}: hung {self.hang_seconds}s, then failed"
            )
        if draw < self.hang_rate + self.fault_rate:
            self.injected["fault"] += 1
            raise InjectedFaultError(f"transient fault on shard {shard}")
        if draw < self.hang_rate + self.fault_rate + self.kill_rate:
            self.injected["kill"] += 1
            killer = getattr(self._inner, "kill_worker", None)
            if killer is not None and shard is not None:
                killer(shard)
            raise WorkerCrashedError(
                f"injected worker kill while serving shard {shard}"
            )
        if draw < (
            self.hang_rate + self.fault_rate + self.kill_rate + self.latency_rate
        ):
            self.injected["latency"] += 1
            self._clock.sleep(self.latency_seconds)

    def _wrap(self, fn: Callable) -> Callable:
        def faulty(item):
            self._perturb(item)
            return fn(item)

        return faulty

    def map(self, fn: Callable, items: Sequence) -> list:
        """Delegate to the wrapped executor with faults armed."""
        return self._inner.map(self._wrap(fn), items)

    def try_map(
        self,
        fn: Callable,
        items: Sequence,
        timeout: float | None = None,
        clock=None,
    ) -> list[tuple]:
        """Delegate ``try_map`` with faults armed (per-item isolation)."""
        return self._inner.try_map(
            self._wrap(fn), items, timeout=timeout, clock=clock
        )

    def shutdown(self) -> None:
        self._inner.shutdown()

    def report(self) -> dict:
        """Injection tallies: calls seen and faults delivered by kind."""
        total = sum(self.injected.values())
        return {
            "calls": self.calls,
            "injected_total": total,
            "injected_rate": total / self.calls if self.calls else 0.0,
            **{f"injected_{kind}": n for kind, n in self.injected.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector({self._inner!r}, fault_rate={self.fault_rate}, "
            f"latency_rate={self.latency_rate}, hang_rate={self.hang_rate})"
        )
