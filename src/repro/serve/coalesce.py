"""Single-flight coalescing of identical in-flight engine calls.

A hot dashboard range is requested by hundreds of clients at once; the
engine's epoch-validated cache already makes the *second* computation
free, but under concurrency the first N arrivals all miss together and
fan out N identical engine calls.  :class:`SingleFlight` closes that
window: the first arrival for a key becomes the **leader** and runs the
engine call; every concurrent arrival with the same key becomes a
**follower** that awaits the leader's future and receives the same
answer — one engine call total, N responses.

Keys are ``(tenant, method, lo, hi)`` tuples (built by the server), so
coalescing never crosses tenants or mixes operations.  Semantics match
the usual single-flight contract (groupcache et al.): a follower
observes the value of the flight it *joined*, which may predate a write
that arrived after the leader started — exactly-as-stale as any answer
computed a microsecond earlier.  Leaders' exceptions propagate to every
follower of that flight; the next arrival after settlement starts a
fresh flight.

Single-threaded by design: all bookkeeping runs on the event loop, so
no locks are needed (the blocking engine call itself runs in the
server's thread pool, off the loop).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Hashable

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight dedup: one supplier run per key, results fanned out."""

    def __init__(self) -> None:
        self._flights: dict[Hashable, asyncio.Future] = {}
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        """Flights currently in the air."""
        return len(self._flights)

    def holds(self, key: Hashable) -> bool:
        """True when a flight for ``key`` is currently in the air.

        Lets the server skip admission for would-be followers — joining
        an existing flight adds no engine work, so it must not be shed.
        """
        return key in self._flights

    async def run(
        self, key: Hashable, supplier: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """Return ``(value, coalesced)`` for ``key``.

        ``coalesced`` is True when this call joined an existing flight
        instead of running ``supplier``.  A follower is shielded from
        its own cancellation propagating into the shared flight; the
        leader's cancellation settles the flight with that error.
        """
        existing = self._flights.get(key)
        if existing is not None:
            self.followers += 1
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._flights[key] = future
        self.leaders += 1
        try:
            value = await supplier()
        except BaseException as exc:
            # Settle before unlinking is not required — unlinking first
            # means a request arriving during leader unwind starts a
            # clean flight instead of inheriting this failure.
            self._flights.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved: with zero followers nobody will await
                # the future, and the loop would log a spurious
                # "exception was never retrieved" at GC time.
                future.exception()
            raise
        self._flights.pop(key, None)
        if not future.done():
            future.set_result(value)
        return value, False
