"""The asyncio HTTP front-end over a :class:`~repro.engine.ShardedEngine`.

Pure-stdlib HTTP/1.1 (``asyncio.start_server`` + ``Content-Length``
bodies, keep-alive) so the server runs everywhere the engine does — no
web framework required.  Request flow for ``/query``::

    parse + validate (wire.py)
      → per-tenant token bucket            (429 + Retry-After)
      → single-flight coalesce join        (followers skip the rest)
      → concurrency gate                   (503 + Retry-After on overflow)
      → blocking engine call in the server's thread pool

The engine's public API is thread-safe (RLock-serialised), so the only
thing the thread pool buys is keeping the event loop responsive while a
query computes; all server bookkeeping stays loop-local and lock-free.

**Load shedding** watches the gate's pressure: above
``AdmissionPolicy.shed_watermark`` the server flips the engine's
resilience degradation from strict to partial (via
``engine.set_degradation``) so stragglers stop holding answers hostage
exactly when capacity is scarcest, and flips it back when pressure
subsides.  Responses served during a shed window carry ``shed: true``.

``/healthz`` reports the same verdict as ``repro top --once`` — both go
through :func:`repro.obs.slo.evaluate_health`, so the CLI and the
endpoint cannot drift.  ``/metrics`` reuses the registry's Prometheus
exposition (``?format=json`` for the JSON mirror plus server counters).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..exceptions import (
    BadRequestError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServeError,
    UnsupportedMediaTypeError,
)
from ..obs import Observability, engine_watchdog, evaluate_health
from .admission import AdmissionPolicy, ConcurrencyGate, TenantBuckets
from .coalesce import SingleFlight
from .wire import (
    Codec,
    codec_for,
    decode_query,
    decode_update,
    default_codec,
    error_body,
    query_response,
    update_response,
)

__all__ = ["CubeServer"]

#: Request body ceiling — a single request must not be able to balloon
#: loop memory past what ``MAX_BATCH`` already bounds logically.
MAX_BODY_BYTES = 8 << 20

#: Request-line + headers ceiling for ``readuntil``.
MAX_HEAD_BYTES = 32 << 10

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpRequest:
    """One parsed request: line, lowercased headers, raw body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body


class CubeServer:
    """Serve a :class:`~repro.engine.ShardedEngine` over HTTP.

    Args:
        engine: the engine to serve; its public ops are thread-safe.
        host/port: bind address; ``port=0`` picks an ephemeral port
            (read :attr:`port` after :meth:`start`).
        policy: admission configuration (:class:`AdmissionPolicy`).
        obs: observability facade for server metrics; defaults to the
            engine's facade when enabled, else a fresh one so
            ``/metrics`` always has a live registry.
        slo_rules: optional SLO rule overrides for ``/healthz``.
        executor_threads: thread-pool width for blocking engine calls.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: AdmissionPolicy | None = None,
        obs=None,
        slo_rules=None,
        executor_threads: int = 4,
    ) -> None:
        if executor_threads < 1:
            raise ConfigurationError("executor_threads must be >= 1")
        self.engine = engine
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else AdmissionPolicy()
        if obs is not None:
            self.obs = obs
        elif getattr(engine.obs, "enabled", False):
            self.obs = engine.obs
        else:
            self.obs = Observability(remote_worker_metrics=False)
        self.watchdog = engine_watchdog(self.obs, engine, rules=slo_rules)
        self.dims = len(engine.shape)
        self.flights = SingleFlight()
        self.buckets = TenantBuckets(self.policy)
        self.gate = ConcurrencyGate(self.policy)
        self.shedding = False
        self.shed_entries = 0
        self.shed_responses = 0
        self.drained = 0
        self._saved_degradation: str | None = None
        self._server: asyncio.base_events.Server | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-serve"
        )
        self._draining = False
        self._busy = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._register_instruments()

    def _register_instruments(self) -> None:
        metrics = self.obs.metrics
        self._requests_total = metrics.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by route and status code.",
            labels=("route", "code"),
        )
        self._request_seconds = metrics.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency, by route.",
            labels=("route",),
        )
        self._coalesced_total = metrics.counter(
            "repro_serve_coalesced_total",
            "Single-flight outcomes: leaders ran the engine call, "
            "followers joined one in flight.",
            labels=("role",),
        )
        self._admission_total = metrics.counter(
            "repro_serve_admission_total",
            "Admission decisions: throttled (429), overflow (503), "
            "shed-mode entries.",
            labels=("action",),
        )
        self._inflight_gauge = metrics.gauge(
            "repro_serve_inflight",
            "Requests currently being handled.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "CubeServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_HEAD_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight requests, close.

        With ``drain`` (the default) requests already being handled get
        up to ``policy.drain_seconds`` to finish — their responses are
        written before the connection closes.  Idle keep-alive
        connections are closed immediately either way.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if drain:
            deadline = (
                asyncio.get_running_loop().time() + self.policy.drain_seconds
            )
            while self._busy > 0:
                if asyncio.get_running_loop().time() >= deadline:
                    break
                await asyncio.sleep(0.005)
            self.drained += 1
        for writer in list(self._writers):
            writer.close()
        # Closed transports deliver EOF to parked readers, so handlers
        # exit on their own; cancellation is only the stragglers' path.
        tasks = [task for task in self._conn_tasks if not task.done()]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._server = None
        self._pool.shutdown(wait=True, cancel_futures=True)

    async def serve_forever(self) -> None:
        """Block until the listening server is closed."""
        if self._server is None:
            raise ServeError("server not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> dict:
        """Server-side counters the bench and tests assert against."""
        return {
            "coalesce_leaders": self.flights.leaders,
            "coalesce_followers": self.flights.followers,
            "inflight": self.gate.inflight,
            "waiting": self.gate.waiting,
            "peak_pressure": self.gate.peak_pressure,
            "overflow_rejected": self.gate.rejected,
            "throttled": self.buckets.throttled,
            "shedding": self.shedding,
            "shed_entries": self.shed_entries,
            "shed_responses": self.shed_responses,
            "tenants": len(self.buckets),
        }

    # ------------------------------------------------------------------
    # Load shedding
    # ------------------------------------------------------------------

    def _update_shed(self) -> None:
        """Flip strict → partial (and back) on gate pressure.

        Only meaningful when the engine carries a resilience policy —
        without one there is no degradation axis to move along.
        """
        if self.engine.policy is None:
            return
        pressure = self.gate.pressure
        if not self.shedding and pressure >= self.policy.shed_watermark:
            self._saved_degradation = self.engine.set_degradation("partial")
            self.shedding = True
            self.shed_entries += 1
            self._admission_total.labels(action="shed_enter").inc()
        elif self.shedding and pressure < self.policy.shed_watermark:
            self.engine.set_degradation(self._saved_degradation or "strict")
            self.shedding = False

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while not self._draining:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                self._busy += 1
                self._inflight_gauge.set(self._busy)
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._busy -= 1
                    self._inflight_gauge.set(self._busy)
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown reaping a parked keep-alive connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> _HttpRequest | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            await self._write_error(writer, None, 431, "request head too large")
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            await self._write_error(writer, None, 400, "malformed request line")
            return None
        method, target, _version = parts
        split = urlsplit(target)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            await self._write_error(writer, None, 400, "bad Content-Length")
            return None
        if length > MAX_BODY_BYTES:
            await self._write_error(writer, None, 413, "request body too large")
            return None
        body = await reader.readexactly(length) if length else b""
        return _HttpRequest(
            method.upper(), split.path, parse_qs(split.query), headers, body
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        route = request.path
        start = self.obs.clock.now()
        codec = default_codec()
        status = 500
        try:
            codec = codec_for(
                request.headers.get("accept")
                or request.headers.get("content-type")
            )
            status, body, extra = await self._route(request)
        except BadRequestError as exc:
            status, body, extra = 400, error_body(400, str(exc)), {}
        except UnsupportedMediaTypeError as exc:
            status, body, extra = 415, error_body(415, str(exc)), {}
        except (CircuitOpenError, DeadlineExceededError) as exc:
            status = 503
            body = error_body(503, str(exc))
            extra = {"Retry-After": self._retry_after()}
        except ReproError as exc:
            status, body, extra = 500, error_body(500, str(exc)), {}
        self._requests_total.labels(route=route, code=str(status)).inc()
        self._request_seconds.labels(route=route).observe(
            max(0.0, self.obs.clock.now() - start)
        )
        keep_alive = self._keep_alive(request)
        await self._write_response(
            writer, codec, status, body, extra, keep_alive
        )
        return keep_alive

    async def _route(self, request: _HttpRequest):
        path, method = request.path, request.method
        if path == "/query":
            if method != "POST":
                return 405, error_body(405, "POST required"), {}
            return await self._handle_query(request)
        if path == "/update":
            if method != "POST":
                return 405, error_body(405, "POST required"), {}
            return await self._handle_update(request)
        if path == "/healthz":
            if method != "GET":
                return 405, error_body(405, "GET required"), {}
            return await self._handle_healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, error_body(405, "GET required"), {}
            return self._handle_metrics(request)
        return 404, error_body(404, f"no route {path!r}"), {}

    def _keep_alive(self, request: _HttpRequest) -> bool:
        if self._draining:
            return False
        connection = request.headers.get("connection", "").lower()
        return connection != "close"

    def _retry_after(self) -> str:
        return f"{self.policy.retry_after_seconds:g}"

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    async def _handle_query(self, request: _HttpRequest):
        payload = codec_for(request.headers.get("content-type")).decode(
            request.body
        )
        parsed = decode_query(payload, self.dims)
        denied = self._admit(parsed.tenant)
        if denied is not None:
            return denied
        loop = asyncio.get_running_loop()
        if parsed.batch:
            if self.gate.would_overflow():
                return self._overflow()
            results = await self._gated(
                loop, self.engine.range_sum_many, parsed.ranges
            )
            coalesced = False
        else:
            (low, high) = parsed.ranges[0]
            key = (parsed.tenant, "range_sum", low, high)
            if not self.flights.holds(key) and self.gate.would_overflow():
                return self._overflow()

            async def supplier():
                return await self._gated(
                    loop, self.engine.range_sum, low, high
                )

            value, coalesced = await self.flights.run(key, supplier)
            results = [value]
            self._coalesced_total.labels(
                role="follower" if coalesced else "leader"
            ).inc()
        body = query_response(
            results,
            batch=parsed.batch,
            coalesced=coalesced,
            shed=self.shedding,
        )
        if body["shed"]:
            self.shed_responses += 1
        return 200, body, {}

    async def _handle_update(self, request: _HttpRequest):
        payload = codec_for(request.headers.get("content-type")).decode(
            request.body
        )
        parsed = decode_update(payload, self.dims)
        denied = self._admit(parsed.tenant)
        if denied is not None:
            return denied
        if self.gate.would_overflow():
            return self._overflow()
        loop = asyncio.get_running_loop()
        await self._gated(loop, self.engine.add_many, parsed.updates)
        return 200, update_response(len(parsed.updates)), {}

    async def _handle_healthz(self):
        document = await asyncio.get_running_loop().run_in_executor(
            self._pool, evaluate_health, self.watchdog, self.engine
        )
        return (200 if document["healthy"] else 503), document, {}

    def _handle_metrics(self, request: _HttpRequest):
        fmt = (request.query.get("format") or ["prometheus"])[0]
        if fmt == "json":
            document = self.obs.metrics.to_json()
            document["serve"] = self.stats()
            return 200, document, {}
        text = self.obs.metrics.render_prometheus()
        return 200, text, {"Content-Type": "text/plain; version=0.0.4"}

    # ------------------------------------------------------------------
    # Admission plumbing
    # ------------------------------------------------------------------

    def _admit(self, tenant: str):
        """Token-bucket check; a non-None return is the 429 response."""
        retry_after = self.buckets.try_acquire(tenant, self.obs.clock.now())
        if retry_after > 0:
            self._admission_total.labels(action="throttled").inc()
            return (
                429,
                error_body(429, f"tenant {tenant!r} over rate limit"),
                {"Retry-After": f"{retry_after:.3f}"},
            )
        return None

    def _overflow(self):
        self._admission_total.labels(action="overflow").inc()
        return (
            503,
            error_body(503, "server at capacity"),
            {"Retry-After": self._retry_after()},
        )

    async def _gated(self, loop, fn, *args):
        """Run a blocking engine call under the concurrency gate."""
        await self.gate.acquire()
        self._update_shed()
        try:
            return await loop.run_in_executor(self._pool, fn, *args)
        finally:
            self.gate.release()
            self._update_shed()

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        codec: Codec,
        status: int,
        body: Any,
        extra: dict,
        keep_alive: bool,
    ) -> None:
        if isinstance(body, str):
            payload = body.encode("utf-8")
            content_type = extra.pop("Content-Type", "text/plain")
        else:
            payload = codec.encode(body)
            content_type = extra.pop("Content-Type", codec.content_type)
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra.items())
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _write_error(
        self, writer, codec, status: int, message: str
    ) -> None:
        await self._write_response(
            writer,
            codec or default_codec(),
            status,
            error_body(status, message),
            {},
            keep_alive=False,
        )
