"""Wire format for the serving front-end: codecs + request validation.

One request/response vocabulary, two byte encodings:

* ``application/json`` — always available, the default.
* ``application/msgpack`` — the binary twin.  The real ``msgpack``
  package is used when installed (``pip install repro[serve]``);
  otherwise the dependency-free :mod:`~repro.serve.msgpack_lite` packer
  keeps the format available.  ``REPRO_NO_MSGPACK=1`` disables the
  binary codec outright (requests for it then get HTTP 415), mirroring
  the ``REPRO_NO_NUMBA`` kill switch.

Both codecs carry the *same* documents — :func:`decode_query` /
:func:`decode_update` validate the decoded payload into plain tuples
before anything touches the engine, and responses are built from
JSON-safe scalars only (numpy values are unwrapped at the boundary).
See ``docs/serving.md`` for the full request/response schema.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..engine.resilience import is_partial
from ..exceptions import BadRequestError, UnsupportedMediaTypeError

__all__ = [
    "Codec",
    "available_codecs",
    "codec_for",
    "default_codec",
    "QueryRequest",
    "UpdateRequest",
    "decode_query",
    "decode_update",
    "query_response",
    "update_response",
    "error_body",
]

JSON_CONTENT_TYPE = "application/json"
MSGPACK_CONTENT_TYPE = "application/msgpack"


@dataclass(frozen=True)
class Codec:
    """One wire encoding: a content type plus encode/decode callables."""

    name: str
    content_type: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]


def _json_encode(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _json_decode(data: bytes) -> Any:
    try:
        return json.loads(data)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequestError(f"malformed JSON body: {exc}") from exc


def _build_codecs() -> dict[str, Codec]:
    codecs = {
        JSON_CONTENT_TYPE: Codec(
            "json", JSON_CONTENT_TYPE, _json_encode, _json_decode
        )
    }
    if os.environ.get("REPRO_NO_MSGPACK"):
        return codecs
    try:  # the optional C implementation wins when present
        import msgpack  # type: ignore[import-not-found]

        packb = lambda obj: msgpack.packb(obj)  # noqa: E731
        unpackb = lambda data: msgpack.unpackb(data, strict_map_key=False)  # noqa: E731
    except ImportError:
        from .msgpack_lite import packb, unpackb

    def _msgpack_decode(data: bytes) -> Any:
        try:
            return unpackb(data)
        except BadRequestError:
            raise
        except Exception as exc:
            raise BadRequestError(f"malformed msgpack body: {exc}") from exc

    codecs[MSGPACK_CONTENT_TYPE] = Codec(
        "msgpack", MSGPACK_CONTENT_TYPE, packb, _msgpack_decode
    )
    return codecs


_CODECS = _build_codecs()


def available_codecs() -> tuple[str, ...]:
    """Content types the server accepts, in preference order."""
    return tuple(_CODECS)


def default_codec() -> Codec:
    return _CODECS[JSON_CONTENT_TYPE]


def codec_for(content_type: str | None) -> Codec:
    """Resolve a ``Content-Type``/``Accept`` value to a codec.

    ``None``/empty and ``*/*`` mean JSON.  Parameters (``; charset=``)
    are ignored.  An unknown or disabled type raises
    :class:`~repro.exceptions.UnsupportedMediaTypeError` (HTTP 415).
    """
    if not content_type:
        return default_codec()
    base = content_type.split(";", 1)[0].strip().lower()
    if base in ("", "*/*", "application/*"):
        return default_codec()
    codec = _CODECS.get(base)
    if codec is None:
        raise UnsupportedMediaTypeError(
            f"unsupported wire format {base!r} "
            f"(available: {', '.join(_CODECS)})"
        )
    return codec


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------

#: Upper bound on cells per batch request — one request must not be able
#: to queue unbounded engine work past the admission controller.
MAX_BATCH = 4096

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class QueryRequest:
    """A validated read: one range per entry of ``ranges``."""

    tenant: str
    ranges: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    batch: bool  # was the payload the batch form?


@dataclass(frozen=True)
class UpdateRequest:
    """A validated write batch: ``(cell, delta)`` pairs."""

    tenant: str
    updates: tuple[tuple[tuple[int, ...], float], ...]


def _require_mapping(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise BadRequestError(
            f"request body must be an object, got {type(payload).__name__}"
        )
    return payload


def _tenant_of(payload: dict) -> str:
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
        raise BadRequestError("'tenant' must be a non-empty string (<=128 chars)")
    return tenant


def _cell(value: Any, field: str, dims: int) -> tuple[int, ...]:
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise BadRequestError(f"'{field}' must be a non-empty coordinate list")
    out = []
    for coord in value:
        if isinstance(coord, bool) or not isinstance(coord, int):
            raise BadRequestError(f"'{field}' coordinates must be integers")
        out.append(coord)
    if len(out) != dims:
        raise BadRequestError(
            f"'{field}' has {len(out)} coordinate(s), cube has {dims} dimension(s)"
        )
    return tuple(out)


def decode_query(payload: Any, dims: int) -> QueryRequest:
    """Validate a ``/query`` payload into a :class:`QueryRequest`.

    Accepted forms (``tenant`` optional in all of them)::

        {"op": "range_sum", "low": [...], "high": [...]}
        {"op": "prefix_sum", "cell": [...]}
        {"ranges": [[[lo...], [hi...]], ...]}          # batch
    """
    payload = _require_mapping(payload)
    tenant = _tenant_of(payload)
    if "ranges" in payload:
        raw = payload["ranges"]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequestError("'ranges' must be a non-empty list")
        if len(raw) > MAX_BATCH:
            raise BadRequestError(
                f"batch of {len(raw)} exceeds the {MAX_BATCH}-query limit"
            )
        ranges = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise BadRequestError(
                    "each 'ranges' entry must be a [low, high] pair"
                )
            ranges.append(
                (_cell(entry[0], "low", dims), _cell(entry[1], "high", dims))
            )
        return QueryRequest(tenant, tuple(ranges), batch=True)
    op = payload.get("op", "range_sum")
    if op == "range_sum":
        if "low" not in payload or "high" not in payload:
            raise BadRequestError("range_sum requires 'low' and 'high'")
        low = _cell(payload["low"], "low", dims)
        high = _cell(payload["high"], "high", dims)
        return QueryRequest(tenant, ((low, high),), batch=False)
    if op == "prefix_sum":
        if "cell" not in payload:
            raise BadRequestError("prefix_sum requires 'cell'")
        cell = _cell(payload["cell"], "cell", dims)
        return QueryRequest(tenant, (((0,) * dims, cell),), batch=False)
    raise BadRequestError(
        f"unknown op {op!r} (expected 'range_sum' or 'prefix_sum')"
    )


def decode_update(payload: Any, dims: int) -> UpdateRequest:
    """Validate an ``/update`` payload into an :class:`UpdateRequest`.

    Accepted forms::

        {"cell": [...], "delta": n}
        {"updates": [[[cell...], delta], ...]}         # batch
    """
    payload = _require_mapping(payload)
    tenant = _tenant_of(payload)
    if "updates" in payload:
        raw = payload["updates"]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequestError("'updates' must be a non-empty list")
        if len(raw) > MAX_BATCH:
            raise BadRequestError(
                f"batch of {len(raw)} exceeds the {MAX_BATCH}-update limit"
            )
        updates = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise BadRequestError(
                    "each 'updates' entry must be a [cell, delta] pair"
                )
            updates.append((_cell(entry[0], "cell", dims), _delta(entry[1])))
        return UpdateRequest(tenant, tuple(updates))
    if "cell" not in payload or "delta" not in payload:
        raise BadRequestError("update requires 'cell' and 'delta'")
    return UpdateRequest(
        tenant, ((_cell(payload["cell"], "cell", dims), _delta(payload["delta"])),)
    )


def _delta(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError("'delta' must be a number")
    return value


# ----------------------------------------------------------------------
# Response documents
# ----------------------------------------------------------------------


def _plain(value: Any) -> Any:
    """Unwrap one engine answer into a JSON-safe scalar."""
    if is_partial(value):
        value = value.value
    value = getattr(value, "item", lambda: value)()
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _result_entry(value: Any) -> dict:
    entry: dict[str, Any] = {"value": _plain(value)}
    if is_partial(value):
        entry["partial"] = True
        entry["missing_shards"] = sorted(value.missing_shards)
    return entry


def query_response(
    results: Sequence[Any], *, batch: bool, coalesced: bool, shed: bool
) -> dict:
    """The ``/query`` response document.

    ``partial: true`` marks any answer the engine degraded (missing
    shards are named); ``shed: true`` marks a request served while the
    server was load-shedding; ``coalesced: true`` marks a follower that
    joined another request's in-flight engine call.
    """
    entries = [_result_entry(value) for value in results]
    partial = any(entry.get("partial") for entry in entries)
    if batch:
        body: dict[str, Any] = {"results": entries}
    else:
        body = dict(entries[0])
    body["partial"] = partial
    body["coalesced"] = coalesced
    body["shed"] = shed
    return body


def update_response(applied: int) -> dict:
    return {"ok": True, "applied": applied}


def error_body(status: int, message: str) -> dict:
    return {"error": message, "status": status}
