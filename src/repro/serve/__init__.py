"""HTTP serving front-end for the sharded engine.

The roadmap's serving layer: :class:`CubeServer` speaks HTTP/1.1
JSON/msgpack over a :class:`~repro.engine.ShardedEngine`, with
single-flight coalescing of identical in-flight reads, per-tenant
token-bucket admission, a global concurrency gate, and pressure-driven
load shedding that degrades strict answers to partial ones before
refusing work outright.  :class:`ServeClient` is the matching client
used by the load generator, the CI smoke job, and the tests.

See ``docs/serving.md`` for the wire format and operational semantics.
"""

from .admission import AdmissionPolicy, ConcurrencyGate, TenantBuckets, TokenBucket
from .client import ServeClient, ServeResponse
from .coalesce import SingleFlight
from .server import CubeServer
from .wire import (
    Codec,
    QueryRequest,
    UpdateRequest,
    available_codecs,
    codec_for,
    decode_query,
    decode_update,
    default_codec,
)

__all__ = [
    "AdmissionPolicy",
    "Codec",
    "ConcurrencyGate",
    "CubeServer",
    "QueryRequest",
    "ServeClient",
    "ServeResponse",
    "SingleFlight",
    "TenantBuckets",
    "TokenBucket",
    "UpdateRequest",
    "available_codecs",
    "codec_for",
    "decode_query",
    "decode_update",
    "default_codec",
]
