"""A minimal asyncio client for :class:`~repro.serve.CubeServer`.

Stdlib-only, persistent-connection HTTP/1.1 — the exact counterpart of
the server's parser.  The load generator (``benchmarks/bench_serve.py``),
the CI smoke job, and the serve tests all speak through this class, so
wire-format regressions surface as test failures rather than silent
drift between ad-hoc request builders.

One :class:`ServeClient` is one connection driven from one event loop —
the closed-loop bench opens N clients for N concurrent users.  The
connection reopens transparently after a server-side close (idle
timeout, drain, ``Connection: close``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from ..exceptions import ServeError
from .wire import codec_for

__all__ = ["ServeClient", "ServeResponse"]


class ServeResponse:
    """One decoded HTTP response."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict, body: Any) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServeResponse(status={self.status}, body={self.body!r})"


class ServeClient:
    """Persistent-connection client for one serve endpoint.

    Args:
        host/port: the server's bind address.
        codec: wire format name — ``"json"`` (default) or ``"msgpack"``.
        tenant: tenant string stamped on every query/update.
    """

    def __init__(
        self,
        host: str,
        port: int,
        codec: str = "json",
        tenant: str = "default",
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        content_type = f"application/{codec}"
        self.codec = codec_for(content_type)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Raw request/response
    # ------------------------------------------------------------------

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> ServeResponse:
        """Send one request, reconnecting once if the connection died."""
        body = b"" if payload is None else self.codec.encode(payload)
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._round_trip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise ServeError("unreachable")  # pragma: no cover

    async def _round_trip(
        self, method: str, path: str, body: bytes
    ) -> ServeResponse:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {self.codec.content_type}\r\n"
            f"Accept: {self.codec.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        if self._writer is None or self._reader is None:
            raise ServeError("client is not connected")
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        raw_head = await self._reader.readuntil(b"\r\n\r\n")
        lines = raw_head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw_body = await self._reader.readexactly(length) if length else b""
        content_type = headers.get("content-type", "")
        if content_type.startswith("text/"):
            decoded: Any = raw_body.decode("utf-8")
        elif raw_body:
            decoded = codec_for(content_type or None).decode(raw_body)
        else:
            decoded = None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ServeResponse(status, headers, decoded)

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------

    async def query(
        self, low: Sequence[int], high: Sequence[int]
    ) -> ServeResponse:
        return await self.request(
            "POST",
            "/query",
            {
                "tenant": self.tenant,
                "op": "range_sum",
                "low": list(low),
                "high": list(high),
            },
        )

    async def prefix_sum(self, cell: Sequence[int]) -> ServeResponse:
        return await self.request(
            "POST",
            "/query",
            {"tenant": self.tenant, "op": "prefix_sum", "cell": list(cell)},
        )

    async def query_batch(self, ranges: Sequence) -> ServeResponse:
        return await self.request(
            "POST",
            "/query",
            {
                "tenant": self.tenant,
                "ranges": [[list(low), list(high)] for low, high in ranges],
            },
        )

    async def update(self, cell: Sequence[int], delta) -> ServeResponse:
        return await self.request(
            "POST",
            "/update",
            {"tenant": self.tenant, "cell": list(cell), "delta": delta},
        )

    async def update_many(self, updates: Sequence) -> ServeResponse:
        return await self.request(
            "POST",
            "/update",
            {
                "tenant": self.tenant,
                "updates": [[list(cell), delta] for cell, delta in updates],
            },
        )

    async def healthz(self) -> ServeResponse:
        return await self.request("GET", "/healthz")

    async def metrics(self, fmt: str = "prometheus") -> ServeResponse:
        path = "/metrics" if fmt == "prometheus" else f"/metrics?format={fmt}"
        return await self.request("GET", path)
