"""Admission control for the serving front-end.

Two independent gates stand between a parsed request and the engine:

* **Per-tenant token buckets** (:class:`TenantBuckets`) — classic
  rate + burst buckets keyed by the request's tenant string.  A tenant
  over its rate gets HTTP 429 with a ``Retry-After`` telling it when
  the next token accrues.  Buckets refill continuously on the injected
  clock (the same :mod:`repro.obs.clock` discipline the engine uses,
  so tests drive them with a ``ManualClock``).  The table is bounded:
  when more than ``max_tenants`` distinct tenants appear, the
  least-recently-seen bucket is evicted — an evicted tenant simply
  starts over with a full burst.

* **A global concurrency gate** (:class:`ConcurrencyGate`) — at most
  ``max_concurrency`` engine calls run at once; up to ``max_queue``
  more may wait.  Beyond that the server sheds with HTTP 503.  The
  gate's *pressure* (occupied slots / capacity) also drives graceful
  degradation: above ``shed_watermark`` the server flips the engine
  from strict to partial mode (see ``server.py``) so slow or failed
  shards stop holding answers hostage exactly when capacity is
  scarcest.

Everything here is event-loop-local state — mutated only from the
server's single loop thread, so no locks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["AdmissionPolicy", "TokenBucket", "TenantBuckets", "ConcurrencyGate"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The serving front-end's complete admission configuration.

    Args:
        tenant_rate: tokens/second refilled per tenant; ``0`` disables
            per-tenant throttling entirely.
        tenant_burst: bucket capacity — the instantaneous burst a
            tenant may spend before the rate applies.
        max_concurrency: engine calls allowed in flight at once.
        max_queue: additional requests allowed to wait for a slot;
            arrivals beyond that are shed with 503.
        shed_watermark: gate pressure (occupancy fraction, queue
            included) at which the server degrades strict → partial.
            ``>= 1 + max_queue/max_concurrency`` never sheds; ``0``
            sheds always (useful in tests).
        retry_after_seconds: ``Retry-After`` floor for 503 responses
            (429 computes the exact token-accrual wait instead).
        max_tenants: bound on the bucket table (LRU-evicted beyond).
        drain_seconds: graceful-shutdown budget for in-flight requests.
    """

    tenant_rate: float = 0.0
    tenant_burst: int = 8
    max_concurrency: int = 64
    max_queue: int = 1024
    shed_watermark: float = 0.75
    retry_after_seconds: float = 1.0
    max_tenants: int = 4096
    drain_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.tenant_rate < 0:
            raise ConfigurationError("tenant_rate must be >= 0")
        if self.tenant_burst < 1:
            raise ConfigurationError("tenant_burst must be >= 1")
        if self.max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be >= 1")
        if self.max_queue < 0:
            raise ConfigurationError("max_queue must be >= 0")
        if self.shed_watermark < 0:
            raise ConfigurationError("shed_watermark must be >= 0")
        if self.retry_after_seconds <= 0:
            raise ConfigurationError("retry_after_seconds must be positive")
        if self.max_tenants < 1:
            raise ConfigurationError("max_tenants must be >= 1")
        if self.drain_seconds < 0:
            raise ConfigurationError("drain_seconds must be >= 0")


class TokenBucket:
    """One tenant's continuous-refill token bucket."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available.

        Returns ``0.0`` on success, else the seconds until enough
        tokens will have accrued (the 429 ``Retry-After``).
        """
        if now > self.stamp:
            self.tokens = min(
                self.burst, self.tokens + (now - self.stamp) * self.rate
            )
        self.stamp = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return 0.0
        return (tokens - self.tokens) / self.rate


class TenantBuckets:
    """Bounded LRU table of per-tenant :class:`TokenBucket` instances."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.throttled = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def try_acquire(self, tenant: str, now: float, tokens: float = 1.0) -> float:
        """0.0 when admitted, else the tenant's ``Retry-After`` seconds."""
        if self.policy.tenant_rate <= 0:
            return 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.policy.tenant_rate, self.policy.tenant_burst, now
            )
            self._buckets[tenant] = bucket
            while len(self._buckets) > self.policy.max_tenants:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(tenant)
        retry_after = bucket.try_acquire(now, tokens)
        if retry_after > 0:
            self.throttled += 1
        return retry_after


class ConcurrencyGate:
    """Counting gate over engine calls: run slots plus a bounded queue.

    Loop-local; callers ``await acquire()`` / ``release()`` around the
    engine call.  ``pressure`` counts queued waiters too, so shedding
    reacts to demand, not just to occupancy.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        import asyncio

        self.policy = policy
        self._semaphore = asyncio.Semaphore(policy.max_concurrency)
        self.inflight = 0
        self.waiting = 0
        self.rejected = 0
        self.peak_pressure = 0.0

    @property
    def pressure(self) -> float:
        """Demand as a fraction of run capacity (queue included)."""
        return (self.inflight + self.waiting) / self.policy.max_concurrency

    def would_overflow(self) -> bool:
        """True when one more arrival must be shed with 503."""
        occupied = self.inflight + self.waiting
        if occupied + 1 > self.policy.max_concurrency + self.policy.max_queue:
            self.rejected += 1
            return True
        return False

    async def acquire(self) -> None:
        self.waiting += 1
        self.peak_pressure = max(self.peak_pressure, self.pressure)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.inflight += 1

    def release(self) -> None:
        self.inflight -= 1
        self._semaphore.release()
