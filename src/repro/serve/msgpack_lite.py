"""Minimal pure-python MessagePack codec for the serving wire format.

The serving front-end offers ``application/msgpack`` next to JSON.  When
the real ``msgpack`` package is installed its C packer is used; this
module is the dependency-free fallback so the binary wire format (and
its parity tests) work everywhere the library does.  Only the subset the
wire format needs is implemented — nil, bool, int, float, str, bin,
array, map — and the encodings are the standard ones, so payloads packed
here unpack with the real library and vice versa.
"""

from __future__ import annotations

import struct
from typing import Any

from ..exceptions import BadRequestError

__all__ = ["packb", "unpackb"]

_MAX_CONTAINER = 1 << 24  # sanity bound on decoded container sizes


def _pack_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(0xC0)
    elif obj is True:
        out.append(0xC3)
    elif obj is False:
        out.append(0xC2)
    elif isinstance(obj, int):
        _pack_int(obj, out)
    elif isinstance(obj, float):
        out.append(0xCB)
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        size = len(data)
        if size < 32:
            out.append(0xA0 | size)
        elif size < 1 << 8:
            out += struct.pack(">BB", 0xD9, size)
        elif size < 1 << 16:
            out += struct.pack(">BH", 0xDA, size)
        else:
            out += struct.pack(">BI", 0xDB, size)
        out += data
    elif isinstance(obj, (bytes, bytearray)):
        size = len(obj)
        if size < 1 << 8:
            out += struct.pack(">BB", 0xC4, size)
        elif size < 1 << 16:
            out += struct.pack(">BH", 0xC5, size)
        else:
            out += struct.pack(">BI", 0xC6, size)
        out += obj
    elif isinstance(obj, (list, tuple)):
        size = len(obj)
        if size < 16:
            out.append(0x90 | size)
        elif size < 1 << 16:
            out += struct.pack(">BH", 0xDC, size)
        else:
            out += struct.pack(">BI", 0xDD, size)
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, dict):
        size = len(obj)
        if size < 16:
            out.append(0x80 | size)
        elif size < 1 << 16:
            out += struct.pack(">BH", 0xDE, size)
        else:
            out += struct.pack(">BI", 0xDF, size)
        for key, value in obj.items():
            _pack_into(key, out)
            _pack_into(value, out)
    else:
        raise BadRequestError(
            f"msgpack wire format cannot encode {type(obj).__name__}"
        )


def _pack_int(value: int, out: bytearray) -> None:
    if 0 <= value < 0x80:
        out.append(value)
    elif -32 <= value < 0:
        out.append(value & 0xFF)
    elif 0 <= value < 1 << 8:
        out += struct.pack(">BB", 0xCC, value)
    elif 0 <= value < 1 << 16:
        out += struct.pack(">BH", 0xCD, value)
    elif 0 <= value < 1 << 32:
        out += struct.pack(">BI", 0xCE, value)
    elif 0 <= value < 1 << 64:
        out += struct.pack(">BQ", 0xCF, value)
    elif -(1 << 7) <= value < 0:
        out += struct.pack(">Bb", 0xD0, value)
    elif -(1 << 15) <= value < 0:
        out += struct.pack(">Bh", 0xD1, value)
    elif -(1 << 31) <= value < 0:
        out += struct.pack(">Bi", 0xD2, value)
    elif -(1 << 63) <= value < 0:
        out += struct.pack(">Bq", 0xD3, value)
    else:
        raise BadRequestError("msgpack wire format integer out of 64-bit range")


def packb(obj: Any) -> bytes:
    """Serialise ``obj`` to MessagePack bytes."""
    out = bytearray()
    _pack_into(obj, out)
    return bytes(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise BadRequestError("truncated msgpack payload")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: str, size: int):
        return struct.unpack(fmt, self.take(size))[0]


def _unpack_one(reader: _Reader) -> Any:
    marker = reader.take(1)[0]
    if marker < 0x80:  # positive fixint
        return marker
    if marker >= 0xE0:  # negative fixint
        return marker - 0x100
    if 0x80 <= marker < 0x90:  # fixmap
        return _unpack_map(reader, marker & 0x0F)
    if 0x90 <= marker < 0xA0:  # fixarray
        return _unpack_array(reader, marker & 0x0F)
    if 0xA0 <= marker < 0xC0:  # fixstr
        return _decode_str(reader.take(marker & 0x1F))
    if marker == 0xC0:
        return None
    if marker == 0xC2:
        return False
    if marker == 0xC3:
        return True
    if marker == 0xC4:
        return reader.take(reader.unpack(">B", 1))
    if marker == 0xC5:
        return reader.take(reader.unpack(">H", 2))
    if marker == 0xC6:
        return reader.take(reader.unpack(">I", 4))
    if marker == 0xCA:
        return reader.unpack(">f", 4)
    if marker == 0xCB:
        return reader.unpack(">d", 8)
    if marker == 0xCC:
        return reader.unpack(">B", 1)
    if marker == 0xCD:
        return reader.unpack(">H", 2)
    if marker == 0xCE:
        return reader.unpack(">I", 4)
    if marker == 0xCF:
        return reader.unpack(">Q", 8)
    if marker == 0xD0:
        return reader.unpack(">b", 1)
    if marker == 0xD1:
        return reader.unpack(">h", 2)
    if marker == 0xD2:
        return reader.unpack(">i", 4)
    if marker == 0xD3:
        return reader.unpack(">q", 8)
    if marker == 0xD9:
        return _decode_str(reader.take(reader.unpack(">B", 1)))
    if marker == 0xDA:
        return _decode_str(reader.take(reader.unpack(">H", 2)))
    if marker == 0xDB:
        return _decode_str(reader.take(reader.unpack(">I", 4)))
    if marker == 0xDC:
        return _unpack_array(reader, reader.unpack(">H", 2))
    if marker == 0xDD:
        return _unpack_array(reader, reader.unpack(">I", 4))
    if marker == 0xDE:
        return _unpack_map(reader, reader.unpack(">H", 2))
    if marker == 0xDF:
        return _unpack_map(reader, reader.unpack(">I", 4))
    raise BadRequestError(f"unsupported msgpack marker 0x{marker:02x}")


def _decode_str(data: bytes) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadRequestError("msgpack string is not valid UTF-8") from exc


def _unpack_array(reader: _Reader, size: int) -> list:
    if size > _MAX_CONTAINER:
        raise BadRequestError("msgpack array too large")
    return [_unpack_one(reader) for _ in range(size)]


def _unpack_map(reader: _Reader, size: int) -> dict:
    if size > _MAX_CONTAINER:
        raise BadRequestError("msgpack map too large")
    out = {}
    for _ in range(size):
        key = _unpack_one(reader)
        out[key] = _unpack_one(reader)
    return out


def unpackb(data: bytes) -> Any:
    """Deserialise one MessagePack value; trailing bytes are an error."""
    reader = _Reader(bytes(data))
    value = _unpack_one(reader)
    if reader.pos != len(reader.data):
        raise BadRequestError("trailing bytes after msgpack payload")
    return value
