"""Command-line interface: build, query, update, and inspect data cubes.

Examples::

    # build a DDC from a CSV of (x, y, value) records and save it
    python -m repro build points.csv cube.npz --method ddc --dims 2

    # range-sum query over an inclusive box
    python -m repro query cube.npz --low 0 0 --high 63 63

    # apply a point update and persist the change
    python -m repro update cube.npz --cell 10 12 --delta 5

    # structure, storage, and cost statistics
    python -m repro info cube.npz

    # deep-check every structural invariant (non-zero exit on failure)
    python -m repro audit cube.npz

    # regenerate the paper's analytic artifacts
    python -m repro table1
    python -m repro table2
    python -m repro figure1

    # batch-query throughput for one method, with a JSON artifact
    python -m repro bench-batch --method ddc --shape 256 256 --batch 256

    # sharded-engine serving throughput vs the unsharded scalar baseline
    python -m repro bench-engine --shape 256 256 --shards 4 --mix 0.9

    # same measurement over the process executor: shards served from
    # shared-memory prefix slabs by a persistent worker-process pool
    python -m repro bench-engine --shards 4 --executor process

    # replay a serving workload and print per-shard/cache statistics
    # (including p50/p95/p99 shard latency from the live histograms)
    python -m repro serve-stats --shape 128 128 --shards 4 --events 500

    # same replay, dumping the metrics registry instead
    python -m repro metrics --format prom
    python -m repro metrics --format json

    # same replay, printing the N slowest span trees + slow-query log
    # (optionally also as a chrome://tracing / Perfetto document)
    python -m repro trace --slowest 3 --slow-ms 0.5 --chrome trace.json

    # live serving dashboard: per-worker latency tables harvested from
    # the pool's shared-memory metric shards + the SLO verdict
    python -m repro top --executor process --iterations 3
    python -m repro top --executor process --once   # CI smoke mode

    # deterministic fault-injection soak: inject transient faults into
    # >= 20% of shard sub-operations and cross-check every answer
    # against the unsharded reference (non-zero exit on any mismatch)
    python -m repro chaos --events 400 --fault-rate 0.25 --mode fallback

    # same soak with the runtime lock sanitizer attached: lock-order
    # inversions and unguarded shared-state mutations exit 2
    python -m repro chaos --sanitize

    # soak the worker-process pool, SIGKILLing real workers mid-query;
    # recovery must stay exact (slabs + ledger replay survive the kill)
    python -m repro chaos --executor process --kill-rate 0.05

    # CFG/dataflow analyses (REP009-REP012) against the committed baseline
    python -m repro analyze src/ --baseline benchmarks/baselines/analyze.json
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from .methods.registry import create_method, method_names
from .model import (
    figure1_series,
    render_figure1,
    render_table1,
    render_table2,
    table1,
    table2,
)
from .persist import load_cube, save_cube

__all__ = ["build_parser", "main"]


def _read_records(path: Path, dims: int) -> list[tuple[tuple[int, ...], float]]:
    """Parse CSV rows of ``coord_1, ..., coord_d, value``.

    A non-numeric first row is treated as a header and skipped.
    """
    records = []
    with open(path, newline="") as handle:
        for row_number, row in enumerate(csv.reader(handle)):
            if not row or all(not field.strip() for field in row):
                continue
            if len(row) != dims + 1:
                raise SystemExit(
                    f"{path}:{row_number + 1}: expected {dims + 1} columns "
                    f"(got {len(row)})"
                )
            try:
                cell = tuple(int(field) for field in row[:dims])
                value = float(row[dims])
            except ValueError:
                if row_number == 0:
                    continue  # header
                raise SystemExit(
                    f"{path}:{row_number + 1}: non-numeric row {row!r}"
                ) from None
            records.append((cell, value))
    return records


def _command_build(args) -> int:
    source = Path(args.source)
    if source.suffix == ".npy":
        dense = np.load(source)
        shape = dense.shape
        records = None
    else:
        records = _read_records(source, args.dims)
        if not records:
            raise SystemExit(f"{source}: no records found")
        shape = tuple(
            max(cell[axis] for cell, _ in records) + 1 for axis in range(args.dims)
        )
        dense = None
    dtype = np.float64 if args.float else np.int64
    method = create_method(args.method, shape, dtype=dtype)
    if dense is not None:
        method = type(method).from_array(dense.astype(dtype), dtype=dtype)
    else:
        method.add_many(
            [(cell, value if args.float else int(value)) for cell, value in records]
        )
    save_cube(method, args.cube)
    print(
        f"built {args.method} cube of shape {method.shape} "
        f"({method.memory_cells():,} stored cells) -> {args.cube}"
    )
    return 0


def _command_query(args) -> int:
    cube = load_cube(args.cube)
    if args.high is None:
        result = cube.prefix_sum(tuple(args.low))
        print(result)
    else:
        result = cube.range_sum(tuple(args.low), tuple(args.high))
        print(result)
    return 0


def _command_update(args) -> int:
    cube = load_cube(args.cube)
    delta = args.delta
    cube.add(tuple(args.cell), delta)
    save_cube(cube, args.cube)
    print(f"cell {tuple(args.cell)} += {delta}; new total {cube.total()}")
    return 0


def _command_info(args) -> int:
    cube = load_cube(args.cube)
    from .core.growth import GrowableCube

    if isinstance(cube, GrowableCube):
        print("kind:          growable cube")
        print(f"dims:          {cube.dims}")
        print(f"origin:        {cube.origin}")
        print(f"side:          {cube.side}")
        print(f"bounds:        {cube.bounds}")
        print(f"total:         {cube.total()}")
        print(f"stored cells:  {cube.memory_cells():,}")
        return 0
    print(f"method:        {cube.name}")
    print(f"shape:         {cube.shape}")
    print(f"dtype:         {cube.dtype}")
    print(f"total:         {cube.total()}")
    print(f"stored cells:  {cube.memory_cells():,}")
    logical = 1
    for size in cube.shape:
        logical *= size
    print(f"logical cells: {logical:,}")
    print(f"overhead:      {cube.memory_cells() / logical:.3f}x")
    return 0


def _command_audit(args) -> int:
    from .analysis import audit

    cube = load_cube(args.cube)
    report = audit(cube, raise_on_failure=False)
    print(report.render())
    return 0 if report.ok else 1


def _merge_artifact_row(
    path: Path, experiment: str, row: dict, key_fields: tuple[str, ...]
) -> None:
    """Upsert ``row`` into a shared-schema JSON artifact.

    Rows agreeing with ``row`` on every ``key_fields`` entry are
    replaced, so repeated CLI runs refresh instead of duplicating.  The
    document shape (and its ``schema_version``) comes from
    :mod:`repro.artifacts` — the same schema the benchmark suite writes.
    """
    from .artifacts import load_document, upsert_row, write_document

    document = load_document(path, experiment)
    upsert_row(document, row, key_fields)
    write_document(path, document)
    print(f"wrote {path}")


def _command_bench_batch(args) -> int:
    import time

    from .methods.registry import build_method
    from .workloads import clustered, query_stream

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    method = build_method(args.method, data)
    cells = query_stream(
        shape, args.batch, locality=args.locality, seed=args.seed + 1
    )

    method.stats.reset()
    start = time.perf_counter()
    batch_results = method.prefix_sum_many(cells)
    batch_seconds = time.perf_counter() - start
    batch_stats = method.stats.snapshot()
    path = method.last_batch_path

    method.stats.reset()
    start = time.perf_counter()
    scalar_results = [method.prefix_sum(cell) for cell in cells]
    scalar_seconds = time.perf_counter() - start
    scalar_stats = method.stats.snapshot()

    if [int(v) for v in batch_results] != [int(v) for v in scalar_results]:
        raise SystemExit(
            f"batch/scalar mismatch for method {args.method!r} — "
            "prefix_sum_many disagrees with prefix_sum"
        )

    # Below the method's adaptive crossover the "batch" call *is* the
    # scalar loop, so any measured difference is pure timing noise; the
    # speedup is 1.0 by construction (raw timings are still recorded).
    speedup = (
        1.0
        if path == "scalar"
        else (scalar_seconds / batch_seconds if batch_seconds else None)
    )
    row = {
        "method": args.method,
        "shape": list(shape),
        "locality": args.locality,
        "batch": args.batch,
        "path": path,
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "queries_per_second": args.batch / batch_seconds if batch_seconds else None,
        "speedup": speedup,
        "node_visits_batch": batch_stats.node_visits,
        "node_visits_scalar": scalar_stats.node_visits,
        "cell_reads_batch": batch_stats.cell_reads,
        "cell_reads_scalar": scalar_stats.cell_reads,
    }

    print(
        f"{'method':<10} {'shape':<12} {'locality':<8} {'batch':>6} "
        f"{'path':<6} {'batch s':>10} {'scalar s':>10} {'speedup':>8} "
        f"{'visits(b)':>10} {'visits(s)':>10}"
    )
    print(
        f"{row['method']:<10} {'x'.join(map(str, shape)):<12} "
        f"{row['locality']:<8} {row['batch']:>6} {row['path']:<6} "
        f"{row['batch_seconds']:>10.4f} {row['scalar_seconds']:>10.4f} "
        f"{row['speedup']:>8.2f} "
        f"{row['node_visits_batch']:>10} {row['node_visits_scalar']:>10}"
    )

    _merge_artifact_row(
        Path(args.json),
        "batch_queries",
        row,
        ("method", "shape", "locality", "batch"),
    )
    return 0


def _command_bench_descent(args) -> int:
    import time

    import numpy as np

    from .core.slab_tree import expand_corners, kernel_backend
    from .methods.registry import build_method
    from .workloads import clustered, query_stream

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    vector = build_method("vector", data)
    vector.batch_crossover_override = 1
    reference = build_method("ddc", data)
    cells = query_stream(
        shape, args.batch, locality=args.locality, seed=args.seed + 1
    )
    spans = [max(1, int(size * args.extent)) for size in shape]
    ranges = [
        (
            low := tuple(
                min(cell[axis], shape[axis] - spans[axis])
                for axis in range(len(shape))
            ),
            tuple(low[axis] + spans[axis] - 1 for axis in range(len(shape))),
        )
        for cell in cells
    ]

    vector_results = vector.range_sum_many(ranges)
    reference_results = reference.range_sum_many(ranges)
    if [int(v) for v in vector_results] != [int(v) for v in reference_results]:
        raise SystemExit(
            "vector/reference mismatch — the slab-tree descent disagrees "
            "with the pure-python DDC"
        )
    vector_seconds = ddc_seconds = None
    for _ in range(args.reps):
        start = time.perf_counter()
        vector.range_sum_many(ranges)
        elapsed = time.perf_counter() - start
        if vector_seconds is None or elapsed < vector_seconds:
            vector_seconds = elapsed
        start = time.perf_counter()
        reference.range_sum_many(ranges)
        elapsed = time.perf_counter() - start
        if ddc_seconds is None or elapsed < ddc_seconds:
            ddc_seconds = elapsed

    tree = vector.tree
    lows = np.asarray([low for low, _ in ranges], dtype=np.int64)
    highs = np.asarray([high for _, high in ranges], dtype=np.int64)
    corners, _, _ = expand_corners(lows, highs)
    print(
        f"{'locality':<8} {'batch':>6} {'kernel':<7} {'vector s':>10} "
        f"{'ddc s':>10} {'speedup':>8}"
    )
    print(
        f"{args.locality:<8} {args.batch:>6} {kernel_backend():<7} "
        f"{vector_seconds:>10.6f} {ddc_seconds:>10.6f} "
        f"{ddc_seconds / vector_seconds:>8.1f}"
    )
    print(f"\nper-level gathers over {corners.shape[0]} corner coordinates:")
    for index, layout in enumerate(tree.level_layout()):
        best = None
        for _ in range(args.reps):
            start = time.perf_counter()
            tree.gather_level(index, corners)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        print(
            f"  level {index} combo={layout['combo']} "
            f"cells={layout['cells']:,} gather={best:.7f}s"
        )

    row = {
        "shape": list(shape),
        "locality": args.locality,
        "batch": args.batch,
        "kernel": kernel_backend(),
        "levels": tree.level_count,
        "vector_seconds": vector_seconds,
        "ddc_seconds": ddc_seconds,
        "speedup_vs_ddc": (
            ddc_seconds / vector_seconds if vector_seconds else None
        ),
        "queries_per_second": (
            args.batch / vector_seconds if vector_seconds else None
        ),
    }
    _merge_artifact_row(
        Path(args.json),
        "descent",
        row,
        ("shape", "locality", "batch"),
    )
    return 0


def _run_serving_stream(target, events) -> list:
    """Replay a read/write event stream against one serving target.

    ``target`` is anything with the RangeSumMethod contract (a bare
    structure or a ShardedEngine); returns the read results so callers
    can cross-check equivalence between targets.
    """
    from .workloads import RangeQuery

    reads = []
    for event in events:
        if isinstance(event, RangeQuery):
            reads.append(target.range_sum(event.low, event.high))
        else:
            target.add(event.cell, event.delta)
    return reads


def _command_bench_engine(args) -> int:
    import time

    from .engine import ShardedEngine
    from .methods.registry import build_method
    from .workloads import clustered, read_write_stream

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    events = read_write_stream(
        shape,
        args.events,
        mix=args.mix,
        locality=args.locality,
        pool=args.pool,
        seed=args.seed + 1,
    )

    baseline = build_method(args.method, data)
    start = time.perf_counter()
    baseline_reads = _run_serving_stream(baseline, events)
    baseline_seconds = time.perf_counter() - start

    engine = ShardedEngine.from_array(
        data,
        shards=args.shards,
        method=args.method,
        workers=args.workers or None,
        executor=args.executor,
        cache_size=args.cache,
    )
    executor_kind = args.executor or (
        "thread" if (args.workers or 0) > 1 and args.shards > 1 else "serial"
    )
    engine.reset_stats()
    start = time.perf_counter()
    engine_reads = _run_serving_stream(engine, events)
    engine_seconds = time.perf_counter() - start
    info = engine.cache_info()
    engine.close()

    if [int(v) for v in engine_reads] != [int(v) for v in baseline_reads]:
        raise SystemExit(
            f"engine/baseline mismatch for method {args.method!r} — "
            "sharded cached serving disagrees with the scalar structure"
        )

    row = {
        "shape": list(shape),
        "method": args.method,
        "shards": args.shards,
        "workers": args.workers,
        "executor": executor_kind,
        "mix": args.mix,
        "locality": args.locality,
        "events": len(events),
        "engine_seconds": engine_seconds,
        "baseline_seconds": baseline_seconds,
        "events_per_second": (
            len(events) / engine_seconds if engine_seconds else None
        ),
        "baseline_events_per_second": (
            len(events) / baseline_seconds if baseline_seconds else None
        ),
        "speedup_vs_scalar": (
            baseline_seconds / engine_seconds if engine_seconds else None
        ),
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
        "cache_hit_rate": info["hit_rate"],
    }
    print(
        f"{'shards':>6} {'executor':<8} {'workers':>7} {'mix':>5} "
        f"{'locality':<8} "
        f"{'engine s':>10} {'scalar s':>10} {'speedup':>8} {'hit rate':>9}"
    )
    print(
        f"{row['shards']:>6} {row['executor']:<8} {row['workers']:>7} "
        f"{row['mix']:>5.2f} "
        f"{row['locality']:<8} {row['engine_seconds']:>10.4f} "
        f"{row['baseline_seconds']:>10.4f} {row['speedup_vs_scalar']:>8.2f} "
        f"{row['cache_hit_rate']:>9.2%}"
    )
    _merge_artifact_row(
        Path(args.json),
        "engine_throughput",
        row,
        (
            "shape", "method", "shards", "workers", "executor",
            "mix", "locality", "events",
        ),
    )
    return 0


def _traced_replay(args):
    """Build an engine with observability wired and replay the workload.

    Shared by ``serve-stats`` / ``metrics`` / ``trace``: one clustered
    cube, one read/write stream, one instrumented engine.  Returns
    ``(obs, engine, events, pool)`` with the engine already closed;
    ``pool`` is the worker-pool snapshot captured *before* shutdown
    (None outside process mode).
    """
    from .engine import ShardedEngine
    from .obs import Observability
    from .workloads import clustered, read_write_stream

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    events = read_write_stream(
        shape,
        args.events,
        mix=args.mix,
        locality=args.locality,
        seed=args.seed + 1,
    )
    obs = Observability(
        trace_sample_every=getattr(args, "sample_every", 1),
        slow_query_seconds=getattr(args, "slow_ms", 0.0) / 1e3,
    )
    engine = ShardedEngine.from_array(
        data,
        shards=args.shards,
        method=args.method,
        workers=args.workers or None,
        executor=args.executor,
        cache_size=args.cache,
        obs=obs,
        ipc_reads=getattr(args, "ipc_reads", False),
    )
    engine.reset_stats()
    _run_serving_stream(engine, events)
    if engine.process_pool is not None:
        # Ship any still-buffered write deltas so the workers' final
        # apply timings are published, then pull every worker's metric
        # shard into the parent registry before it renders.
        engine.process_pool.flush()
    engine.harvest_worker_metrics()
    pool = engine.pool_info()
    engine.close()
    return obs, engine, events, pool


def _command_serve_stats(args) -> int:
    obs, engine, events, pool = _traced_replay(args)

    print(f"engine:    {engine!r}")
    print(f"events:    {len(events)} ({args.mix:.0%} reads, {args.locality})")
    info = engine.cache_info()
    print(
        f"cache:     {info['hits']} hits / {info['misses']} misses "
        f"(hit rate {info['hit_rate']:.2%}), {info['size']}/{info['capacity']} "
        f"entries, {info['invalidations']} invalidations, "
        f"{info['evictions']} evictions ({info['stale_evictions']} stale)"
    )
    merged = engine.aggregate_stats()
    print(
        f"ops:       reads={merged.cell_reads} writes={merged.cell_writes} "
        f"node_visits={merged.node_visits}"
    )
    latency = obs.metrics.histogram(
        "repro_engine_shard_seconds",
        "Per-shard sub-operation latency.",
        labels=("shard", "op"),
    )
    print(f"{'shard':>5} {'span':<14} {'epoch':>6} {'cells':>10} "
          f"{'visits':>8} {'reads':>8} {'writes':>8} "
          f"{'p50us':>8} {'p95us':>8} {'p99us':>8}")
    for shard_row in engine.shard_report():
        span = f"[{shard_row['span'][0]}, {shard_row['span'][1]})"
        child = latency.labels(shard=str(shard_row["shard"]), op="range_sum")
        p50, p95, p99 = (child.quantile(q) * 1e6 for q in (0.5, 0.95, 0.99))
        print(
            f"{shard_row['shard']:>5} {span:<14} {shard_row['epoch']:>6} "
            f"{shard_row['memory_cells']:>10,} {shard_row['node_visits']:>8,} "
            f"{shard_row['cell_reads']:>8,} {shard_row['cell_writes']:>8,} "
            f"{p50:>8.1f} {p95:>8.1f} {p99:>8.1f}"
        )
    if pool is not None:
        print(
            f"pool:      {pool['workers']} worker(s) "
            f"({pool['start_method']} start, "
            f"{'ipc' if pool['ipc_reads'] else 'direct'} reads), "
            f"{pool['restarts']} restart(s), "
            f"{pool['buffered_deltas']} buffered delta(s)"
        )
        for lane in pool["lanes"]:
            shards = ", ".join(str(s) for s in lane["shards"])
            print(
                f"  lane {lane['worker']}: pid {lane['pid']} "
                f"{'alive' if lane['alive'] else 'DEAD'}, "
                f"shards [{shards}], restarts {lane['restarts']}, "
                f"pending acks {lane['pending_acks']}"
            )
    return 0


def _command_metrics(args) -> int:
    import json

    obs, _engine, _events, _pool = _traced_replay(args)
    if args.format == "prom":
        sys.stdout.write(obs.metrics.render_prometheus())
    else:
        print(json.dumps(obs.metrics.to_json(), indent=2))
    return 0


def _command_trace(args) -> int:
    from .obs import render_span_tree, sorted_by_duration, write_chrome_trace

    obs, _engine, events, _pool = _traced_replay(args)
    roots = sorted_by_duration(obs.tracer.finished_roots())[: args.slowest]
    print(
        f"{len(events)} events replayed, {len(obs.tracer.finished_roots())} "
        f"traces retained; {args.slowest} slowest:"
    )
    for rank, root in enumerate(roots, start=1):
        print(f"\n#{rank}")
        print(render_span_tree(root, indent=1))
    log = obs.slow_log
    print(
        f"\nslow-query log: {len(log)} retained "
        f"({log.qualified} qualified, {log.sampled_out} sampled out)"
    )
    for record in log.slowest(args.slowest):
        print()
        print(record.render())
    if args.chrome:
        written = write_chrome_trace(args.chrome, obs.tracer.finished_roots())
        print(f"\nwrote {written} span event(s) -> {args.chrome}")
    return 0


def _render_top_frame(obs, engine, watchdog, frame: int) -> str:
    """One ``repro top`` dashboard frame as a multi-line string."""
    lines = [f"repro top — frame {frame} — {engine!r}"]
    requests = obs.metrics.get("repro_engine_request_seconds")
    if requests is not None:
        lines.append(
            f"{'op':<16} {'count':>8} {'p50us':>9} {'p95us':>9} {'p99us':>9}"
        )
        for labels, child in sorted(
            requests.samples(), key=lambda pair: sorted(pair[0].items())
        ):
            if child.count == 0:
                continue
            p50, p95, p99 = (
                child.quantile(q) * 1e6 for q in (0.5, 0.95, 0.99)
            )
            lines.append(
                f"{labels.get('op', '?'):<16} {child.count:>8} "
                f"{p50:>9.1f} {p95:>9.1f} {p99:>9.1f}"
            )
    info = engine.cache_info()
    lines.append(
        f"cache: {info['hits']} hits / {info['misses']} misses "
        f"(hit rate {info['hit_rate']:.2%}), "
        f"{info['size']}/{info['capacity']} entries"
    )
    pool = engine.pool_info()
    if pool is not None:
        telemetry = pool.get("telemetry")
        extra = (
            f", {telemetry['harvests']} harvest(s), "
            f"{telemetry['torn_snapshots']} torn snapshot(s)"
            if telemetry
            else ""
        )
        lines.append(
            f"pool:  {pool['alive']}/{pool['workers']} worker(s) alive, "
            f"{pool['restarts']} restart(s){extra}"
        )
        gather = obs.metrics.get("repro_worker_gather_seconds")
        apply_ = obs.metrics.get("repro_worker_apply_seconds")
        ops = obs.metrics.get("repro_worker_ops_total")

        def _by_worker(family, pick):
            out: dict[str, float] = {}
            if family is None:
                return out
            for labels, child in family.samples():
                worker = labels.get("worker")
                if worker is not None:
                    out[worker] = out.get(worker, 0.0) + pick(child)
            return out

        gather_p95 = _by_worker(
            gather, lambda c: c.quantile(0.95) if c.count else 0.0
        )
        apply_p95 = _by_worker(
            apply_, lambda c: c.quantile(0.95) if c.count else 0.0
        )
        op_totals = _by_worker(ops, lambda c: c.value)
        workers = sorted(
            set(gather_p95) | set(apply_p95) | set(op_totals), key=str
        )
        if workers:
            lines.append(
                f"{'worker':<8} {'gather p95us':>13} {'apply p95us':>12} "
                f"{'ops':>8}"
            )
            for worker in workers:
                lines.append(
                    f"{worker:<8} {gather_p95.get(worker, 0.0) * 1e6:>13.1f} "
                    f"{apply_p95.get(worker, 0.0) * 1e6:>12.1f} "
                    f"{op_totals.get(worker, 0.0):>8.0f}"
                )
    lines.append(watchdog.render())
    return "\n".join(lines)


def _command_top(args) -> int:
    """Live serving dashboard: replay traffic, harvest, render, repeat.

    Each frame replays one event stream (a fresh seed per frame, so the
    workload keeps moving), harvests the pool workers' shared-memory
    metric shards, and prints request/cache/worker tables plus the SLO
    verdict.  ``--once`` renders a single frame and exits — the CI smoke
    mode.  Exit code: 0 while the last frame's SLO verdict is healthy,
    1 otherwise.
    """
    import time

    from .engine import ShardedEngine
    from .obs import Observability, engine_watchdog, evaluate_health
    from .workloads import clustered, read_write_stream

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    obs = Observability()
    engine = ShardedEngine.from_array(
        data,
        shards=args.shards,
        method=args.method,
        workers=args.workers or None,
        executor=args.executor,
        cache_size=args.cache,
        obs=obs,
        ipc_reads=getattr(args, "ipc_reads", False),
    )
    watchdog = engine_watchdog(obs, engine)
    frames = 1 if args.once else max(1, args.iterations)
    verdict = {"healthy": True}
    try:
        for frame in range(1, frames + 1):
            events = read_write_stream(
                shape,
                args.events,
                mix=args.mix,
                locality=args.locality,
                seed=args.seed + frame,
            )
            _run_serving_stream(engine, events)
            if engine.process_pool is not None:
                engine.process_pool.flush()
            # The same verdict path /healthz serves (SLO rules + open
            # breakers) decides this command's exit code.
            verdict = evaluate_health(watchdog, engine)
            print(_render_top_frame(obs, engine, watchdog, frame))
            if frame < frames:
                print()
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        engine.close()
    return 0 if verdict["healthy"] else 1


def _command_serve(args) -> int:
    """Serve a synthetic cube over HTTP until signalled (or --duration).

    Builds a clustered cube from ``--shape``/``--seed`` — the load
    generator can rebuild the same cube locally and verify responses
    exactly — and serves it with coalescing, per-tenant token buckets,
    and pressure-driven load shedding (see ``docs/serving.md``).  The
    engine always carries a strict resilience policy so the shedding
    path has a degradation axis to move along.  Prints one
    ``listening on http://host:port`` line once the socket is bound.
    """
    import asyncio
    import signal

    import numpy as np

    from .engine import ShardedEngine
    from .engine.resilience import ResiliencePolicy
    from .obs import Observability
    from .serve import AdmissionPolicy, CubeServer
    from .workloads import clustered

    shape = tuple(args.shape)
    # Serve a float cube: the wire format accepts fractional deltas, and
    # an int-backed structure would silently truncate them.
    data = np.asarray(clustered(shape, seed=args.seed), dtype=float)
    obs = Observability()
    engine = ShardedEngine.from_array(
        data,
        shards=args.shards,
        method=args.method,
        workers=args.workers or None,
        executor=args.executor,
        cache_size=args.cache,
        obs=obs,
        resilience=ResiliencePolicy(degradation="strict"),
    )
    policy = AdmissionPolicy(
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        shed_watermark=args.shed_watermark,
    )

    async def _run() -> None:
        server = CubeServer(
            engine, host=args.host, port=args.port, policy=policy, obs=obs
        )
        await server.start()
        print(f"serving {engine!r}")
        print(f"listening on {server.address}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        if args.duration > 0:
            loop.call_later(args.duration, stop.set)
        await stop.wait()
        print("draining...", flush=True)
        await server.stop()
        stats = server.stats()
        print(
            f"served: coalesced {stats['coalesce_followers']} follower(s) "
            f"onto {stats['coalesce_leaders']} leader(s), "
            f"throttled {stats['throttled']}, "
            f"shed {stats['overflow_rejected']}"
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        engine.close()
    return 0


def _command_analyze(args) -> int:
    """Run the flow analyses (REP009-REP012) and diff against a baseline.

    Exit codes: 0 clean (after baseline subtraction), 1 un-baselined
    findings, 2 usage error (missing path, baseline flags misused).
    When ``$GITHUB_STEP_SUMMARY`` is set (CI), a findings table is
    appended to it so the hygiene job surfaces results without log
    spelunking.
    """
    import os

    from .analysis.flow import (
        analyze_paths,
        baseline_document,
        filter_baseline,
        findings_document,
        load_baseline,
        render_markdown_table,
    )
    from .analysis.flow.driver import _iter_python_files
    from .artifacts import write_document

    missing = [entry for entry in args.paths if not Path(entry).exists()]
    if missing:
        for entry in missing:
            print(f"repro analyze: no such path: {entry}", file=sys.stderr)
        return 2

    findings = analyze_paths(args.paths)
    files = sum(1 for _ in _iter_python_files(args.paths))

    if args.update_baseline:
        if not args.baseline:
            print(
                "repro analyze: --update-baseline requires --baseline",
                file=sys.stderr,
            )
            return 2
        write_document(Path(args.baseline), baseline_document(findings))
        print(
            f"baselined {len(findings)} finding(s) -> {args.baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline:
        findings, suppressed = filter_baseline(
            findings, load_baseline(args.baseline)
        )

    for finding in findings:
        print(finding)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(
        f"repro analyze: {files} file(s), {status}"
        + (f", {suppressed} baselined" if suppressed else "")
    )

    if args.json:
        write_document(
            Path(args.json),
            findings_document(findings, files=files, suppressed=suppressed),
        )
        print(f"wrote {args.json}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write("## repro analyze\n\n")
            handle.write(render_markdown_table(findings))
    return 1 if findings else 0


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def _chaos_exit_code(mismatches: int, sanitizer_violations: int) -> int:
    """Chaos exit-code contract: sanitizer findings outrank mismatches.

    2 — the lock sanitizer recorded violations (lock-order inversion or
    unguarded shared-state mutation): a concurrency bug exists even if
    every answer happened to come out right this run.
    1 — un-marked answer mismatches against the unsharded reference.
    0 — clean soak.
    """
    if sanitizer_violations:
        return 2
    return 1 if mismatches else 0


def _command_chaos(args) -> int:
    """Seeded fault-injection soak with correctness cross-checking.

    Runs entirely on a :class:`~repro.obs.clock.ManualClock`, so latency
    spikes, stuck-shard hangs, and retry backoff all burn *virtual* time
    — the soak is deterministic and instant, yet the deadline budget and
    the tail-latency report behave as they would on a wall clock.  With
    ``--sanitize`` a :class:`~repro.analysis.raceguard.LockSanitizer`
    (record mode, same virtual clock) watches the engine's lock
    discipline throughout; its violations dominate the exit code.
    """
    from .engine import (
        FaultInjector,
        ResiliencePolicy,
        SerialExecutor,
        ShardedEngine,
        is_partial,
    )
    from .exceptions import ResilienceError
    from .methods.registry import build_method
    from .obs import ManualClock, Observability
    from .workloads import (
        PointUpdate,
        RangeQuery,
        clustered,
        interleaved,
        random_updates,
        straddling_ranges,
    )

    shape = tuple(args.shape)
    data = clustered(shape, seed=args.seed)
    read_count = max(1, int(round(args.events * args.mix)))
    write_count = max(0, args.events - read_count)
    reads = straddling_ranges(
        shape, read_count, shards=args.shards, seed=args.seed + 1
    )
    writes = random_updates(shape, write_count, seed=args.seed + 2)
    events = list(
        interleaved(reads, writes, query_fraction=args.mix, seed=args.seed + 3)
    )

    # The unsharded reference: replay the identical stream first so every
    # read has a ground-truth answer at its exact position in the stream.
    baseline = build_method(args.method, data)
    expected: list = []
    for event in events:
        if isinstance(event, RangeQuery):
            expected.append(baseline.range_sum(event.low, event.high))
        else:
            baseline.add(event.cell, event.delta)
            expected.append(None)

    clock = ManualClock()
    obs = Observability(clock=clock)
    policy = ResiliencePolicy(
        deadline_seconds=args.deadline_ms / 1e3 if args.deadline_ms else None,
        max_retries=args.retries,
        retry_seed=args.seed,
        breaker_window=args.breaker_window,
        breaker_cooldown_seconds=args.breaker_cooldown_ms / 1e3,
        degradation=args.mode,
    )
    def make_injector(inner):
        return FaultInjector(
            inner,
            clock=clock,
            seed=args.seed,
            fault_rate=args.fault_rate,
            latency_rate=args.latency_rate,
            latency_seconds=args.latency_ms / 1e3,
            hang_rate=args.hang_rate,
            hang_seconds=args.hang_ms / 1e3,
            kill_rate=args.kill_rate,
        )

    if args.executor == "process":
        # Soak the real worker pool: shards live in shared-memory
        # slabs, reads round-trip through worker pipes (``ipc_reads``)
        # so injected kills genuinely interrupt in-flight queries, and
        # the injector interposes *in front of* the already-running
        # pool — workers keep their slab attachments across the wrap.
        engine = ShardedEngine.from_array(
            data,
            shards=args.shards,
            method=args.method,
            cache_size=args.cache,
            obs=obs,
            resilience=policy,
            executor="process",
            ipc_reads=True,
        )
        engine.wrap_executor(make_injector)
        injector = engine.executor
    else:
        injector = make_injector(SerialExecutor())
        engine = ShardedEngine.from_array(
            data,
            shards=args.shards,
            method=args.method,
            cache_size=args.cache,
            obs=obs,
            resilience=policy,
            executor=injector,
        )
    sanitizer = None
    if args.sanitize:
        from .analysis.raceguard import LockSanitizer, attach_engine

        # Record mode: the soak runs to completion and reports every
        # violation at once instead of dying on the first.
        sanitizer = LockSanitizer(clock, strict=False)
        attach_engine(engine, sanitizer)

    exact = degraded = mismatches = request_errors = 0
    latencies: list[float] = []
    for event, want in zip(events, expected):
        if isinstance(event, PointUpdate):
            engine.add(event.cell, event.delta)
            continue
        start = clock.now()
        try:
            got = engine.range_sum(event.low, event.high)
        except ResilienceError:
            request_errors += 1
            latencies.append(clock.now() - start)
            continue
        latencies.append(clock.now() - start)
        if is_partial(got):
            degraded += 1
            if not got.missing_shards:
                mismatches += 1  # a degraded answer must name its gaps
        elif int(got) == int(want):
            exact += 1
        else:
            mismatches += 1
    resilience = engine.resilience_info()
    pool = engine.pool_info()
    engine.close()

    def counter_total(name: str, labels: tuple = ()) -> int:
        family = obs.metrics.counter(name, "", labels=labels)
        return int(sum(child.value for _, child in family.samples()))

    injection = injector.report()
    retries = counter_total("repro_engine_retries_total", labels=("shard",))
    timeouts = counter_total("repro_engine_timeouts_total")
    transitions = counter_total(
        "repro_engine_breaker_transitions_total", labels=("shard", "to")
    )
    latencies.sort()
    p50, p95, p99 = (
        _quantile(latencies, q) * 1e3 for q in (0.5, 0.95, 0.99)
    )

    print(f"engine:     {engine!r} mode={args.mode}")
    print(
        f"stream:     {len(events)} events ({len(reads)} straddling reads, "
        f"{len(writes)} writes), seed {args.seed}"
    )
    print(
        f"injected:   {injection['injected_total']}/{injection['calls']} "
        f"sub-operations perturbed ({injection['injected_rate']:.1%}: "
        f"{injection['injected_fault']} faults, "
        f"{injection['injected_latency']} latency, "
        f"{injection['injected_hang']} hangs, "
        f"{injection['injected_kill']} kills)"
    )
    if pool is not None:
        print(
            f"pool:       {pool['alive']}/{pool['workers']} worker(s) alive, "
            f"{pool['restarts']} respawn(s) across the soak"
        )
    print(
        f"resilience: {retries} retries, {timeouts} timeouts, "
        f"{transitions} breaker transitions"
    )
    print(
        f"answers:    {exact} exact, {degraded} degraded (marked), "
        f"{request_errors} request errors, {mismatches} MISMATCHES"
    )
    print(
        f"latency:    p50 {p50:.2f}ms p95 {p95:.2f}ms p99 {p99:.2f}ms "
        f"(virtual clock)"
    )
    for breaker in resilience["breakers"]:
        if breaker["state"] != "closed" or breaker["failure_rate"] > 0:
            print(
                f"breaker:    shard {breaker['shard']} {breaker['state']} "
                f"(failure rate {breaker['failure_rate']:.2f})"
            )
    if sanitizer is not None:
        print(
            f"sanitizer:  {len(sanitizer.events)} lock events, "
            f"{len(sanitizer.violations)} violations"
        )

    row = {
        "shape": list(shape),
        "method": args.method,
        "shards": args.shards,
        "mode": args.mode,
        "executor": args.executor,
        "seed": args.seed,
        "events": len(events),
        "reads": len(latencies),
        "fault_rate": args.fault_rate,
        "latency_rate": args.latency_rate,
        "hang_rate": args.hang_rate,
        "kill_rate": args.kill_rate,
        "worker_restarts": pool["restarts"] if pool is not None else 0,
        "deadline_ms": args.deadline_ms,
        "retries_allowed": args.retries,
        "injected_rate": injection["injected_rate"],
        "injected_total": injection["injected_total"],
        "exact": exact,
        "degraded": degraded,
        "request_errors": request_errors,
        "mismatches": mismatches,
        "retries": retries,
        "timeouts": timeouts,
        "breaker_transitions": transitions,
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "sanitized": bool(sanitizer is not None),
        "sanitizer_violations": (
            len(sanitizer.violations) if sanitizer is not None else 0
        ),
    }
    _merge_artifact_row(
        Path(args.json),
        "chaos_soak",
        row,
        ("shape", "method", "shards", "mode", "executor", "seed", "events"),
    )
    if mismatches:
        print(
            f"FAIL: {mismatches} non-degraded answers disagree with the "
            f"unsharded reference",
            file=sys.stderr,
        )
    if sanitizer is not None and sanitizer.violations:
        print(
            f"FAIL: lock sanitizer recorded "
            f"{len(sanitizer.violations)} violation(s):",
            file=sys.stderr,
        )
        for line in sanitizer.report():
            print(f"  {line}", file=sys.stderr)
    return _chaos_exit_code(
        mismatches,
        len(sanitizer.violations) if sanitizer is not None else 0,
    )


def _command_table1(args) -> int:
    print(render_table1(table1(d=args.dims), d=args.dims))
    return 0


def _command_table2(args) -> int:
    print(render_table2(table2(d=args.dims)))
    return 0


def _command_figure1(args) -> int:
    print(render_figure1(figure1_series(d=args.dims)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Data Cube reproduction - cube management CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a cube from CSV or .npy data")
    build.add_argument("source", help="CSV of coord_1..coord_d,value rows or a .npy array")
    build.add_argument("cube", help="output cube file (.npz)")
    build.add_argument("--method", default="ddc", choices=method_names())
    build.add_argument("--dims", type=int, default=2, help="dimensions (CSV input)")
    build.add_argument("--float", action="store_true", help="use float64 measures")
    build.set_defaults(handler=_command_build)

    query = commands.add_parser("query", help="run a range-sum or prefix query")
    query.add_argument("cube")
    query.add_argument("--low", type=int, nargs="+", required=True)
    query.add_argument("--high", type=int, nargs="+", default=None)
    query.set_defaults(handler=_command_query)

    update = commands.add_parser("update", help="apply a point update in place")
    update.add_argument("cube")
    update.add_argument("--cell", type=int, nargs="+", required=True)
    update.add_argument("--delta", type=float, required=True)
    update.set_defaults(handler=_command_update)

    info = commands.add_parser("info", help="describe a cube file")
    info.add_argument("cube")
    info.set_defaults(handler=_command_info)

    audit = commands.add_parser(
        "audit", help="deep-check every structural invariant of a cube file"
    )
    audit.add_argument("cube")
    audit.set_defaults(handler=_command_audit)

    bench_batch = commands.add_parser(
        "bench-batch",
        help="measure batch vs scalar prefix-query throughput for one method",
    )
    bench_batch.add_argument("--method", default="ddc", choices=method_names())
    bench_batch.add_argument(
        "--shape", type=int, nargs="+", default=[128, 128], help="cube shape"
    )
    bench_batch.add_argument(
        "--batch", type=int, default=256, help="queries per batch"
    )
    bench_batch.add_argument(
        "--locality", default="zipf", choices=("uniform", "zipf")
    )
    bench_batch.add_argument("--seed", type=int, default=0)
    bench_batch.add_argument(
        "--json",
        default="BENCH_batch_queries.json",
        help="JSON artifact path (rows are merged per method/shape/locality/batch)",
    )
    bench_batch.set_defaults(handler=_command_bench_batch)

    bench_descent = commands.add_parser(
        "bench-descent",
        help="measure the slab-tree batched descent vs the pure-python DDC",
    )
    bench_descent.add_argument(
        "--shape", type=int, nargs="+", default=[256, 256], help="cube shape"
    )
    bench_descent.add_argument(
        "--batch", type=int, default=64, help="range queries per batch"
    )
    bench_descent.add_argument(
        "--locality", default="zipf", choices=("uniform", "zipf")
    )
    bench_descent.add_argument(
        "--extent",
        type=float,
        default=0.125,
        help="per-axis query span as a fraction of the cube side",
    )
    bench_descent.add_argument(
        "--reps", type=int, default=5, help="timed repetitions (best kept)"
    )
    bench_descent.add_argument("--seed", type=int, default=0)
    bench_descent.add_argument(
        "--json",
        default="BENCH_descent.json",
        help="JSON artifact path (rows merged per shape/locality/batch)",
    )
    bench_descent.set_defaults(handler=_command_bench_descent)

    bench_engine = commands.add_parser(
        "bench-engine",
        help="measure sharded-engine serving throughput vs the scalar baseline",
    )
    serve_stats = commands.add_parser(
        "serve-stats",
        help="replay a serving workload and print shard/cache statistics",
    )
    metrics = commands.add_parser(
        "metrics",
        help="replay a serving workload and dump the metrics registry",
    )
    trace = commands.add_parser(
        "trace",
        help="replay a serving workload and print the slowest span trees",
    )
    top = commands.add_parser(
        "top",
        help="live serving dashboard: replay, harvest worker metrics, "
        "render request/cache/worker tables and the SLO verdict",
    )
    for sub in (bench_engine, serve_stats, metrics, trace, top):
        sub.add_argument("--method", default="ddc", choices=method_names())
        sub.add_argument(
            "--shape", type=int, nargs="+", default=[256, 256], help="cube shape"
        )
        sub.add_argument("--shards", type=int, default=4, help="shard count")
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="executor threads (0 = deterministic sequential fan-out)",
        )
        sub.add_argument(
            "--executor",
            default=None,
            choices=("serial", "thread", "process"),
            help="executor kind; 'process' serves shards from "
            "shared-memory slabs via a worker-process pool "
            "(default: auto — threads when --workers >= 2)",
        )
        sub.add_argument(
            "--mix", type=float, default=0.9, help="fraction of events that read"
        )
        sub.add_argument(
            "--locality", default="zipf", choices=("uniform", "zipf")
        )
        sub.add_argument(
            "--events", type=int, default=500, help="stream length"
        )
        sub.add_argument(
            "--cache", type=int, default=1024, help="result-cache capacity"
        )
        sub.add_argument("--seed", type=int, default=0)
    for sub in (serve_stats, metrics, trace, top):
        sub.add_argument(
            "--ipc-reads",
            action="store_true",
            dest="ipc_reads",
            help="process executor only: route reads through the worker "
            "pipes (worker spans then appear in harvested traces)",
        )
    bench_engine.add_argument(
        "--pool", type=int, default=32, help="distinct read queries in the stream"
    )
    bench_engine.add_argument(
        "--json",
        default="BENCH_engine.json",
        help="JSON artifact path (rows merged per configuration)",
    )
    bench_engine.set_defaults(handler=_command_bench_engine)
    serve_stats.set_defaults(handler=_command_serve_stats)
    metrics.add_argument(
        "--format",
        default="prom",
        choices=("prom", "json"),
        help="Prometheus text exposition or the equivalent JSON export",
    )
    metrics.set_defaults(handler=_command_metrics)
    trace.add_argument(
        "--slowest", type=int, default=3, help="span trees to print"
    )
    trace.add_argument(
        "--sample-every",
        type=int,
        default=1,
        dest="sample_every",
        help="head-sample every Nth trace (1 = trace everything)",
    )
    trace.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        dest="slow_ms",
        help="slow-query log latency threshold in milliseconds",
    )
    trace.add_argument(
        "--chrome",
        default=None,
        help="also write the finished traces as a chrome://tracing / "
        "Perfetto JSON document",
    )
    trace.set_defaults(handler=_command_trace)
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between dashboard frames",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="frames to render before exiting",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render exactly one frame and exit (CI smoke mode)",
    )
    top.set_defaults(handler=_command_top)

    serve = commands.add_parser(
        "serve",
        help="serve a cube over HTTP: /query /update /metrics /healthz "
        "with coalescing, admission control, and load shedding",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8734, help="0 picks an ephemeral port"
    )
    serve.add_argument("--method", default="ddc", choices=method_names())
    serve.add_argument(
        "--shape", type=int, nargs="+", default=[64, 64], help="cube shape"
    )
    serve.add_argument("--shards", type=int, default=4, help="shard count")
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="executor threads (0 = deterministic sequential fan-out)",
    )
    serve.add_argument(
        "--executor",
        default=None,
        choices=("serial", "thread", "process"),
        help="executor kind (default: auto)",
    )
    serve.add_argument(
        "--cache", type=int, default=1024, help="result-cache capacity"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=0.0,
        dest="tenant_rate",
        help="tokens/second per tenant (0 disables throttling)",
    )
    serve.add_argument(
        "--tenant-burst", type=int, default=8, dest="tenant_burst"
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        dest="max_concurrency",
        help="engine calls in flight at once",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        dest="max_queue",
        help="arrivals allowed to wait for a slot (beyond: 503)",
    )
    serve.add_argument(
        "--shed-watermark",
        type=float,
        default=0.75,
        dest="shed_watermark",
        help="gate pressure at which strict degrades to partial",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="stop after this many seconds (0 = run until signalled)",
    )
    serve.set_defaults(handler=_command_serve)

    chaos = commands.add_parser(
        "chaos",
        help="run a deterministic fault-injection soak and cross-check "
        "every answer against the unsharded reference",
    )
    chaos.add_argument("--method", default="ddc", choices=method_names())
    chaos.add_argument(
        "--shape", type=int, nargs="+", default=[128, 128], help="cube shape"
    )
    chaos.add_argument("--shards", type=int, default=4, help="shard count")
    chaos.add_argument(
        "--events", type=int, default=400, help="stream length"
    )
    chaos.add_argument(
        "--mix", type=float, default=0.8, help="fraction of events that read"
    )
    chaos.add_argument(
        "--cache", type=int, default=256, help="result-cache capacity"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.25,
        dest="fault_rate",
        help="probability a shard sub-operation raises a transient fault",
    )
    chaos.add_argument(
        "--latency-rate",
        type=float,
        default=0.1,
        dest="latency_rate",
        help="probability of an injected latency spike",
    )
    chaos.add_argument(
        "--latency-ms",
        type=float,
        default=5.0,
        dest="latency_ms",
        help="injected latency spike duration (virtual milliseconds)",
    )
    chaos.add_argument(
        "--hang-rate",
        type=float,
        default=0.02,
        dest="hang_rate",
        help="probability a sub-operation hangs then fails",
    )
    chaos.add_argument(
        "--hang-ms",
        type=float,
        default=50.0,
        dest="hang_ms",
        help="injected hang duration (virtual milliseconds)",
    )
    chaos.add_argument(
        "--executor",
        default="serial",
        choices=("serial", "process"),
        help="'process' soaks the worker-process pool (shared-memory "
        "slabs, IPC reads) so injected kills hit real workers",
    )
    chaos.add_argument(
        "--kill-rate",
        type=float,
        default=0.0,
        dest="kill_rate",
        help="probability a sub-operation SIGKILLs the owning pool "
        "worker (process executor; elsewhere the crash is simulated)",
    )
    chaos.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        dest="deadline_ms",
        help="per-request deadline budget in virtual ms (0 = unlimited)",
    )
    chaos.add_argument(
        "--retries", type=int, default=3, help="retry rounds per failed shard"
    )
    chaos.add_argument(
        "--mode",
        default="fallback",
        choices=("strict", "partial", "fallback"),
        help="graceful-degradation policy for permanently-failed shards",
    )
    chaos.add_argument(
        "--breaker-window",
        type=int,
        default=8,
        dest="breaker_window",
        help="circuit-breaker outcome window per shard (0 disables)",
    )
    chaos.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=1000.0,
        dest="breaker_cooldown_ms",
        help="open-breaker cooldown before a half-open probe (virtual ms)",
    )
    chaos.add_argument(
        "--json",
        default="BENCH_chaos.json",
        help="JSON artifact path (rows merged per configuration)",
    )
    chaos.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the runtime lock sanitizer; violations exit 2",
    )
    chaos.set_defaults(handler=_command_chaos)

    analyze = commands.add_parser(
        "analyze",
        help="run the CFG/dataflow analyses (REP009-REP012) over source "
        "trees and diff against a committed baseline",
    )
    analyze.add_argument(
        "paths", nargs="+", help="files or directories to analyze"
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        help="accepted-findings JSON (repro.artifacts schema); matching "
        "findings are subtracted before the exit code is decided",
    )
    analyze.add_argument(
        "--update-baseline",
        action="store_true",
        dest="update_baseline",
        help="rewrite --baseline with the current findings and exit 0",
    )
    analyze.add_argument(
        "--json",
        default=None,
        help="also write the un-baselined findings as a JSON document",
    )
    analyze.set_defaults(handler=_command_analyze)

    for name, handler in (
        ("table1", _command_table1),
        ("table2", _command_table2),
        ("figure1", _command_figure1),
    ):
        artifact = commands.add_parser(name, help=f"print the paper's {name}")
        artifact.add_argument(
            "--dims", type=int, default=8 if name != "table2" else 2
        )
        artifact.set_defaults(handler=handler)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`).
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
