"""OLAP schema: named dimensions mapping attribute values to cube indexes.

The paper's motivating cube aggregates SALES over CUSTOMER_AGE and
DATE_AND_TIME.  A :class:`CubeSchema` names the measure and describes
each functional attribute with a :class:`Dimension` that translates
between attribute values (ages, dates, regions...) and the dense integer
indexes the range-sum structures operate on.

Three dimension flavours cover the paper's scenarios:

* :class:`IntegerDimension` — contiguous integers (ages, days);
* :class:`CategoricalDimension` — an explicit value list (regions,
  product names), ordered as given;
* :class:`BinnedDimension` — continuous values bucketed into equal-width
  bins (sensor coordinates, prices).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..exceptions import SchemaError

__all__ = [
    "Dimension",
    "IntegerDimension",
    "CategoricalDimension",
    "BinnedDimension",
    "CubeSchema",
]


class Dimension(ABC):
    """A functional attribute of the cube."""

    def __init__(self, name: str) -> None:
        if not name:
            raise SchemaError("dimension name must be non-empty")
        self.name = name

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of distinct index positions."""

    @abstractmethod
    def index_of(self, value) -> int:
        """Cube index for an attribute value (raises on unknown values)."""

    @abstractmethod
    def value_of(self, index: int) -> object:
        """Representative attribute value for a cube index."""

    def index_range(self, low, high) -> tuple[int, int]:
        """Inclusive index range covering attribute values ``[low, high]``."""
        low_index = self.index_of(low)
        high_index = self.index_of(high)
        if low_index > high_index:
            raise SchemaError(
                f"dimension {self.name!r}: range low {low!r} maps after high {high!r}"
            )
        return low_index, high_index

    def full_range(self) -> tuple[int, int]:
        """The whole dimension as an inclusive index range."""
        return 0, self.size - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, size={self.size})"


class IntegerDimension(Dimension):
    """Contiguous integer values ``low .. high`` (both inclusive)."""

    def __init__(self, name: str, low: int, high: int) -> None:
        super().__init__(name)
        if high < low:
            raise SchemaError(f"dimension {name!r}: high {high} below low {low}")
        self.low = int(low)
        self.high = int(high)

    @property
    def size(self) -> int:
        return self.high - self.low + 1

    def index_of(self, value) -> int:
        value = int(value)
        if not self.low <= value <= self.high:
            raise SchemaError(
                f"dimension {self.name!r}: value {value} outside [{self.low}, {self.high}]"
            )
        return value - self.low

    def value_of(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise SchemaError(f"dimension {self.name!r}: index {index} out of range")
        return self.low + index


class CategoricalDimension(Dimension):
    """An explicit, ordered list of attribute values."""

    def __init__(self, name: str, values: Sequence) -> None:
        super().__init__(name)
        values = list(values)
        if not values:
            raise SchemaError(f"dimension {name!r}: needs at least one value")
        if len(set(values)) != len(values):
            raise SchemaError(f"dimension {name!r}: duplicate values")
        self.values = values
        self._index = {value: position for position, value in enumerate(values)}

    @property
    def size(self) -> int:
        return len(self.values)

    def index_of(self, value) -> int:
        try:
            return self._index[value]
        except KeyError:
            raise SchemaError(
                f"dimension {self.name!r}: unknown value {value!r}"
            ) from None

    def value_of(self, index: int):
        if not 0 <= index < self.size:
            raise SchemaError(f"dimension {self.name!r}: index {index} out of range")
        return self.values[index]


class BinnedDimension(Dimension):
    """Continuous values bucketed into ``bins`` equal-width intervals.

    Bin ``i`` covers ``[origin + i * width, origin + (i + 1) * width)``;
    the final bin additionally includes its upper edge, so the full
    domain ``[origin, origin + bins * width]`` is covered.
    """

    def __init__(self, name: str, origin: float, width: float, bins: int) -> None:
        super().__init__(name)
        if width <= 0:
            raise SchemaError(f"dimension {name!r}: bin width must be positive")
        if bins < 1:
            raise SchemaError(f"dimension {name!r}: needs at least one bin")
        self.origin = float(origin)
        self.width = float(width)
        self.bins = int(bins)

    @property
    def size(self) -> int:
        return self.bins

    def index_of(self, value) -> int:
        position = (float(value) - self.origin) / self.width
        index = int(position)
        if position == self.bins:  # the inclusive upper edge
            index = self.bins - 1
        if not 0 <= index < self.bins or position < 0:
            raise SchemaError(
                f"dimension {self.name!r}: value {value} outside binned domain"
            )
        return index

    def value_of(self, index: int) -> float:
        if not 0 <= index < self.bins:
            raise SchemaError(f"dimension {self.name!r}: index {index} out of range")
        return self.origin + (index + 0.5) * self.width  # bin midpoint


class CubeSchema:
    """Measure attribute plus an ordered list of dimensions."""

    def __init__(self, dimensions: Sequence[Dimension], measure: str = "value") -> None:
        dimensions = list(dimensions)
        if not dimensions:
            raise SchemaError("schema needs at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names: {names}")
        self.dimensions = dimensions
        self.measure = measure
        self._by_name = {dimension.name: dimension for dimension in dimensions}

    @property
    def shape(self) -> tuple[int, ...]:
        """Cube shape implied by the dimension sizes."""
        return tuple(dimension.size for dimension in self.dimensions)

    @property
    def names(self) -> list[str]:
        return [dimension.name for dimension in self.dimensions]

    def dimension(self, name: str) -> Dimension:
        """Dimension lookup by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown dimension {name!r}; known: {self.names}"
            ) from None

    def axis_of(self, name: str) -> int:
        """Axis position of the named dimension."""
        dimension = self.dimension(name)
        return self.dimensions.index(dimension)

    def cell_for(self, point: dict) -> tuple[int, ...]:
        """Cube cell for a complete ``{dimension name: value}`` mapping."""
        unknown = set(point) - set(self.names)
        if unknown:
            raise SchemaError(f"unknown dimensions in point: {sorted(unknown)}")
        missing = set(self.names) - set(point)
        if missing:
            raise SchemaError(f"point missing dimensions: {sorted(missing)}")
        return tuple(
            dimension.index_of(point[dimension.name]) for dimension in self.dimensions
        )

    def ranges_for(self, conditions: dict) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Inclusive cube range for ``{name: value | (low, high)}`` conditions.

        Dimensions absent from ``conditions`` span their full extent, so
        a query naturally rolls up over unspecified attributes.
        """
        unknown = set(conditions) - set(self.names)
        if unknown:
            raise SchemaError(f"unknown dimensions in query: {sorted(unknown)}")
        low = []
        high = []
        for dimension in self.dimensions:
            if dimension.name not in conditions:
                lo, hi = dimension.full_range()
            else:
                condition = conditions[dimension.name]
                if isinstance(condition, tuple) and len(condition) == 2:
                    lo, hi = dimension.index_range(*condition)
                else:
                    lo = hi = dimension.index_of(condition)
            low.append(lo)
            high.append(hi)
        return tuple(low), tuple(high)
