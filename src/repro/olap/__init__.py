"""OLAP front-end: schemas, aggregates, and the DataCube facade."""

from .aggregates import SUM, XOR, AggregateResult, GroupOperator, rolling_windows
from .cube import DataCube
from .hierarchy import HierarchyDimension
from .statistics import BivariateCube, BivariateSummary
from .time import DateDimension
from .schema import (
    BinnedDimension,
    CategoricalDimension,
    CubeSchema,
    Dimension,
    IntegerDimension,
)

__all__ = [
    "GroupOperator",
    "SUM",
    "XOR",
    "AggregateResult",
    "rolling_windows",
    "Dimension",
    "IntegerDimension",
    "CategoricalDimension",
    "BinnedDimension",
    "DateDimension",
    "HierarchyDimension",
    "BivariateCube",
    "BivariateSummary",
    "CubeSchema",
    "DataCube",
]
